"""Document node model.

An XML document is modelled as a tree of :class:`XmlNode` objects. The
model is deliberately DOM-like (the paper assumes a DOM parser, section
4) but trimmed to what numbering schemes care about: element structure,
attributes, and text content. Attributes and text can optionally be
*materialised* as child nodes so that schemes which must label every
addressable item (the paper enumerates "all components of XML document
trees", section 4) can do so.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Dict, Iterator, List, Optional

from repro.errors import TreeStructureError


class NodeKind(Enum):
    """The kind of a document node, mirroring the XPath data model subset."""

    ELEMENT = "element"
    ATTRIBUTE = "attribute"
    TEXT = "text"
    COMMENT = "comment"
    PROCESSING_INSTRUCTION = "processing-instruction"
    DOCUMENT = "document"  # the virtual node above the root element (XPath '/')

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeKind.{self.name}"


_node_counter = itertools.count(1)


class XmlNode:
    """A single node of an XML document tree.

    Parameters
    ----------
    tag:
        Element/attribute name; for text and comment nodes the
        conventional XPath names ``#text`` / ``#comment`` are used.
    kind:
        The :class:`NodeKind` of the node.
    attributes:
        Name → value mapping (elements only). Stored as a plain dict;
        use :meth:`materialise_attributes` on the owning tree to turn
        them into child nodes when a scheme must label them.
    text:
        Character content for TEXT/COMMENT/ATTRIBUTE nodes; for
        elements this holds the concatenated immediate text, if the
        builder chose not to materialise text children.
    """

    __slots__ = (
        "tag",
        "kind",
        "attributes",
        "text",
        "parent",
        "children",
        "node_id",
    )

    def __init__(
        self,
        tag: str,
        kind: NodeKind = NodeKind.ELEMENT,
        attributes: Optional[Dict[str, str]] = None,
        text: Optional[str] = None,
    ):
        self.tag = tag
        self.kind = kind
        self.attributes: Dict[str, str] = dict(attributes) if attributes else {}
        self.text = text
        self.parent: Optional[XmlNode] = None
        self.children: List[XmlNode] = []
        #: Stable per-process identity, independent of any numbering
        #: scheme; used by labelings as the node key.
        self.node_id: int = next(_node_counter)

    # ------------------------------------------------------------------
    # Structure manipulation
    # ------------------------------------------------------------------
    def append_child(self, child: "XmlNode") -> "XmlNode":
        """Attach *child* as the last child of this node and return it."""
        return self.insert_child(len(self.children), child)

    def insert_child(self, position: int, child: "XmlNode") -> "XmlNode":
        """Attach *child* at *position* among this node's children.

        Raises
        ------
        TreeStructureError
            If *child* already has a parent or the insertion would
            create a cycle.
        """
        if child.parent is not None:
            raise TreeStructureError(
                f"node <{child.tag}> already has a parent <{child.parent.tag}>"
            )
        ancestor: Optional[XmlNode] = self
        while ancestor is not None:
            if ancestor is child:
                raise TreeStructureError("insertion would create a cycle")
            ancestor = ancestor.parent
        if not 0 <= position <= len(self.children):
            raise TreeStructureError(
                f"insert position {position} out of range 0..{len(self.children)}"
            )
        self.children.insert(position, child)
        child.parent = self
        return child

    def detach(self) -> "XmlNode":
        """Remove this node (and its subtree) from its parent; return self."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self

    # ------------------------------------------------------------------
    # Navigation helpers
    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def fan_out(self) -> int:
        """Number of children."""
        return len(self.children)

    @property
    def depth(self) -> int:
        """Distance to the root; the root has depth 0."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def child_position(self) -> int:
        """0-based position among siblings; 0 for the root."""
        if self.parent is None:
            return 0
        return self.parent.children.index(self)

    def ancestors(self) -> Iterator["XmlNode"]:
        """Yield ancestors from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(self) -> Iterator["XmlNode"]:
        """Yield descendants in document (preorder) order, excluding self."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_subtree(self) -> Iterator["XmlNode"]:
        """Yield this node then its descendants in document order."""
        yield self
        yield from self.descendants()

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (including self)."""
        return sum(1 for _ in self.iter_subtree())

    def following_siblings(self) -> List["XmlNode"]:
        """Siblings after this node, in document order."""
        if self.parent is None:
            return []
        position = self.child_position()
        return self.parent.children[position + 1 :]

    def preceding_siblings(self) -> List["XmlNode"]:
        """Siblings before this node, in document order."""
        if self.parent is None:
            return []
        position = self.child_position()
        return self.parent.children[:position]

    def is_ancestor_of(self, other: "XmlNode") -> bool:
        """True iff this node is a proper ancestor of *other*."""
        return any(anc is self for anc in other.ancestors())

    # ------------------------------------------------------------------
    # Content helpers
    # ------------------------------------------------------------------
    def text_content(self) -> str:
        """Concatenated text of this node and its descendants."""
        parts: List[str] = []
        for node in self.iter_subtree():
            if node.kind is NodeKind.TEXT and node.text:
                parts.append(node.text)
            elif node.kind is NodeKind.ELEMENT and node.text:
                parts.append(node.text)
            elif node.kind is NodeKind.ATTRIBUTE and node.text:
                # Attribute values are not part of element text content.
                continue
        return "".join(parts)

    def get(self, attribute: str, default: Optional[str] = None) -> Optional[str]:
        """Attribute lookup, dict-style."""
        return self.attributes.get(attribute, default)

    def path(self) -> str:
        """Simple slash path from the root, e.g. ``/site/people/person``."""
        parts: List[str] = []
        node: Optional[XmlNode] = self
        while node is not None:
            parts.append(node.tag)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    def __repr__(self) -> str:
        if self.kind is NodeKind.ELEMENT:
            return f"<XmlNode element {self.tag!r} children={len(self.children)}>"
        return f"<XmlNode {self.kind.value} {self.tag!r} text={self.text!r}>"


def element(tag: str, attributes: Optional[Dict[str, str]] = None) -> XmlNode:
    """Convenience constructor for an element node."""
    return XmlNode(tag, NodeKind.ELEMENT, attributes=attributes)


def text(content: str) -> XmlNode:
    """Convenience constructor for a text node."""
    return XmlNode("#text", NodeKind.TEXT, text=content)


def comment(content: str) -> XmlNode:
    """Convenience constructor for a comment node."""
    return XmlNode("#comment", NodeKind.COMMENT, text=content)


def attribute(name: str, value: str) -> XmlNode:
    """Convenience constructor for a materialised attribute node."""
    return XmlNode(name, NodeKind.ATTRIBUTE, text=value)
