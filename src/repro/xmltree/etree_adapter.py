"""Bridge between :class:`~repro.xmltree.tree.XmlTree` and
:mod:`xml.etree.ElementTree`.

The library's own parser (:mod:`repro.xmltree.parser`) is the default
substrate, but interoperability with the stdlib DOM is convenient for
users who already hold ``Element`` objects. Conversion is structural:
attributes stay in dicts, text/tail become ``#text`` children so that
document order is preserved.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.xmltree.node import NodeKind, XmlNode
from repro.xmltree.tree import XmlTree


def from_element(element: ET.Element, keep_whitespace_text: bool = False) -> XmlNode:
    """Convert an ElementTree element (recursively) to an :class:`XmlNode`."""
    node = XmlNode(element.tag, NodeKind.ELEMENT, attributes=dict(element.attrib))
    if element.text and (keep_whitespace_text or element.text.strip()):
        node.append_child(XmlNode("#text", NodeKind.TEXT, text=element.text))
    for child in element:
        node.append_child(from_element(child, keep_whitespace_text))
        if child.tail and (keep_whitespace_text or child.tail.strip()):
            node.append_child(XmlNode("#text", NodeKind.TEXT, text=child.tail))
    return node


def from_etree(tree_or_root, keep_whitespace_text: bool = False) -> XmlTree:
    """Convert an ``ElementTree`` or root ``Element`` to an :class:`XmlTree`."""
    root = tree_or_root.getroot() if hasattr(tree_or_root, "getroot") else tree_or_root
    return XmlTree(from_element(root, keep_whitespace_text))


def to_element(node: XmlNode) -> ET.Element:
    """Convert an :class:`XmlNode` subtree to an ElementTree element.

    ``#text`` children are folded back into ``text``/``tail`` strings;
    materialised attribute nodes are folded into the attribute dict.
    """
    element = ET.Element(node.tag, dict(node.attributes))
    if node.text:
        element.text = node.text
    last_child: ET.Element | None = None
    for child in node.children:
        if child.kind is NodeKind.TEXT:
            if last_child is None:
                element.text = (element.text or "") + (child.text or "")
            else:
                last_child.tail = (last_child.tail or "") + (child.text or "")
        elif child.kind is NodeKind.ATTRIBUTE:
            element.set(child.tag, child.text or "")
        elif child.kind is NodeKind.COMMENT:
            comment = ET.Comment(child.text or "")
            element.append(comment)
            last_child = comment
        else:
            sub = to_element(child)
            element.append(sub)
            last_child = sub
    return element


def to_etree(tree: XmlTree) -> ET.ElementTree:
    """Convert an :class:`XmlTree` to an ``xml.etree.ElementTree.ElementTree``."""
    return ET.ElementTree(to_element(tree.root))
