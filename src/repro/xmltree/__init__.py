"""XML document-tree substrate: node model, parser, serializer, builders.

Public surface::

    from repro.xmltree import XmlNode, XmlTree, NodeKind, parse, serialize, build
"""

from repro.xmltree.builder import TreeBuilder, build, build_node, complete_kary_tree
from repro.xmltree.diff import (
    EditOp,
    apply_edit_script,
    apply_through_labeling,
    diff_trees,
)
from repro.xmltree.etree_adapter import from_etree, to_etree
from repro.xmltree.node import NodeKind, XmlNode, attribute, comment, element, text
from repro.xmltree.parser import parse, parse_file
from repro.xmltree.serializer import serialize, write_file
from repro.xmltree.stats import TreeStats, compute_stats
from repro.xmltree.tree import XmlTree

__all__ = [
    "EditOp",
    "NodeKind",
    "TreeBuilder",
    "apply_edit_script",
    "apply_through_labeling",
    "diff_trees",
    "TreeStats",
    "XmlNode",
    "XmlTree",
    "attribute",
    "build",
    "build_node",
    "comment",
    "complete_kary_tree",
    "compute_stats",
    "element",
    "from_etree",
    "parse",
    "parse_file",
    "serialize",
    "text",
    "to_etree",
    "write_file",
]
