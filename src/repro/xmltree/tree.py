"""The :class:`XmlTree` document container.

``XmlTree`` wraps a root :class:`~repro.xmltree.node.XmlNode` and offers
whole-document services that numbering schemes and the query engine rely
on: document-order traversals, structural queries (LCA, document-order
comparison), structural editing with notification, and fan-out /
topology statistics.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import TreeStructureError
from repro.xmltree.node import NodeKind, XmlNode


class XmlTree:
    """An XML document tree rooted at a single element.

    The tree is an in-memory DOM; all traversals are defined in
    *document order* (preorder, attributes before children when
    materialised — the builder controls placement).
    """

    def __init__(self, root: XmlNode):
        if root.parent is not None:
            raise TreeStructureError("tree root must not have a parent")
        self.root = root

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------
    def preorder(self) -> Iterator[XmlNode]:
        """All nodes in document order (root first)."""
        return self.root.iter_subtree()

    def postorder(self) -> Iterator[XmlNode]:
        """All nodes in postorder (root last)."""
        # Iterative postorder: push (node, expanded) pairs.
        stack: List[Tuple[XmlNode, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))

    def levelorder(self) -> Iterator[XmlNode]:
        """All nodes level by level, left to right — the UID visit order."""
        frontier: List[XmlNode] = [self.root]
        while frontier:
            next_frontier: List[XmlNode] = []
            for node in frontier:
                yield node
                next_frontier.extend(node.children)
            frontier = next_frontier

    def levels(self) -> Iterator[List[XmlNode]]:
        """Yield the list of nodes of each level, top to bottom."""
        frontier: List[XmlNode] = [self.root]
        while frontier:
            yield frontier
            frontier = [c for node in frontier for c in node.children]

    def nodes(self) -> List[XmlNode]:
        """All nodes as a list, in document order."""
        return list(self.preorder())

    def elements(self) -> Iterator[XmlNode]:
        """Element nodes only, in document order."""
        return (n for n in self.preorder() if n.kind is NodeKind.ELEMENT)

    def find_all(self, predicate: Callable[[XmlNode], bool]) -> List[XmlNode]:
        """All nodes satisfying *predicate*, in document order."""
        return [n for n in self.preorder() if predicate(n)]

    def find_by_tag(self, tag: str) -> List[XmlNode]:
        """All nodes whose tag equals *tag*, in document order."""
        return self.find_all(lambda n: n.tag == tag)

    # ------------------------------------------------------------------
    # Size / shape queries
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Total number of nodes."""
        return sum(1 for _ in self.preorder())

    def height(self) -> int:
        """Number of levels; a single-node tree has height 1."""
        return sum(1 for _ in self.levels())

    def max_fan_out(self) -> int:
        """Maximal number of children over all nodes (0 for a leaf-only tree)."""
        return max((node.fan_out for node in self.preorder()), default=0)

    def fan_out_histogram(self) -> Dict[int, int]:
        """fan-out value → number of internal nodes with that fan-out."""
        histogram: Dict[int, int] = {}
        for node in self.preorder():
            if node.children:
                histogram[node.fan_out] = histogram.get(node.fan_out, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # Structural relationships
    # ------------------------------------------------------------------
    def contains(self, node: XmlNode) -> bool:
        """True iff *node* belongs to this tree."""
        current: Optional[XmlNode] = node
        while current.parent is not None:
            current = current.parent
        return current is self.root

    def lowest_common_ancestor(self, first: XmlNode, second: XmlNode) -> XmlNode:
        """The lowest common ancestor of two nodes of this tree.

        If one node is an ancestor-or-self of the other, that node is
        returned (consistent with the usual LCA convention; the paper's
        Fig. 10 routine then reports ``null`` for the preceding test).
        """
        first_chain = [first, *first.ancestors()]
        ancestors_of_first = {id(n) for n in first_chain}
        current: Optional[XmlNode] = second
        while current is not None:
            if id(current) in ancestors_of_first:
                return current
            current = current.parent
        raise TreeStructureError("nodes do not share a root")

    def document_order_index(self) -> Dict[int, int]:
        """node_id → preorder rank; a fresh snapshot on every call."""
        return {node.node_id: rank for rank, node in enumerate(self.preorder())}

    def compare_document_order(self, first: XmlNode, second: XmlNode) -> int:
        """-1/0/+1 as *first* precedes/equals/follows *second* in document order.

        Computed structurally (no global index): walk to the LCA and
        compare child branches — this is exactly the projection argument
        of the paper's Lemma 2.
        """
        if first is second:
            return 0
        lca = self.lowest_common_ancestor(first, second)
        if lca is first:
            return -1  # ancestor precedes descendant
        if lca is second:
            return 1
        branch_first = self._child_branch(lca, first)
        branch_second = self._child_branch(lca, second)
        pos_first = branch_first.child_position()
        pos_second = branch_second.child_position()
        return -1 if pos_first < pos_second else 1

    @staticmethod
    def _child_branch(ancestor: XmlNode, descendant: XmlNode) -> XmlNode:
        """The child of *ancestor* on the path to *descendant* (Lemma 2's c1/c2)."""
        node = descendant
        while node.parent is not None and node.parent is not ancestor:
            node = node.parent
        if node.parent is not ancestor:
            raise TreeStructureError("descendant does not lie under ancestor")
        return node

    # ------------------------------------------------------------------
    # Editing
    # ------------------------------------------------------------------
    def insert_node(
        self, parent: XmlNode, position: int, node: XmlNode
    ) -> XmlNode:
        """Insert *node* as child of *parent* at *position* and return it."""
        if not self.contains(parent):
            raise TreeStructureError("parent does not belong to this tree")
        return parent.insert_child(position, node)

    def delete_subtree(self, node: XmlNode) -> List[XmlNode]:
        """Delete *node* and its subtree; return the removed nodes.

        Node deletion in XML is cascading (paper 3.2): the whole
        induced subtree goes.
        """
        if node is self.root:
            raise TreeStructureError("cannot delete the document root")
        if not self.contains(node):
            raise TreeStructureError("node does not belong to this tree")
        removed = list(node.iter_subtree())
        node.detach()
        return removed

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def materialise_attributes(self) -> int:
        """Convert every element attribute into an ATTRIBUTE child node.

        Attribute children are placed before element children, in
        attribute-name order (deterministic). Returns the number of
        nodes created. Existing dict entries are kept (they remain the
        authoritative value store); materialisation is for schemes that
        must assign identifiers to attributes (paper section 3.5 lists
        the ``attribute`` axis).
        """
        created = 0
        for node in list(self.preorder()):
            if node.kind is not NodeKind.ELEMENT or not node.attributes:
                continue
            already = {
                child.tag
                for child in node.children
                if child.kind is NodeKind.ATTRIBUTE
            }
            for position, (name, value) in enumerate(sorted(node.attributes.items())):
                if name in already:
                    continue
                attr_node = XmlNode(name, NodeKind.ATTRIBUTE, text=value)
                node.insert_child(position, attr_node)
                created += 1
        return created

    def copy(self) -> "XmlTree":
        """Deep structural copy (fresh node identities)."""

        def clone(node: XmlNode) -> XmlNode:
            new = XmlNode(node.tag, node.kind, attributes=node.attributes, text=node.text)
            for child in node.children:
                new.append_child(clone(child))
            return new

        return XmlTree(clone(self.root))

    def __repr__(self) -> str:
        return f"<XmlTree root={self.root.tag!r} size={self.size()}>"
