"""A from-scratch XML parser.

The parser implements the subset of XML 1.0 needed for document trees:
elements, attributes, character data, CDATA sections, comments,
processing instructions, the XML declaration, a DOCTYPE skip, and the
five predefined entities plus numeric character references.

It is written as a hand-rolled single-pass scanner producing events,
with a small DOM builder on top — no dependency on ``xml.etree``. The
paper's experiments assume a DOM parser (section 4); this module is that
substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional

from repro.errors import XmlSyntaxError
from repro.xmltree.node import NodeKind, XmlNode
from repro.xmltree.tree import XmlTree

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = "_:"
_NAME_EXTRA = "_:-."


class EventKind(Enum):
    """Kinds of low-level parse events."""

    START_ELEMENT = "start"
    END_ELEMENT = "end"
    TEXT = "text"
    COMMENT = "comment"
    PROCESSING_INSTRUCTION = "pi"


@dataclass
class ParseEvent:
    """A single event from the streaming scanner."""

    kind: EventKind
    name: str = ""
    attributes: Optional[Dict[str, str]] = None
    text: str = ""
    line: int = 0
    column: int = 0


class _Scanner:
    """Character-level cursor with line/column tracking."""

    def __init__(self, source: str):
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def at_end(self) -> bool:
        return self.position >= len(self.source)

    def peek(self, offset: int = 0) -> str:
        index = self.position + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def advance(self, count: int = 1) -> str:
        consumed = self.source[self.position : self.position + count]
        for ch in consumed:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.position += count
        return consumed

    def startswith(self, prefix: str) -> bool:
        return self.source.startswith(prefix, self.position)

    def consume(self, literal: str) -> None:
        if not self.startswith(literal):
            self.error(f"expected {literal!r}")
        self.advance(len(literal))

    def skip_whitespace(self) -> None:
        while not self.at_end() and self.peek() in " \t\r\n":
            self.advance()

    def read_until(self, terminator: str) -> str:
        index = self.source.find(terminator, self.position)
        if index < 0:
            self.error(f"unterminated construct, expected {terminator!r}")
        content = self.source[self.position : index]
        self.advance(index - self.position)
        self.advance(len(terminator))
        return content

    def error(self, message: str) -> None:
        raise XmlSyntaxError(message, self.line, self.column)


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


def _read_name(scanner: _Scanner) -> str:
    if not _is_name_start(scanner.peek()):
        scanner.error(f"expected a name, found {scanner.peek()!r}")
    start = scanner.position
    scanner.advance()
    while not scanner.at_end() and _is_name_char(scanner.peek()):
        scanner.advance()
    return scanner.source[start : scanner.position]


def decode_entities(raw: str, scanner: Optional[_Scanner] = None) -> str:
    """Replace predefined entities and character references in *raw*."""
    if "&" not in raw:
        return raw
    parts: List[str] = []
    index = 0
    while index < len(raw):
        amp = raw.find("&", index)
        if amp < 0:
            parts.append(raw[index:])
            break
        parts.append(raw[index:amp])
        semi = raw.find(";", amp + 1)
        if semi < 0:
            _entity_error("unterminated entity reference", scanner)
        name = raw[amp + 1 : semi]
        parts.append(_decode_entity(name, scanner))
        index = semi + 1
    return "".join(parts)


def _decode_entity(name: str, scanner: Optional[_Scanner]) -> str:
    if name.startswith("#x") or name.startswith("#X"):
        try:
            return chr(int(name[2:], 16))
        except ValueError:
            _entity_error(f"bad hex character reference &{name};", scanner)
    if name.startswith("#"):
        try:
            return chr(int(name[1:]))
        except ValueError:
            _entity_error(f"bad character reference &{name};", scanner)
    if name in _PREDEFINED_ENTITIES:
        return _PREDEFINED_ENTITIES[name]
    _entity_error(f"unknown entity &{name};", scanner)
    return ""  # unreachable


def _entity_error(message: str, scanner: Optional[_Scanner]) -> None:
    if scanner is not None:
        scanner.error(message)
    raise XmlSyntaxError(message)


def _read_attributes(scanner: _Scanner) -> Dict[str, str]:
    attributes: Dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/", "?", ""):
            return attributes
        name = _read_name(scanner)
        scanner.skip_whitespace()
        scanner.consume("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            scanner.error("attribute value must be quoted")
        scanner.advance()
        value = scanner.read_until(quote)
        if "<" in value:
            scanner.error("'<' is not allowed in attribute values")
        if name in attributes:
            scanner.error(f"duplicate attribute {name!r}")
        attributes[name] = decode_entities(value, scanner)


def iter_events(source: str) -> Iterator[ParseEvent]:
    """Stream :class:`ParseEvent` objects from XML *source* text.

    The stream is well-formedness checked as far as tag balance and
    single-root structure go; content outside the root must be
    whitespace, comments or PIs.
    """
    scanner = _Scanner(source)
    open_tags: List[str] = []
    seen_root = False

    # Optional XML declaration.
    if scanner.startswith("<?xml"):
        scanner.read_until("?>")

    while not scanner.at_end():
        if scanner.peek() != "<":
            start_line, start_col = scanner.line, scanner.column
            index = scanner.source.find("<", scanner.position)
            if index < 0:
                index = len(scanner.source)
            raw = scanner.source[scanner.position : index]
            scanner.advance(index - scanner.position)
            if open_tags:
                yield ParseEvent(
                    EventKind.TEXT,
                    text=decode_entities(raw, scanner),
                    line=start_line,
                    column=start_col,
                )
            elif raw.strip():
                raise XmlSyntaxError(
                    "character data outside the document element",
                    start_line,
                    start_col,
                )
            continue

        line, column = scanner.line, scanner.column
        if scanner.startswith("<!--"):
            scanner.advance(4)
            body = scanner.read_until("-->")
            yield ParseEvent(EventKind.COMMENT, text=body, line=line, column=column)
        elif scanner.startswith("<![CDATA["):
            if not open_tags:
                scanner.error("CDATA outside the document element")
            scanner.advance(9)
            body = scanner.read_until("]]>")
            yield ParseEvent(EventKind.TEXT, text=body, line=line, column=column)
        elif scanner.startswith("<!DOCTYPE"):
            _skip_doctype(scanner)
        elif scanner.startswith("<?"):
            scanner.advance(2)
            body = scanner.read_until("?>")
            target, _, data = body.partition(" ")
            yield ParseEvent(
                EventKind.PROCESSING_INSTRUCTION,
                name=target,
                text=data,
                line=line,
                column=column,
            )
        elif scanner.startswith("</"):
            scanner.advance(2)
            name = _read_name(scanner)
            scanner.skip_whitespace()
            scanner.consume(">")
            if not open_tags:
                raise XmlSyntaxError(f"unexpected closing tag </{name}>", line, column)
            expected = open_tags.pop()
            if expected != name:
                raise XmlSyntaxError(
                    f"mismatched closing tag </{name}>, expected </{expected}>",
                    line,
                    column,
                )
            yield ParseEvent(EventKind.END_ELEMENT, name=name, line=line, column=column)
        else:
            scanner.advance(1)  # '<'
            name = _read_name(scanner)
            attributes = _read_attributes(scanner)
            scanner.skip_whitespace()
            if not open_tags:
                if seen_root:
                    raise XmlSyntaxError("multiple document elements", line, column)
                seen_root = True
            if scanner.startswith("/>"):
                scanner.advance(2)
                yield ParseEvent(
                    EventKind.START_ELEMENT,
                    name=name,
                    attributes=attributes,
                    line=line,
                    column=column,
                )
                yield ParseEvent(EventKind.END_ELEMENT, name=name, line=line, column=column)
            else:
                scanner.consume(">")
                open_tags.append(name)
                yield ParseEvent(
                    EventKind.START_ELEMENT,
                    name=name,
                    attributes=attributes,
                    line=line,
                    column=column,
                )

    if open_tags:
        raise XmlSyntaxError(f"unclosed element <{open_tags[-1]}>")
    if not seen_root:
        raise XmlSyntaxError("document has no root element")


def _skip_doctype(scanner: _Scanner) -> None:
    """Skip a DOCTYPE declaration, honouring a bracketed internal subset."""
    depth = 0
    while not scanner.at_end():
        ch = scanner.advance()
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            return
    scanner.error("unterminated DOCTYPE")


def parse(
    source: str,
    keep_whitespace_text: bool = False,
    keep_comments: bool = False,
    materialise_text: bool = True,
) -> XmlTree:
    """Parse XML *source* text into an :class:`XmlTree`.

    Parameters
    ----------
    keep_whitespace_text:
        Keep text nodes that consist solely of whitespace (defaults to
        dropping them, the usual choice for data-centric XML).
    keep_comments:
        Materialise comments as ``#comment`` nodes.
    materialise_text:
        When true (default), character data becomes ``#text`` child
        nodes; when false it is folded into the parent element's
        ``text`` attribute (adjacent runs concatenated).
    """
    root: Optional[XmlNode] = None
    stack: List[XmlNode] = []

    for event in iter_events(source):
        if event.kind is EventKind.START_ELEMENT:
            node = XmlNode(event.name, NodeKind.ELEMENT, attributes=event.attributes)
            if stack:
                stack[-1].append_child(node)
            else:
                root = node
            stack.append(node)
        elif event.kind is EventKind.END_ELEMENT:
            stack.pop()
        elif event.kind is EventKind.TEXT:
            if not stack:
                continue
            if not keep_whitespace_text and not event.text.strip():
                continue
            if materialise_text:
                stack[-1].append_child(XmlNode("#text", NodeKind.TEXT, text=event.text))
            else:
                stack[-1].text = (stack[-1].text or "") + event.text
        elif event.kind is EventKind.COMMENT:
            if keep_comments and stack:
                stack[-1].append_child(
                    XmlNode("#comment", NodeKind.COMMENT, text=event.text)
                )
        # Processing instructions are scanned but not materialised: the
        # numbering experiments never address them.

    assert root is not None  # iter_events guarantees a root
    return XmlTree(root)


def parse_file(path: str, **options) -> XmlTree:
    """Parse the XML file at *path*; options as for :func:`parse`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse(handle.read(), **options)
