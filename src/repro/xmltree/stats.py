"""Topology statistics for XML trees.

The paper's motivation hinges on tree *shape*: fan-out disparity drives
UID identifier explosion (section 1), recursion depth drives the
enumeration capacity argument (observation 1, section 5). This module
computes the shape descriptors the experiments sweep over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.xmltree.node import NodeKind
from repro.xmltree.tree import XmlTree


@dataclass
class TreeStats:
    """Shape summary of a document tree."""

    node_count: int
    element_count: int
    text_count: int
    attribute_count: int
    height: int
    max_fan_out: int
    mean_fan_out: float
    leaf_count: int
    internal_count: int
    fan_out_histogram: Dict[int, int] = field(default_factory=dict)
    level_widths: List[int] = field(default_factory=list)
    max_tag_recursion: int = 0
    distinct_tags: int = 0

    @property
    def fan_out_disparity(self) -> float:
        """max fan-out divided by mean fan-out (1.0 = perfectly regular).

        High disparity is exactly the regime where the original UID
        wastes identifier space on virtual nodes (paper section 3.1).
        """
        if self.mean_fan_out == 0:
            return 0.0
        return self.max_fan_out / self.mean_fan_out

    def as_row(self) -> Dict[str, object]:
        """Flat dict suitable for report tables."""
        return {
            "nodes": self.node_count,
            "height": self.height,
            "max_fanout": self.max_fan_out,
            "mean_fanout": round(self.mean_fan_out, 2),
            "disparity": round(self.fan_out_disparity, 2),
            "recursion": self.max_tag_recursion,
            "tags": self.distinct_tags,
        }


def compute_stats(tree: XmlTree) -> TreeStats:
    """Compute a :class:`TreeStats` summary of *tree* in one pass."""
    node_count = 0
    element_count = 0
    text_count = 0
    attribute_count = 0
    leaf_count = 0
    internal_count = 0
    fan_out_total = 0
    max_fan_out = 0
    histogram: Dict[int, int] = {}
    tags: set = set()
    max_recursion = 0

    # Recursion degree: maximum number of same-tag ancestors-or-self on
    # any root-to-node path ("high degree of recursion", observation 1).
    def walk(node, tag_counts: Dict[str, int]) -> None:
        nonlocal node_count, element_count, text_count, attribute_count
        nonlocal leaf_count, internal_count, fan_out_total, max_fan_out, max_recursion
        node_count += 1
        if node.kind is NodeKind.ELEMENT:
            element_count += 1
        elif node.kind is NodeKind.TEXT:
            text_count += 1
        elif node.kind is NodeKind.ATTRIBUTE:
            attribute_count += 1
        tags.add(node.tag)
        fan_out = len(node.children)
        if fan_out:
            internal_count += 1
            fan_out_total += fan_out
            histogram[fan_out] = histogram.get(fan_out, 0) + 1
            if fan_out > max_fan_out:
                max_fan_out = fan_out
        else:
            leaf_count += 1
        tag_counts[node.tag] = tag_counts.get(node.tag, 0) + 1
        if tag_counts[node.tag] > max_recursion:
            max_recursion = tag_counts[node.tag]
        for child in node.children:
            walk(child, tag_counts)
        tag_counts[node.tag] -= 1

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, tree.height() + 100))
    try:
        walk(tree.root, {})
    finally:
        sys.setrecursionlimit(old_limit)

    level_widths = [len(level) for level in tree.levels()]
    mean_fan_out = fan_out_total / internal_count if internal_count else 0.0
    return TreeStats(
        node_count=node_count,
        element_count=element_count,
        text_count=text_count,
        attribute_count=attribute_count,
        height=len(level_widths),
        max_fan_out=max_fan_out,
        mean_fan_out=mean_fan_out,
        leaf_count=leaf_count,
        internal_count=internal_count,
        fan_out_histogram=histogram,
        level_widths=level_widths,
        max_tag_recursion=max_recursion,
        distinct_tags=len(tags),
    )
