"""Structural diff between two XML trees.

Change management is one of the motivating applications of XML node
identification (the paper's related work cites the XID-map of Marian
et al. [8]); what a change manager needs from a numbering scheme is
cheap relabeling under the edit scripts diffs produce. This module
computes such scripts: a sequence of subtree inserts and deletes that
transforms one tree into another, replayable through any scheme's
``insert``/``delete`` updaters so the relabel cost of realistic
document evolution can be measured.

The algorithm is a recursive LCS match: children of matched nodes are
aligned by *signature* (tag + attributes + text, hashed over the whole
subtree); same-tag pairs whose subtrees differ are matched shallowly
and recursed into, everything unmatched becomes a delete (old side) or
an insert (new side). The script is correct by construction — tests
apply it and compare — though not guaranteed minimal (classic tree
edit distance is cubic; this is O(n·m) per sibling list).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.xmltree.node import NodeKind, XmlNode
from repro.xmltree.tree import XmlTree


@dataclass(frozen=True)
class EditOp:
    """One step of an edit script, positioned by child-ordinal path.

    Paths address the *current* state of the tree being transformed:
    apply ops strictly in order. ``insert`` carries a subtree spec
    (produced by :func:`_spec_of`) to materialise; ``patch`` carries a
    (text, attributes) pair applied in place — only ever emitted for
    the document root, whose own content cannot be replaced by
    delete+insert. Patches change no identifiers.
    """

    kind: str  # "delete" | "insert" | "patch"
    path: Tuple[int, ...]  # target node (delete/patch) / parent (insert)
    position: int = 0  # insert position among the parent's children
    spec: object = None  # subtree to insert / (text, attrs) to patch


def _signature(node: XmlNode, memo: Dict[int, int]) -> int:
    """Order-sensitive hash of a whole subtree."""
    cached = memo.get(node.node_id)
    if cached is None:
        cached = hash(
            (
                node.tag,
                node.kind.value,
                node.text,
                tuple(sorted(node.attributes.items())),
                tuple(_signature(child, memo) for child in node.children),
            )
        )
        memo[node.node_id] = cached
    return cached


def _shallow_key(node: XmlNode) -> Tuple:
    """Key for non-exact matching: everything except the children.

    Text and attributes are included, so a node whose own content
    changed is replaced (delete+insert) rather than silently kept —
    the script stays correct at the cost of coarser granularity.
    """
    return (
        node.tag,
        node.kind.value,
        node.text,
        tuple(sorted(node.attributes.items())),
    )


def _spec_of(node: XmlNode):
    """Nested-tuple spec of a subtree, materialisable by _build_spec."""
    return (
        node.tag,
        node.kind.value,
        node.text,
        tuple(sorted(node.attributes.items())),
        tuple(_spec_of(child) for child in node.children),
    )


def build_from_spec(spec) -> XmlNode:
    """Materialise a subtree from a spec produced by the differ."""
    tag, kind, text, attributes, children = spec
    node = XmlNode(tag, NodeKind(kind), attributes=dict(attributes), text=text)
    for child_spec in children:
        node.append_child(build_from_spec(child_spec))
    return node


def _lcs(keys_old: Sequence, keys_new: Sequence) -> List[Tuple[int, int]]:
    """Index pairs of a longest common subsequence (monotone on both
    sides by construction)."""
    rows, cols = len(keys_old), len(keys_new)
    table = [[0] * (cols + 1) for _ in range(rows + 1)]
    for i in range(rows - 1, -1, -1):
        for j in range(cols - 1, -1, -1):
            if keys_old[i] == keys_new[j]:
                table[i][j] = table[i + 1][j + 1] + 1
            else:
                table[i][j] = max(table[i + 1][j], table[i][j + 1])
    pairs: List[Tuple[int, int]] = []
    i = j = 0
    while i < rows and j < cols:
        if keys_old[i] == keys_new[j]:
            pairs.append((i, j))
            i += 1
            j += 1
        elif table[i + 1][j] >= table[i][j + 1]:
            i += 1
        else:
            j += 1
    return pairs


def _lcs_pairs(
    old: Sequence[XmlNode],
    new: Sequence[XmlNode],
    old_memo: Dict[int, int],
    new_memo: Dict[int, int],
) -> List[Tuple[int, int, bool]]:
    """Two-phase alignment of two sibling lists.

    Phase 1 matches identical subtrees (LCS over full-subtree
    signatures). Phase 2 aligns the leftovers between consecutive
    exact matches by an LCS over *shallow* keys — also monotone, so
    the combined pair list never crosses (survivors keep their
    relative order, which the insert-position arithmetic relies on).
    Returns (old index, new index, exact) triples sorted on both sides.
    """
    old_keys = [_signature(node, old_memo) for node in old]
    new_keys = [_signature(node, new_memo) for node in new]
    exact = [(i, j, True) for i, j in _lcs(old_keys, new_keys)]

    pairs = list(exact)
    boundaries = [(-1, -1)] + [(i, j) for i, j, _ in exact] + [(len(old), len(new))]
    for (lo_i, lo_j), (hi_i, hi_j) in zip(boundaries, boundaries[1:]):
        free_old = list(range(lo_i + 1, hi_i))
        free_new = list(range(lo_j + 1, hi_j))
        if not free_old or not free_new:
            continue
        shallow = _lcs(
            [_shallow_key(old[i]) for i in free_old],
            [_shallow_key(new[j]) for j in free_new],
        )
        pairs.extend((free_old[a], free_new[b], False) for a, b in shallow)
    pairs.sort()
    return pairs


def diff_trees(old: XmlTree, new: XmlTree) -> List[EditOp]:
    """Edit script transforming *old* into (a structural copy of) *new*.

    Root tags must match (documents with different roots are not
    edits of each other). The returned ops are valid when applied in
    order via :func:`apply_edit_script` or through scheme updaters.
    """
    ops: List[EditOp] = []
    old_memo: Dict[int, int] = {}
    new_memo: Dict[int, int] = {}

    def recurse(old_node: XmlNode, new_node: XmlNode, path: Tuple[int, ...]) -> None:
        pairs = _lcs_pairs(old_node.children, new_node.children, old_memo, new_memo)
        matched_old = {i for i, _, _ in pairs}
        # Deletes, right-to-left so earlier ordinals stay valid.
        for index in range(len(old_node.children) - 1, -1, -1):
            if index not in matched_old:
                ops.append(EditOp("delete", path + (index,)))
        # After deletions, the surviving old children sit at ordinals
        # 0..len(pairs)-1 in their original relative order.
        survivors = sorted(i for i, _, _ in pairs)
        position_of = {orig: rank for rank, orig in enumerate(survivors)}
        # Inserts, left-to-right at the *new* (final) positions: when
        # position j is reached, every earlier new position is already
        # occupied (either a survivor — relative order preserved by the
        # monotone match — or a fresh insert), so j is correct as-is.
        matched_new = {j: i for i, j, _exact in pairs}
        for j, new_child in enumerate(new_node.children):
            if j not in matched_new:
                ops.append(
                    EditOp("insert", path, position=j, spec=_spec_of(new_child))
                )
            else:
                position_of[matched_new[j]] = j  # the survivor's final slot
        # Recurse into shallow matches (exact ones are already equal).
        for i, j, exact in pairs:
            if not exact:
                recurse(
                    old_node.children[i], new_node.children[j], path + (position_of[i],)
                )

    if old.root.tag != new.root.tag:
        raise ValueError("cannot diff documents with different root tags")
    if (old.root.text, old.root.attributes) != (new.root.text, new.root.attributes):
        ops.append(
            EditOp(
                "patch",
                (),
                spec=(new.root.text, tuple(sorted(new.root.attributes.items()))),
            )
        )
    recurse(old.root, new.root, ())
    return ops


def apply_edit_script(tree: XmlTree, ops: Sequence[EditOp]) -> XmlTree:
    """Apply an edit script in place (structure only); returns *tree*."""
    for op in ops:
        if op.kind == "delete":
            tree.delete_subtree(_locate(tree, op.path))
        elif op.kind == "insert":
            parent = _locate(tree, op.path)
            tree.insert_node(parent, op.position, build_from_spec(op.spec))
        else:  # patch
            node = _locate(tree, op.path)
            text, attributes = op.spec
            node.text = text
            node.attributes = dict(attributes)
    return tree


def apply_through_labeling(labeling, ops: Sequence[EditOp]) -> List:
    """Replay an edit script through a scheme labeling's updaters,
    returning the RelabelReports — the change-management cost metric."""
    from repro.core.update import RelabelReport

    reports = []
    tree = labeling.tree
    for op in ops:
        if op.kind == "delete":
            reports.append(labeling.delete(_locate(tree, op.path)))
        elif op.kind == "insert":
            parent = _locate(tree, op.path)
            reports.append(
                labeling.insert(parent, op.position, build_from_spec(op.spec))
            )
        else:  # patch: content only, no identifier changes
            node = _locate(tree, op.path)
            text, attributes = op.spec
            node.text = text
            node.attributes = dict(attributes)
            reports.append(
                RelabelReport(
                    scheme=labeling.scheme_name,
                    operation="patch",
                    surviving_nodes=tree.size(),
                )
            )
    return reports


def _locate(tree: XmlTree, path: Tuple[int, ...]) -> XmlNode:
    node = tree.root
    for ordinal in path:
        node = node.children[ordinal]
    return node
