"""XML serialization for :class:`~repro.xmltree.tree.XmlTree`.

The serializer is the inverse of :mod:`repro.xmltree.parser`: documents
produced here re-parse to a structurally identical tree (the round-trip
property is pinned by tests).
"""

from __future__ import annotations

from typing import List

from repro.xmltree.node import NodeKind, XmlNode
from repro.xmltree.tree import XmlTree


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value for double-quoted serialization."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
    )


def serialize(
    tree: XmlTree,
    indent: str = "",
    declaration: bool = False,
) -> str:
    """Serialize *tree* to a string.

    Parameters
    ----------
    indent:
        When non-empty, pretty-print with that unit of indentation.
        Pretty-printing inserts whitespace *between* tags only for
        elements without text children, so data-centric documents
        round-trip exactly when whitespace text is dropped on re-parse.
    declaration:
        Prepend ``<?xml version="1.0" encoding="UTF-8"?>``.
    """
    parts: List[str] = []
    if declaration:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>')
        if indent:
            parts.append("\n")
    _write_node(tree.root, parts, indent, 0)
    return "".join(parts)


def _has_text_children(node: XmlNode) -> bool:
    return any(child.kind is NodeKind.TEXT for child in node.children)


def _write_node(node: XmlNode, parts: List[str], indent: str, depth: int) -> None:
    pad = indent * depth if indent else ""
    if node.kind is NodeKind.TEXT:
        parts.append(escape_text(node.text or ""))
        return
    if node.kind is NodeKind.COMMENT:
        parts.append(f"{pad}<!--{node.text or ''}-->")
        if indent:
            parts.append("\n")
        return
    if node.kind is NodeKind.ATTRIBUTE:
        # Materialised attribute nodes are serialized by their parent
        # element via the attributes dict; standalone serialization
        # renders an attribute-like element for debuggability.
        parts.append(f'{pad}<{node.tag} value="{escape_attribute(node.text or "")}"/>')
        if indent:
            parts.append("\n")
        return

    attrs = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in node.attributes.items()
    )
    renderable = [c for c in node.children if c.kind is not NodeKind.ATTRIBUTE]
    inline_text = node.text if node.text else ""
    if not renderable and not inline_text:
        parts.append(f"{pad}<{node.tag}{attrs}/>")
        if indent:
            parts.append("\n")
        return

    mixed = _has_text_children(node) or bool(inline_text)
    parts.append(f"{pad}<{node.tag}{attrs}>")
    if inline_text:
        parts.append(escape_text(inline_text))
    if indent and not mixed:
        parts.append("\n")
    for child in renderable:
        _write_node(child, parts, "" if mixed else indent, depth + 1)
    if indent and not mixed:
        parts.append(pad)
    parts.append(f"</{node.tag}>")
    if indent:
        parts.append("\n")


def write_file(tree: XmlTree, path: str, **options) -> None:
    """Serialize *tree* into the file at *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(serialize(tree, **options))
