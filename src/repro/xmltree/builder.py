"""Programmatic tree construction helpers.

Two styles are offered:

* :func:`build` — build a tree from a nested-tuple/py-literal spec,
  handy in tests and for the paper's worked examples;
* :class:`TreeBuilder` — an imperative push/pop builder matching the
  event stream of the parser.

Spec grammar for :func:`build`::

    spec  := tag                          # leaf element
           | (tag, [spec, ...])           # element with children
           | (tag, {attr: value}, [spec, ...])
           | ("#text", "content")         # text node

Example
-------
>>> tree = build(("a", [("b", ["c", "d"]), "e"]))
>>> [n.tag for n in tree.preorder()]
['a', 'b', 'c', 'd', 'e']
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.errors import TreeStructureError
from repro.xmltree.node import NodeKind, XmlNode
from repro.xmltree.tree import XmlTree

Spec = Union[str, tuple]


def build(spec: Spec) -> XmlTree:
    """Build an :class:`XmlTree` from a nested spec (see module docs)."""
    return XmlTree(build_node(spec))


def build_node(spec: Spec) -> XmlNode:
    """Build a single (sub)tree node from a spec."""
    if isinstance(spec, str):
        return XmlNode(spec, NodeKind.ELEMENT)
    if not isinstance(spec, tuple) or not spec:
        raise TreeStructureError(f"invalid tree spec: {spec!r}")

    tag = spec[0]
    if not isinstance(tag, str):
        raise TreeStructureError(f"spec tag must be a string, got {tag!r}")

    if tag == "#text":
        if len(spec) != 2 or not isinstance(spec[1], str):
            raise TreeStructureError("#text spec must be ('#text', content)")
        return XmlNode("#text", NodeKind.TEXT, text=spec[1])

    attributes: Optional[Dict[str, str]] = None
    children: Sequence[Spec] = ()
    rest = spec[1:]
    if len(rest) == 1:
        if isinstance(rest[0], dict):
            attributes = rest[0]
        elif isinstance(rest[0], (list, tuple)):
            children = rest[0]
        elif isinstance(rest[0], str):
            # (tag, "text") shorthand: element with a single text child.
            node = XmlNode(tag, NodeKind.ELEMENT)
            node.append_child(XmlNode("#text", NodeKind.TEXT, text=rest[0]))
            return node
        else:
            raise TreeStructureError(f"invalid spec tail for {tag!r}: {rest[0]!r}")
    elif len(rest) == 2:
        attributes, children = rest
        if not isinstance(attributes, dict) or not isinstance(children, (list, tuple)):
            raise TreeStructureError(f"invalid 3-tuple spec for {tag!r}")
    elif len(rest) > 2:
        raise TreeStructureError(f"spec tuple too long for {tag!r}")

    node = XmlNode(tag, NodeKind.ELEMENT, attributes=attributes)
    for child_spec in children:
        node.append_child(build_node(child_spec))
    return node


class TreeBuilder:
    """Imperative builder: ``start(tag)`` / ``text(data)`` / ``end()``.

    >>> b = TreeBuilder()
    >>> b.start("a"); b.start("b"); b.end(); b.end()
    >>> tree = b.finish()
    >>> tree.root.tag
    'a'
    """

    def __init__(self):
        self._root: Optional[XmlNode] = None
        self._stack: List[XmlNode] = []

    def start(self, tag: str, attributes: Optional[Dict[str, str]] = None) -> XmlNode:
        """Open an element; it becomes the current insertion point."""
        node = XmlNode(tag, NodeKind.ELEMENT, attributes=attributes)
        if self._stack:
            self._stack[-1].append_child(node)
        elif self._root is None:
            self._root = node
        else:
            raise TreeStructureError("document already has a root element")
        self._stack.append(node)
        return node

    def text(self, data: str) -> XmlNode:
        """Append a text node under the current element."""
        if not self._stack:
            raise TreeStructureError("text outside any element")
        node = XmlNode("#text", NodeKind.TEXT, text=data)
        self._stack[-1].append_child(node)
        return node

    def end(self) -> XmlNode:
        """Close the current element and return it."""
        if not self._stack:
            raise TreeStructureError("end() without a matching start()")
        return self._stack.pop()

    def element(self, tag: str, attributes: Optional[Dict[str, str]] = None) -> XmlNode:
        """Convenience: ``start`` + immediate ``end`` (a leaf element)."""
        node = self.start(tag, attributes)
        self.end()
        return node

    def finish(self) -> XmlTree:
        """Return the built tree; all elements must be closed."""
        if self._stack:
            raise TreeStructureError(
                f"unclosed element <{self._stack[-1].tag}> at finish()"
            )
        if self._root is None:
            raise TreeStructureError("no root element was built")
        return XmlTree(self._root)


def complete_kary_tree(fan_out: int, height: int, tag: str = "n") -> XmlTree:
    """A complete *fan_out*-ary tree with *height* levels (height >= 1).

    Every node carries the same tag; useful for worst-case UID studies
    (UID is "tight" exactly on complete k-ary trees).
    """
    if fan_out < 0 or height < 1:
        raise TreeStructureError("need fan_out >= 0 and height >= 1")
    root = XmlNode(tag, NodeKind.ELEMENT)
    frontier = [root]
    for _ in range(height - 1):
        next_frontier: List[XmlNode] = []
        for node in frontier:
            for _ in range(fan_out):
                child = XmlNode(tag, NodeKind.ELEMENT)
                node.append_child(child)
                next_frontier.append(child)
        frontier = next_frontier
    return XmlTree(root)
