"""Circuit breaker: fail fast on a dependency that keeps failing.

A retry loop against a dead dependency converts one outage into many
slow failures — every caller pays the full retry budget before
learning what the last caller already knew. A circuit breaker shares
that knowledge: after ``failure_threshold`` consecutive failures the
breaker *opens* and refuses calls instantly (typed
:class:`~repro.errors.CircuitOpen`) until a backoff window elapses;
then it admits a single probe (*half-open*) and either closes on
success or re-opens with a longer, jittered window.

The open-window schedule reuses :class:`BackoffPolicy` (decorrelated
jitter by default) so a fleet of breakers guarding the same dependency
does not re-probe in lockstep. Clock and RNG are injected for
deterministic tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import CircuitOpen

from .backoff import BackoffPolicy

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-dependency failure gate with closed/open/half-open states.

    Parameters
    ----------
    name:
        Identifies the breaker in errors and metrics.
    failure_threshold:
        Consecutive failures that trip the breaker open.
    backoff:
        Open-window schedule; defaults to decorrelated jitter over
        ``[0.05s, 5s]``.
    clock:
        Monotonic seconds clock; defaults to :func:`time.monotonic`.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        backoff: Optional[BackoffPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.backoff = backoff if backoff is not None else BackoffPolicy(
            base=0.05, cap=5.0, jitter="decorrelated"
        )
        self.clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._open_window = 0.0
        self._open_count = 0
        #: a half-open probe is in flight; holds the slot until the
        #: caller resolves it with record_success/record_failure
        self._probing = False
        # lifetime counters for metrics
        self._stats = {
            "calls_allowed": 0,
            "calls_rejected": 0,
            "failures": 0,
            "successes": 0,
            "opens": 0,
        }

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        """State after applying window expiry (caller holds the lock)."""
        if self._state == OPEN and not self._probing:
            if self.clock() - self._opened_at >= self._open_window:
                self._state = HALF_OPEN
        return self._state

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """True if a call may proceed; False while the breaker is open.

        In half-open state only the first caller gets the probe slot;
        concurrent callers are rejected until the probe resolves.
        """
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                self._stats["calls_allowed"] += 1
                return True
            if state == HALF_OPEN:
                # claim the single probe slot: the breaker reads as OPEN
                # to everyone else until record_success/record_failure
                # resolves the probe
                self._state = OPEN
                self._probing = True
                self._stats["calls_allowed"] += 1
                return True
            self._stats["calls_rejected"] += 1
            return False

    def guard(self) -> None:
        """Raise :class:`CircuitOpen` instead of returning False."""
        if not self.allow():
            raise CircuitOpen(
                f"circuit {self.name!r} is open; retry in "
                f"{self.retry_after_s():.3f}s",
                breaker=self.name,
                retry_after_s=self.retry_after_s(),
            )

    def record_success(self) -> None:
        """A guarded call succeeded: close and reset the failure run."""
        with self._lock:
            self._stats["successes"] += 1
            self._state = CLOSED
            self._probing = False
            self._consecutive_failures = 0
            self._open_count = 0

    def record_failure(self) -> None:
        """A guarded call failed: count it, trip open past threshold."""
        with self._lock:
            self._stats["failures"] += 1
            self._probing = False
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._open_count += 1
                self._open_window = self.backoff.delay(
                    self._open_count, previous=self._open_window
                )
                self._opened_at = self.clock()
                if self._state != OPEN:
                    self._stats["opens"] += 1
                self._state = OPEN

    def reset(self) -> None:
        """Force-close (used when an operator restores a dependency)."""
        with self._lock:
            self._state = CLOSED
            self._probing = False
            self._consecutive_failures = 0
            self._open_count = 0
            self._open_window = 0.0

    # ------------------------------------------------------------------
    def retry_after_s(self) -> float:
        """Seconds until the next probe is admitted (0 when not open)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0, self._open_window - (self.clock() - self._opened_at))

    def stats(self) -> Dict[str, float]:
        with self._lock:
            state = self._effective_state()
            snapshot = dict(self._stats)
        snapshot["is_open"] = 1 if state == OPEN else 0
        return snapshot

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.name!r} {self.state}>"
