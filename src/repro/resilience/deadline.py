"""Deadline propagation and cooperative cancellation.

A query with no deadline can hold its worker thread hostage: one
pathological expression over a large corpus occupies a slot until it
finishes, and under load those slots are exactly what admission
control is rationing. The serving-tier discipline ("The Tail at
Scale") is to give every request a budget at the edge, carry it
through each layer, and *stop working* the moment the budget is gone
— returning a typed :class:`~repro.errors.QueryTimeout` that tells the
caller how much work had been done.

Cancellation here is cooperative: evaluator loops, store probes and
twig joins call :meth:`Deadline.tick` at their natural step points.
Checking the clock on every tick would tax the hot path (the batched
scheme evaluator processes thousands of nodes per step), so ``tick``
only consults the clock every ``check_interval`` calls — a countdown,
not a modulo, so the common case is one decrement and one compare.

The clock is injectable so tests can march time forward manually and
make timeout behaviour fully deterministic.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import QueryTimeout


class Deadline:
    """A wall-clock budget carried through one query's evaluation.

    Parameters
    ----------
    budget_ms:
        Total budget in milliseconds, measured from construction.
    clock:
        Monotonic nanosecond clock; defaults to
        :func:`time.monotonic_ns`. Inject a fake for tests.
    check_interval:
        Number of :meth:`tick` calls between real clock reads. 1 checks
        every tick; the default 64 keeps per-node overhead to a
        decrement on the hot path while bounding overshoot to 64 steps.
    """

    __slots__ = (
        "budget_ms",
        "clock",
        "check_interval",
        "_start_ns",
        "_deadline_ns",
        "_countdown",
        "steps",
        "items",
    )

    def __init__(
        self,
        budget_ms: float,
        clock: Optional[Callable[[], int]] = None,
        check_interval: int = 64,
    ):
        if budget_ms <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_ms}")
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.budget_ms = float(budget_ms)
        self.clock = clock if clock is not None else time.monotonic_ns
        self.check_interval = check_interval
        self._start_ns = self.clock()
        self._deadline_ns = self._start_ns + int(budget_ms * 1e6)
        self._countdown = check_interval
        #: cancellation points passed so far (partial-work counter)
        self.steps = 0
        #: nodes/candidates processed across those points
        self.items = 0

    # ------------------------------------------------------------------
    def elapsed_ms(self) -> float:
        """Wall time since construction, in milliseconds."""
        return (self.clock() - self._start_ns) / 1e6

    def remaining_ms(self) -> float:
        """Budget left; negative once the deadline has passed."""
        return (self._deadline_ns - self.clock()) / 1e6

    def expired(self) -> bool:
        """True once the budget is spent (always reads the clock)."""
        return self.clock() >= self._deadline_ns

    # ------------------------------------------------------------------
    def tick(self, items: int = 0) -> None:
        """Pass one cancellation point; raise on an expired budget.

        *items* counts the units of work this point represents (one for
        a per-node loop iteration, the batch size for a set-at-a-time
        step) and feeds the partial-work counters attached to the
        eventual :class:`QueryTimeout`.
        """
        self.steps += 1
        if items:
            self.items += items
        # weight the countdown by batch size so a set-at-a-time step
        # that swallowed thousands of nodes forces a clock check at
        # the very next tick instead of 63 batches later
        self._countdown -= 1 + items
        if self._countdown > 0:
            return
        self._countdown = self.check_interval
        if self.clock() >= self._deadline_ns:
            self._raise()

    def check(self) -> None:
        """Unconditional clock check (for loop entry / coarse points)."""
        if self.clock() >= self._deadline_ns:
            self._raise()

    def _raise(self) -> None:
        elapsed = self.elapsed_ms()
        raise QueryTimeout(
            f"query exceeded its {self.budget_ms:.0f} ms deadline "
            f"({elapsed:.1f} ms elapsed, {self.steps} steps, "
            f"{self.items} items processed)",
            elapsed_ms=elapsed,
            budget_ms=self.budget_ms,
            steps=self.steps,
            items=self.items,
        )

    def __repr__(self) -> str:
        return (
            f"<Deadline budget={self.budget_ms:.0f}ms "
            f"remaining={self.remaining_ms():.1f}ms steps={self.steps}>"
        )
