"""Retry backoff policies with jitter and an attempt budget.

Deterministic exponential backoff synchronises retries: every client
that failed together retries together, and the retry storm arrives as
a wave (the thundering-herd problem the Dynamo and "Tail at Scale"
literature warns about). The fix is jitter — spreading each delay over
a random interval — plus a hard attempt budget so a dead dependency
fails fast instead of consuming an unbounded retry allowance.

:class:`BackoffPolicy` packages the three standard strategies behind
one ``delay(attempt, previous)`` call:

* ``none`` — classic ``base * 2**(attempt-1)``, capped;
* ``full`` — AWS "full jitter": uniform over ``[0, exp_delay]``;
* ``decorrelated`` — AWS "decorrelated jitter": uniform over
  ``[base, 3 * previous_delay]``, which spreads retries *and* forgets
  the attempt number, so long-lived loops do not re-synchronise.

The RNG is injected (seeded) so every simulated schedule reproduces
bit-for-bit from its seed — the same discipline as
:class:`~repro.storage.faults.FaultInjector`.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import StorageError

#: strategies :class:`BackoffPolicy` accepts
JITTER_MODES = ("none", "full", "decorrelated")


class BackoffPolicy:
    """Delay generator for a retry loop.

    Parameters
    ----------
    base:
        First-attempt delay in seconds (also the decorrelated floor).
    cap:
        Upper bound every returned delay is clamped to.
    jitter:
        One of :data:`JITTER_MODES`.
    max_attempts:
        Total attempt budget (first try included); ``None`` leaves the
        budget to the caller. :meth:`exhausted` answers the question.
    rng:
        Seeded :class:`random.Random`; a fresh ``Random(0)`` is created
        if omitted so behaviour is deterministic by default.
    """

    def __init__(
        self,
        base: float = 0.01,
        cap: float = 1.0,
        jitter: str = "decorrelated",
        max_attempts: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ):
        if base <= 0:
            raise StorageError(f"backoff base must be positive, got {base}")
        if cap < base:
            raise StorageError(f"backoff cap {cap} below base {base}")
        if jitter not in JITTER_MODES:
            raise StorageError(
                f"unknown jitter mode {jitter!r}; pick one of {JITTER_MODES}"
            )
        if max_attempts is not None and max_attempts < 1:
            raise StorageError("attempt budget must be >= 1")
        self.base = base
        self.cap = cap
        self.jitter = jitter
        self.max_attempts = max_attempts
        self.rng = rng if rng is not None else random.Random(0)

    # ------------------------------------------------------------------
    def delay(self, attempt: int, previous: float = 0.0) -> float:
        """Seconds to wait before retry number *attempt* (1-based).

        *previous* is the delay the caller last waited (used by the
        decorrelated strategy; ignored otherwise).
        """
        if attempt < 1:
            raise StorageError(f"attempt numbers are 1-based, got {attempt}")
        exponential = min(self.cap, self.base * (2 ** (attempt - 1)))
        if self.jitter == "none":
            return exponential
        if self.jitter == "full":
            return self.rng.uniform(0.0, exponential)
        # decorrelated: uniform over [base, 3 * previous], seeded by the
        # last delay actually taken rather than the attempt counter
        upper = max(self.base, 3.0 * (previous if previous > 0 else self.base))
        return min(self.cap, self.rng.uniform(self.base, upper))

    def exhausted(self, attempts_made: int) -> bool:
        """True once *attempts_made* has consumed the whole budget."""
        return self.max_attempts is not None and attempts_made >= self.max_attempts

    def __repr__(self) -> str:
        budget = self.max_attempts if self.max_attempts is not None else "inf"
        return (
            f"<BackoffPolicy {self.jitter} base={self.base} cap={self.cap} "
            f"budget={budget}>"
        )
