"""A NodeStore that degrades instead of failing.

:class:`ResilientNodeStore` wraps the paged store (cold reads through
the buffer pool — the path the chaos harness attacks with transient
errors and fetch-time bit flips) with three layers of defence:

1. **bounded retries** with jittered backoff for transient read faults
   (:class:`~repro.errors.TransientFetchError`,
   :class:`~repro.errors.ChecksumError` — a damaged page may read
   clean from a replica-equivalent retry in real systems; here the
   injector clears one-shot faults);
2. a **circuit breaker** on the cold-read path, so a paged store whose
   reads keep failing stops being probed on every call;
3. a **memory-store fallback**: when the breaker is open or retries
   are exhausted, the same operation is answered by the
   :class:`~repro.store.memory.MemoryNodeStore` for the same document
   generation — correct answers from RAM while the disk path heals.

The stores speak different label dialects (the paged store hands out
flattened :func:`~repro.storage.database.label_key` tuples, the
memory store scheme label objects), so the wrapper carries a key map
built from the memory store's rank index and translates arguments and
results at the boundary. Consumers see one label space: the primary's.
Rank-labeled primaries — the sqlite store, whose labels *are*
preorder ranks and whose guarded failure modes
(:class:`~repro.errors.TransientFetchError` on busy/locked reads,
:class:`~repro.errors.StorageError` on structural damage) map into
the same taxonomy — translate by rank instead: ``label_at`` going
down, ``rank_of`` coming back, no key map at all.

Semantic errors — :class:`~repro.errors.UnknownLabelError` and
friends — pass through untouched: a label that names no node is wrong
on *every* store, and masking that behind a fallback would turn a
caller bug into silent weirdness.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    ChecksumError,
    CircuitOpen,
    InjectedFaultError,
    SiteUnavailableError,
    TransientFetchError,
    UnknownLabelError,
)
from repro.storage.database import label_key
from repro.store.base import Label, NodeRecord, NodeStore
from repro.xmltree.node import XmlNode

from .backoff import BackoffPolicy
from .breaker import CircuitBreaker

#: infrastructure failures a retry may clear
RETRYABLE = (TransientFetchError, ChecksumError, InjectedFaultError)
#: failures that route to the fallback store (retryables + exhaustion)
DEGRADABLE = RETRYABLE + (CircuitOpen, SiteUnavailableError)


class ResilientNodeStore(NodeStore):
    """Breaker-guarded paged store with a memory-store fallback.

    Parameters
    ----------
    primary:
        The :class:`~repro.store.paged.PagedNodeStore` to protect.
    fallback:
        A :class:`~repro.store.memory.MemoryNodeStore` over the same
        document generation, or None to fail (typed) when the primary
        path is exhausted.
    breaker:
        Circuit breaker for the primary; a default with threshold 5
        is created if omitted.
    backoff:
        Retry schedule; default full jitter over [1ms, 50ms] with a
        3-attempt budget.
    sleep:
        Injectable sleep for retry delays (tests pass a no-op; the
        accumulated ``backoff_seconds`` counter is charged either way).
    """

    store_kind = "resilient"

    def __init__(
        self,
        primary: NodeStore,
        fallback: Optional[NodeStore] = None,
        breaker: Optional[CircuitBreaker] = None,
        backoff: Optional[BackoffPolicy] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        super().__init__()
        self.primary = primary
        self.fallback = fallback
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            "paged-reads", failure_threshold=5
        )
        self.backoff = backoff if backoff is not None else BackoffPolicy(
            base=0.001, cap=0.05, jitter="full", max_attempts=3
        )
        self.sleep = sleep if sleep is not None else time.sleep
        self.scheme_name = primary.scheme_name
        self._counters: Dict[str, float] = {
            "primary_calls": 0,
            "primary_errors": 0,
            "retries": 0,
            "fallback_calls": 0,
            "backoff_seconds": 0.0,
        }
        # label translation between the two stores' dialects, built
        # lazily from the fallback's rank map on first degradation
        self._to_mem: Optional[Dict[Label, Label]] = None
        # fallback-materialised nodes need their own id → label/rank
        # maps so label_for and document-order sorting keep working
        self._fallback_label_by_id: Dict[int, Label] = {}
        self._fallback_order: Dict[int, int] = {}
        # one materialised identity per label, whichever path answered
        # first: the primary and fallback build *different* XmlNode
        # objects for the same logical node, and a query whose fault
        # schedule flips between the paths mid-run must not see both
        # (duplicate identities survive node-set dedup)
        self._node_by_label: Dict[Label, XmlNode] = {}

    # ------------------------------------------------------------------
    # Deadline pass-through: the paged store is the layer that ticks
    # ------------------------------------------------------------------
    @property
    def deadline(self):
        return getattr(self.primary, "deadline", None)

    @deadline.setter
    def deadline(self, value):
        try:
            self.primary.deadline = value
        except AttributeError:
            pass

    # ------------------------------------------------------------------
    # The guarded primary call
    # ------------------------------------------------------------------
    def _primary_call(self, method: Callable, args: tuple):
        self.breaker.guard()
        self._counters["primary_calls"] += 1
        attempts = 0
        delay = 0.0
        while True:
            attempts += 1
            try:
                result = method(*args)
            except RETRYABLE:
                self._counters["primary_errors"] += 1
                self.breaker.record_failure()
                if self.backoff.exhausted(attempts) or not self.breaker.allow():
                    raise
                delay = self.backoff.delay(attempts, previous=delay)
                self._counters["retries"] += 1
                self._counters["backoff_seconds"] += delay
                self.sleep(delay)
                continue
            self.breaker.record_success()
            return result

    # ------------------------------------------------------------------
    # Label translation
    # ------------------------------------------------------------------
    def _mem_label(self, key: Label) -> Label:
        """Primary-dialect label → fallback label.

        Rank-labeled primaries (the sqlite store hands out preorder
        ranks directly) translate by rank — ``fallback.label_at`` —
        with no key map at all; storage-keyed primaries (paged) go
        through a :func:`label_key` map over the fallback's rank map.
        """
        if getattr(self.primary, "labels_are_ranks", False):
            return self.fallback.label_at(key)
        if self._to_mem is None:
            rank_map = getattr(self.fallback, "rank_map", None)
            if rank_map is None:
                raise UnknownLabelError(
                    "fallback store exposes no rank_map to translate labels"
                )
            self._to_mem = {label_key(lb): lb for lb in rank_map}
        try:
            return self._to_mem[key]
        except KeyError:
            raise UnknownLabelError(
                f"label {key!r} unknown to the fallback store"
            ) from None

    def _primary_label(self, value: Label) -> Label:
        """Fallback label → primary-dialect label (inverse of
        :meth:`_mem_label`)."""
        if getattr(self.primary, "labels_are_ranks", False):
            return self.fallback.rank_of(value)
        return label_key(value)

    def _call(
        self,
        opname: str,
        args: tuple = (),
        label_positions: Tuple[int, ...] = (),
        result: str = "raw",
    ):
        """Run *opname* on the primary; degrade to the fallback on
        infrastructure failure, translating labels both ways."""
        try:
            return self._primary_call(getattr(self.primary, opname), args)
        except DEGRADABLE:
            if self.fallback is None:
                raise
            self._counters["fallback_calls"] += 1
            mem_args = list(args)
            for position in label_positions:
                mem_args[position] = self._mem_label(args[position])
            value = getattr(self.fallback, opname)(*mem_args)
            if result == "label":
                return self._primary_label(value)
            if result == "optional_label":
                return None if value is None else self._primary_label(value)
            if result == "labels":
                return [self._primary_label(v) for v in value]
            return value

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self.primary.generation

    def size(self) -> int:
        return self._call("size")

    def root_label(self) -> Label:
        return self._call("root_label", result="label")

    def rank_of(self, label: Label) -> int:
        return self._call("rank_of", (label,), label_positions=(0,))

    def end_of(self, label: Label) -> int:
        return self._call("end_of", (label,), label_positions=(0,))

    def label_at(self, rank: int) -> Label:
        return self._call("label_at", (rank,), result="label")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def parent_of(self, label: Label) -> Optional[Label]:
        return self._call(
            "parent_of", (label,), label_positions=(0,), result="optional_label"
        )

    def children_of(self, label: Label) -> List[Label]:
        return self._call(
            "children_of", (label,), label_positions=(0,), result="labels"
        )

    def descendant_labels(self, label: Label, or_self: bool = False) -> List[Label]:
        return self._call(
            "descendant_labels",
            (label, or_self),
            label_positions=(0,),
            result="labels",
        )

    def ancestor_labels(self, label: Label, or_self: bool = False) -> List[Label]:
        return self._call(
            "ancestor_labels",
            (label, or_self),
            label_positions=(0,),
            result="labels",
        )

    # ------------------------------------------------------------------
    # Record fetch
    # ------------------------------------------------------------------
    def record(self, label: Label) -> NodeRecord:
        try:
            return self._primary_call(self.primary.record, (label,))
        except DEGRADABLE:
            if self.fallback is None:
                raise
            self._counters["fallback_calls"] += 1
            got = self.fallback.record(self._mem_label(label))
            # re-key into the paged label dialect so consumers stay in
            # one label space
            return NodeRecord(label, got.tag, got.kind, got.text)

    def node_for(self, label: Label) -> XmlNode:
        node = self._node_by_label.get(label)
        if node is not None:
            return node
        try:
            node = self._primary_call(self.primary.node_for, (label,))
        except DEGRADABLE:
            if self.fallback is None:
                raise
            self._counters["fallback_calls"] += 1
            mem_label = self._mem_label(label)
            node = self.fallback.node_for(mem_label)
            self._fallback_label_by_id[node.node_id] = label
            self._fallback_order[node.node_id] = self.fallback.rank_of(mem_label)
        self._node_by_label[label] = node
        return node

    def label_for(self, node: XmlNode) -> Label:
        try:
            return self.primary.label_for(node)
        except UnknownLabelError:
            try:
                return self._fallback_label_by_id[node.node_id]
            except KeyError:
                raise UnknownLabelError(
                    f"node {node!r} was not materialised by this store"
                ) from None

    # ------------------------------------------------------------------
    # Candidate enumeration
    # ------------------------------------------------------------------
    def labels_with_tag(self, tag: str) -> List[Label]:
        return self._call("labels_with_tag", (tag,), result="labels")

    def element_labels(self) -> List[Label]:
        return self._call("element_labels", result="labels")

    def text_labels(self) -> List[Label]:
        return self._call("text_labels", result="labels")

    def comment_labels(self) -> List[Label]:
        return self._call("comment_labels", result="labels")

    def structural_labels(self) -> List[Label]:
        return self._call("structural_labels", result="labels")

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------
    def attributes_of(self, label: Label) -> Tuple[Tuple[str, str], ...]:
        return self._call("attributes_of", (label,), label_positions=(0,))

    def attribute_labels(self, label: Label) -> List[Label]:
        return self._call(
            "attribute_labels", (label,), label_positions=(0,), result="labels"
        )

    def string_value(self, label: Label) -> str:
        return self._call("string_value", (label,), label_positions=(0,))

    def path_of(self, label: Label) -> str:
        return self._call("path_of", (label,), label_positions=(0,))

    # ------------------------------------------------------------------
    # Evaluation support
    # ------------------------------------------------------------------
    def order_by_id(self) -> Dict[int, int]:
        # ranks agree across stores (same generation, same preorder),
        # so fallback-materialised ids merge cleanly
        if not self._fallback_order:
            return self.primary.order_by_id()
        merged = dict(self.primary.order_by_id())
        merged.update(self._fallback_order)
        return merged

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def degraded(self) -> bool:
        """True once any call has been answered by the fallback."""
        return self._counters["fallback_calls"] > 0

    def as_dict(self) -> Dict[str, float]:
        out = dict(self._counters)
        for key, value in self.breaker.stats().items():
            out[f"breaker.{key}"] = value
        return out

    def bind(self, registry, prefix: str = "resilience.store") -> None:
        registry.register_source(prefix, self.as_dict)

    def stats_snapshot(self) -> Dict[str, int]:
        return self.primary.stats_snapshot()
