"""Resilient serving: deadlines, admission control, circuit breakers.

The tail-at-scale discipline for the paper's query engine: every
request carries a budget (:class:`Deadline`), an overloaded tier sheds
load instead of congesting (:class:`AdmissionController`), a failing
dependency is bypassed instead of hammered (:class:`CircuitBreaker`,
:class:`BackoffPolicy`), and the disk read path degrades to RAM
instead of erroring (:class:`ResilientNodeStore`). Failures that do
surface are *typed* — ``QueryTimeout``, ``Overloaded``,
``CircuitOpen`` in :mod:`repro.errors` — so callers can tell "retry
later" from "never". docs/ROBUSTNESS.md has the full taxonomy; the
chaos suite under tests/resilience asserts the invariant that no
injected fault ever produces a silently wrong answer.
"""

from .admission import AdmissionController
from .backoff import JITTER_MODES, BackoffPolicy
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .deadline import Deadline
from .store import ResilientNodeStore

__all__ = [
    "AdmissionController",
    "BackoffPolicy",
    "CircuitBreaker",
    "Deadline",
    "JITTER_MODES",
    "ResilientNodeStore",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
]
