"""Token-based admission control with a bounded wait queue.

An engine that accepts unbounded concurrent work does not fail — it
*congests*: every request slows down together until all of them miss
their deadlines. Admission control converts that collapse into typed,
fast rejections for the overflow while the admitted work keeps its
latency. The model here is the classic token bucket over a bounded
queue: ``max_concurrent`` execution tokens, up to ``max_queue``
waiters, and beyond that an immediate
:class:`~repro.errors.Overloaded` (load shedding).

Use it as a context manager around the guarded section::

    controller = AdmissionController(max_concurrent=4, max_queue=8)
    with controller.admit():
        ... do the work ...

Saturation gauges (`in_flight`, `queue_depth`) and lifetime counters
(`admitted`, `rejected`, `timed_out`) are exposed through
:meth:`as_dict` and registered on a MetricsRegistry via :meth:`bind`
under the ``resilience.admission`` prefix.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict


class AdmissionController:
    """Bounded-concurrency gate for a serving tier.

    Parameters
    ----------
    max_concurrent:
        Execution tokens; this many requests run simultaneously.
    max_queue:
        Requests allowed to wait for a token; arrivals beyond
        ``max_concurrent + max_queue`` are shed immediately.
    queue_timeout_s:
        Longest a queued request waits before being shed. Keeping this
        finite is what bounds tail latency: a request that would wait
        longer is better rejected (the client can back off) than served
        late.
    """

    def __init__(
        self,
        max_concurrent: int = 4,
        max_queue: int = 16,
        queue_timeout_s: float = 1.0,
    ):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if queue_timeout_s <= 0:
            raise ValueError("queue_timeout_s must be positive")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.queue_timeout_s = queue_timeout_s
        self._lock = threading.Lock()
        self._token_free = threading.Condition(self._lock)
        self._in_flight = 0
        self._queued = 0
        self._admitted = 0
        self._rejected = 0
        self._timed_out = 0
        self._peak_in_flight = 0
        self._peak_queued = 0

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def admit(self):
        """Acquire a token for the ``with`` body, queueing if needed.

        Raises :class:`Overloaded` when the queue is full or the queue
        wait exceeds ``queue_timeout_s``; the body never ran in that
        case, so the caller may retry after ``retry_after_s``.
        """
        self._acquire()
        try:
            yield self
        finally:
            self._release()

    def _acquire(self) -> None:
        from repro.errors import Overloaded

        with self._token_free:
            if self._in_flight < self.max_concurrent:
                self._in_flight += 1
                self._admitted += 1
                self._peak_in_flight = max(self._peak_in_flight, self._in_flight)
                return
            if self._queued >= self.max_queue:
                self._rejected += 1
                raise Overloaded(
                    f"admission queue full ({self._in_flight} in flight, "
                    f"{self._queued} queued)",
                    in_flight=self._in_flight,
                    queue_depth=self._queued,
                    retry_after_s=self.queue_timeout_s,
                )
            self._queued += 1
            self._peak_queued = max(self._peak_queued, self._queued)
            deadline = self.queue_timeout_s
            try:
                # wait_for re-waits on spurious wakeups and tracks the
                # remaining timeout itself
                got_token = self._token_free.wait_for(
                    lambda: self._in_flight < self.max_concurrent,
                    timeout=deadline,
                )
            finally:
                self._queued -= 1
            if not got_token:
                self._timed_out += 1
                self._rejected += 1
                raise Overloaded(
                    f"queued {deadline:.3f}s without obtaining a token "
                    f"({self._in_flight} in flight)",
                    in_flight=self._in_flight,
                    queue_depth=self._queued,
                    retry_after_s=deadline,
                )
            self._in_flight += 1
            self._admitted += 1
            self._peak_in_flight = max(self._peak_in_flight, self._in_flight)

    def _release(self) -> None:
        with self._token_free:
            self._in_flight -= 1
            self._token_free.notify()

    # ------------------------------------------------------------------
    # Non-blocking surface (the asyncio serving tier's entry points —
    # an event loop must never park a thread in wait_for, so the async
    # gate drives the same token bucket through these instead)
    # ------------------------------------------------------------------
    def try_acquire(self) -> bool:
        """Take an execution token without waiting; False if none free."""
        with self._token_free:
            if self._in_flight < self.max_concurrent:
                self._in_flight += 1
                self._admitted += 1
                self._peak_in_flight = max(self._peak_in_flight, self._in_flight)
                return True
            return False

    def release(self) -> None:
        """Return a token taken via :meth:`try_acquire`."""
        self._release()

    def queue_enter(self) -> None:
        """Claim a queue slot; typed :class:`Overloaded` when full."""
        from repro.errors import Overloaded

        with self._token_free:
            if self._queued >= self.max_queue:
                self._rejected += 1
                raise Overloaded(
                    f"admission queue full ({self._in_flight} in flight, "
                    f"{self._queued} queued)",
                    in_flight=self._in_flight,
                    queue_depth=self._queued,
                    retry_after_s=self.queue_timeout_s,
                )
            self._queued += 1
            self._peak_queued = max(self._peak_queued, self._queued)

    def queue_exit(self, timed_out: bool = False) -> None:
        """Leave the queue; a timed-out wait sheds with ``Overloaded``."""
        from repro.errors import Overloaded

        with self._token_free:
            self._queued -= 1
            if not timed_out:
                return
            self._timed_out += 1
            self._rejected += 1
            in_flight = self._in_flight
            queued = self._queued
        raise Overloaded(
            f"queued {self.queue_timeout_s:.3f}s without obtaining a "
            f"token ({in_flight} in flight)",
            in_flight=in_flight,
            queue_depth=queued,
            retry_after_s=self.queue_timeout_s,
        )

    # ------------------------------------------------------------------
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def queue_depth(self) -> int:
        with self._lock:
            return self._queued

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            return {
                "in_flight": self._in_flight,
                "queue_depth": self._queued,
                "admitted": self._admitted,
                "rejected": self._rejected,
                "timed_out": self._timed_out,
                "peak_in_flight": self._peak_in_flight,
                "peak_queued": self._peak_queued,
                "max_concurrent": self.max_concurrent,
                "max_queue": self.max_queue,
            }

    def bind(self, registry, prefix: str = "resilience.admission") -> None:
        """Expose saturation gauges as a pull source on *registry*."""
        registry.register_source(prefix, self.as_dict)

    def __repr__(self) -> str:
        return (
            f"<AdmissionController {self.in_flight()}/{self.max_concurrent} "
            f"in flight, {self.queue_depth()}/{self.max_queue} queued>"
        )
