"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class. Subsystems define narrower types
here (rather than per-module) so that the hierarchy stays discoverable
in a single place.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class XmlSyntaxError(ReproError):
    """Raised by the XML parser on malformed input.

    Attributes
    ----------
    line, column:
        1-based position of the offending character in the source text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class TreeStructureError(ReproError):
    """Raised on invalid tree manipulation (cycles, foreign nodes, ...)."""


class NumberingError(ReproError):
    """Base class for numbering-scheme errors."""


class IdentifierOverflowError(NumberingError):
    """An identifier exceeded the configured bit budget.

    The original UID scheme overflows machine integers easily (paper
    section 1); schemes raise this when a label cannot be represented
    within the budget the caller imposed.
    """

    def __init__(self, message: str, bits_required: int = 0, bits_allowed: int = 0):
        self.bits_required = bits_required
        self.bits_allowed = bits_allowed
        super().__init__(message)


class FanOutOverflowError(NumberingError):
    """A node gained more children than the enumerating tree's fan-out.

    For the original UID this forces a whole-document renumbering; for
    rUID only the affected UID-local area is renumbered (paper 3.2).
    """


class UnknownLabelError(NumberingError):
    """A label does not correspond to any real node in the document."""


class NoParentError(NumberingError):
    """Parent computation was requested for the document root."""


class PartitionError(NumberingError):
    """A partition does not satisfy the UID-local-area definition."""


class StorageError(ReproError):
    """Base class for storage-engine errors."""


class PageOverflowError(StorageError):
    """A record does not fit into a single page."""


class ChecksumError(StorageError):
    """A page read back from disk failed its CRC32 verification.

    Attributes
    ----------
    page_id:
        The page whose stored checksum did not match its bytes.
    """

    def __init__(self, message: str, page_id: int = -1):
        self.page_id = page_id
        super().__init__(message)


class WalCorruptionError(StorageError):
    """The write-ahead log itself is unreadable beyond quarantine.

    Recovery normally *quarantines* a torn or corrupt tail and carries
    on from the last commit; this error is reserved for logs whose
    committed prefix cannot be trusted either.
    """


class RecoveryError(StorageError):
    """Crash recovery could not restore a consistent database."""


class InjectedFaultError(StorageError):
    """A deterministic fault scheduled by a FaultInjector fired.

    Tests catch this to simulate a crash at a precise point; it never
    occurs outside fault-injection runs.
    """


class SiteUnavailableError(StorageError):
    """A federation operation exhausted every replica of an area."""


class TransientFetchError(StorageError):
    """A read failed for a reason expected to clear on retry.

    Raised by the fault injector's read-path faults (a dropped message,
    a device momentarily busy). Unlike :class:`ChecksumError` the data
    itself is fine — callers with a retry budget should retry; circuit
    breakers count it as a failure.
    """


class CircuitOpen(StorageError):
    """A circuit breaker refused the call without attempting it.

    Raised when a breaker is open and no fallback exists: the guarded
    dependency has failed repeatedly and the backoff window has not
    elapsed. Retryable — but only after ``retry_after_s``.

    Attributes
    ----------
    breaker:
        Name of the breaker that short-circuited the call.
    retry_after_s:
        Seconds until the breaker will next allow a probe.
    """

    def __init__(self, message: str, breaker: str = "", retry_after_s: float = 0.0):
        self.breaker = breaker
        self.retry_after_s = retry_after_s
        super().__init__(message)


class DuplicateKeyError(StorageError):
    """A unique index rejected a duplicate key."""


class TableNotFoundError(StorageError):
    """A catalog lookup for a table failed."""


class QueryError(ReproError):
    """Base class for XPath-engine errors."""


class XPathSyntaxError(QueryError):
    """Raised by the XPath lexer/parser on malformed expressions."""

    def __init__(self, message: str, position: int = -1):
        self.position = position
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class UnsupportedFeatureError(QueryError):
    """The expression uses XPath features outside the supported core."""


class QueryTimeout(QueryError):
    """A query exceeded its :class:`~repro.resilience.Deadline`.

    Carries the partial-work counters accumulated before the budget
    ran out, so an operator can tell a query that was *almost done*
    from one that had barely started.

    Attributes
    ----------
    elapsed_ms, budget_ms:
        Wall time spent vs. the budget that was granted.
    steps:
        Deadline ticks consumed (evaluator steps, store probes, twig
        joins — every cancellation point counts one).
    items:
        Nodes/candidates processed across those ticks.
    """

    def __init__(
        self,
        message: str,
        elapsed_ms: float = 0.0,
        budget_ms: float = 0.0,
        steps: int = 0,
        items: int = 0,
    ):
        self.elapsed_ms = elapsed_ms
        self.budget_ms = budget_ms
        self.steps = steps
        self.items = items
        super().__init__(message)


class Overloaded(ReproError):
    """Admission control shed this request instead of queueing it.

    The serving tier is saturated: every execution token is in use and
    the wait queue is full (or the queue wait timed out). The request
    was *not* executed — retrying after ``retry_after_s`` with backoff
    is safe.

    Attributes
    ----------
    in_flight, queue_depth:
        Saturation snapshot at rejection time.
    retry_after_s:
        Suggested client backoff before retrying.
    """

    def __init__(
        self,
        message: str,
        in_flight: int = 0,
        queue_depth: int = 0,
        retry_after_s: float = 0.0,
    ):
        self.in_flight = in_flight
        self.queue_depth = queue_depth
        self.retry_after_s = retry_after_s
        super().__init__(message)
