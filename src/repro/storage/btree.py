"""A paged B+-tree over :class:`~repro.storage.pager.Pager`.

Keys and values are byte strings; keys compare as raw bytes, which is
why the order-preserving codec exists. Nodes are serialized into
fixed-size pages, splits are size-driven (a node splits when its
serialization would no longer fit its page), and leaves are chained
for range scans. Deletion removes entries without rebalancing —
underfull pages are tolerated, the standard trade-off for read-mostly
index workloads like document labeling.

Every node touch goes through the pager and is therefore charged to
the I/O ledger; experiment E6 uses exactly this to show pre/post
parent lookups cost index I/O while rUID's cost none.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right, insort
from typing import Iterator, List, Optional, Tuple

from repro.errors import DuplicateKeyError, PageOverflowError, StorageError
from repro.storage.pager import Page, Pager

_LEAF = 1
_INTERNAL = 2
_NO_PAGE = 0xFFFFFFFF

_HEADER = struct.Struct(">BHI")  # type, entry count, next-leaf / first-child
_LEN = struct.Struct(">H")
_CHILD = struct.Struct(">I")


class _Leaf:
    __slots__ = ("entries", "next_leaf")

    def __init__(self, entries: List[Tuple[bytes, bytes]], next_leaf: Optional[int]):
        self.entries = entries
        self.next_leaf = next_leaf


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self, keys: List[bytes], children: List[int]):
        self.keys = keys
        self.children = children


class BPlusTree:
    """A B+-tree index rooted in a single meta-tracked page."""

    def __init__(self, pager: Pager, root_page_id: Optional[int] = None,
                 unique: bool = True):
        self.pager = pager
        self.unique = unique
        if root_page_id is None:
            page = pager.allocate()
            self._write_leaf(page, _Leaf([], None))
            self.root_page_id = page.page_id
        else:
            self.root_page_id = root_page_id

    # ------------------------------------------------------------------
    # Node (de)serialization
    # ------------------------------------------------------------------
    def _read_node(self, page_id: int):
        page = self.pager.read(page_id)
        try:
            return self._parse_node(page)
        except (struct.error, IndexError) as exc:
            # A page that deserializes out of bounds is corrupt in a way
            # the CRC could not see (e.g. a stale-but-valid image).
            raise StorageError(f"corrupt page {page_id}: {exc}") from None

    def _parse_node(self, page: Page):
        page_id = page.page_id
        node_type, count, link = _HEADER.unpack_from(page.data, 0)
        offset = _HEADER.size
        if node_type == _LEAF:
            entries: List[Tuple[bytes, bytes]] = []
            for _ in range(count):
                (key_len,) = _LEN.unpack_from(page.data, offset)
                offset += _LEN.size
                key = bytes(page.data[offset : offset + key_len])
                offset += key_len
                (value_len,) = _LEN.unpack_from(page.data, offset)
                offset += _LEN.size
                value = bytes(page.data[offset : offset + value_len])
                offset += value_len
                entries.append((key, value))
            next_leaf = None if link == _NO_PAGE else link
            return _Leaf(entries, next_leaf)
        if node_type == _INTERNAL:
            children = [link]
            keys: List[bytes] = []
            for _ in range(count):
                (key_len,) = _LEN.unpack_from(page.data, offset)
                offset += _LEN.size
                keys.append(bytes(page.data[offset : offset + key_len]))
                offset += key_len
                (child,) = _CHILD.unpack_from(page.data, offset)
                offset += _CHILD.size
                children.append(child)
            return _Internal(keys, children)
        raise StorageError(f"corrupt page {page_id}: type {node_type}")

    def _serialize_leaf(self, node: _Leaf) -> bytes:
        link = _NO_PAGE if node.next_leaf is None else node.next_leaf
        parts = [_HEADER.pack(_LEAF, len(node.entries), link)]
        for key, value in node.entries:
            parts.append(_LEN.pack(len(key)))
            parts.append(key)
            parts.append(_LEN.pack(len(value)))
            parts.append(value)
        return b"".join(parts)

    def _serialize_internal(self, node: _Internal) -> bytes:
        parts = [_HEADER.pack(_INTERNAL, len(node.keys), node.children[0])]
        for key, child in zip(node.keys, node.children[1:]):
            parts.append(_LEN.pack(len(key)))
            parts.append(key)
            parts.append(_CHILD.pack(child))
        return b"".join(parts)

    def _write_leaf(self, page: Page, node: _Leaf) -> None:
        raw = self._serialize_leaf(node)
        if len(raw) > self.pager.page_size:
            raise PageOverflowError("leaf does not fit a page after split")
        page.data[: len(raw)] = raw
        self.pager.mark_dirty(page)

    def _write_internal(self, page: Page, node: _Internal) -> None:
        raw = self._serialize_internal(node)
        if len(raw) > self.pager.page_size:
            raise PageOverflowError("internal node does not fit a page after split")
        page.data[: len(raw)] = raw
        self.pager.mark_dirty(page)

    def _fits_leaf(self, node: _Leaf) -> bool:
        return len(self._serialize_leaf(node)) <= self.pager.page_size

    def _fits_internal(self, node: _Internal) -> bool:
        return len(self._serialize_internal(node)) <= self.pager.page_size

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Optional[bytes]:
        """Value stored under *key*, or None."""
        leaf = self._descend(key)
        index = bisect_left(leaf.entries, key, key=lambda e: e[0])
        if index < len(leaf.entries) and leaf.entries[index][0] == key:
            return leaf.entries[index][1]
        return None

    def contains(self, key: bytes) -> bool:
        return self.get(key) is not None

    def _descend(self, key: bytes) -> _Leaf:
        node = self._read_node(self.root_page_id)
        while isinstance(node, _Internal):
            index = bisect_right(node.keys, key)
            node = self._read_node(node.children[index])
        return node

    def _descend_for_scan(self, key: bytes) -> _Leaf:
        """Leftmost leaf that may contain *key* — duplicates equal to a
        separator live in the right sibling, but a scan tolerates
        starting early (it skips keys below the bound) and must not
        start late, so descend with bisect_left."""
        node = self._read_node(self.root_page_id)
        while isinstance(node, _Internal):
            index = bisect_left(node.keys, key)
            node = self._read_node(node.children[index])
        return node

    def insert(self, key: bytes, value: bytes, replace: bool = False) -> None:
        """Insert *key* → *value*; duplicate keys raise unless *replace*
        (unique index) or the tree was created non-unique (the pair is
        stored once per distinct (key, value))."""
        record_budget = self.pager.page_size - _HEADER.size
        if len(key) + len(value) + 2 * _LEN.size > record_budget // 2:
            raise PageOverflowError("record larger than half a page")
        split = self._insert_into(self.root_page_id, key, value, replace)
        if split is not None:
            middle_key, right_page_id = split
            new_root = _Internal([middle_key], [self.root_page_id, right_page_id])
            page = self.pager.allocate()
            self._write_internal(page, new_root)
            self.root_page_id = page.page_id

    def _insert_into(
        self, page_id: int, key: bytes, value: bytes, replace: bool
    ) -> Optional[Tuple[bytes, int]]:
        node = self._read_node(page_id)
        if isinstance(node, _Leaf):
            return self._insert_into_leaf(page_id, node, key, value, replace)
        index = bisect_right(node.keys, key)
        split = self._insert_into(node.children[index], key, value, replace)
        if split is None:
            return None
        middle_key, right_page_id = split
        node.keys.insert(index, middle_key)
        node.children.insert(index + 1, right_page_id)
        if self._fits_internal(node):
            self._write_internal(self.pager.read(page_id), node)
            return None
        return self._split_internal(page_id, node)

    def _insert_into_leaf(
        self, page_id: int, node: _Leaf, key: bytes, value: bytes, replace: bool
    ) -> Optional[Tuple[bytes, int]]:
        if self.unique:
            index = bisect_left(node.entries, key, key=lambda e: e[0])
            if index < len(node.entries) and node.entries[index][0] == key:
                if not replace:
                    raise DuplicateKeyError(f"duplicate key {key!r}")
                node.entries[index] = (key, value)
                self._write_leaf(self.pager.read(page_id), node)
                return None
            node.entries.insert(index, (key, value))
        else:
            insort(node.entries, (key, value))
        if self._fits_leaf(node):
            self._write_leaf(self.pager.read(page_id), node)
            return None
        return self._split_leaf(page_id, node)

    def _split_leaf(self, page_id: int, node: _Leaf) -> Tuple[bytes, int]:
        middle = len(node.entries) // 2
        right = _Leaf(node.entries[middle:], node.next_leaf)
        right_page = self.pager.allocate()
        self._write_leaf(right_page, right)
        left = _Leaf(node.entries[:middle], right_page.page_id)
        self._write_leaf(self.pager.read(page_id), left)
        return right.entries[0][0], right_page.page_id

    def _split_internal(self, page_id: int, node: _Internal) -> Tuple[bytes, int]:
        middle = len(node.keys) // 2
        middle_key = node.keys[middle]
        right = _Internal(node.keys[middle + 1 :], node.children[middle + 1 :])
        right_page = self.pager.allocate()
        self._write_internal(right_page, right)
        left = _Internal(node.keys[:middle], node.children[: middle + 1])
        self._write_internal(self.pager.read(page_id), left)
        return middle_key, right_page.page_id

    def delete(self, key: bytes, value: Optional[bytes] = None) -> bool:
        """Remove *key* (and, for non-unique trees, the specific
        (key, value) pair). Returns True if something was removed.
        Pages are allowed to go underfull."""
        path: List[int] = []
        node = self._read_node(self.root_page_id)
        page_id = self.root_page_id
        while isinstance(node, _Internal):
            index = bisect_right(node.keys, key)
            path.append(page_id)
            page_id = node.children[index]
            node = self._read_node(page_id)
        for index, (entry_key, entry_value) in enumerate(node.entries):
            if entry_key == key and (value is None or entry_value == value):
                del node.entries[index]
                self._write_leaf(self.pager.read(page_id), node)
                return True
        return False

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """All (key, value) pairs in key order."""
        return self.range(None, None)

    def range(
        self, low: Optional[bytes], high: Optional[bytes]
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Pairs with ``low <= key <= high`` (either bound may be None)."""
        if low is None:
            node = self._leftmost_leaf()
        else:
            node = self._descend_for_scan(low)
        while node is not None:
            for key, value in node.entries:
                if low is not None and key < low:
                    continue
                if high is not None and key > high:
                    return
                yield key, value
            node = self._read_node(node.next_leaf) if node.next_leaf is not None else None

    def _leftmost_leaf(self) -> _Leaf:
        node = self._read_node(self.root_page_id)
        while isinstance(node, _Internal):
            node = self._read_node(node.children[0])
        return node

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    def __repr__(self) -> str:
        return f"<BPlusTree root={self.root_page_id} unique={self.unique}>"
