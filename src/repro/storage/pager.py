"""Paged storage with an LRU buffer pool.

The "disk" is an in-process page store (a dict of immutable byte
blocks); every page access goes through the buffer pool and is charged
to :class:`~repro.storage.iostats.IoStats`. This is the substitution
documented in DESIGN.md for the paper's RDBMS: what the experiments
need is the *count* of page transfers, not a physical spindle.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.errors import StorageError
from repro.storage.iostats import IoStats

DEFAULT_PAGE_SIZE = 4096


class Page:
    """A mutable page held in the buffer pool."""

    __slots__ = ("page_id", "data", "dirty")

    def __init__(self, page_id: int, data: bytearray):
        self.page_id = page_id
        self.data = data
        self.dirty = False

    def __repr__(self) -> str:
        return f"<Page {self.page_id}{' dirty' if self.dirty else ''}>"


class Pager:
    """Allocates pages, caches them LRU, and counts the traffic.

    Parameters
    ----------
    page_size:
        Bytes per page; every page has exactly this size.
    pool_pages:
        Buffer-pool capacity in pages. Accesses beyond the pool evict
        the least recently used page (writing it back if dirty).
    stats:
        Shared :class:`IoStats` ledger; a fresh one is created if not
        supplied.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        pool_pages: int = 64,
        stats: Optional[IoStats] = None,
    ):
        if page_size < 64:
            raise StorageError(f"page size {page_size} too small")
        if pool_pages < 1:
            raise StorageError("buffer pool needs at least one page")
        self.page_size = page_size
        self.pool_pages = pool_pages
        self.stats = stats if stats is not None else IoStats()
        self._disk: Dict[int, bytes] = {}
        self._pool: "OrderedDict[int, Page]" = OrderedDict()
        self._next_page_id = 0

    # ------------------------------------------------------------------
    def allocate(self) -> Page:
        """Allocate a fresh zeroed page (counts as a buffered write)."""
        page_id = self._next_page_id
        self._next_page_id += 1
        page = Page(page_id, bytearray(self.page_size))
        page.dirty = True
        self._disk[page_id] = bytes(self.page_size)
        self._admit(page)
        return page

    def read(self, page_id: int) -> Page:
        """Fetch a page through the buffer pool."""
        page = self._pool.get(page_id)
        if page is not None:
            self._pool.move_to_end(page_id)
            self.stats.record_hit()
            return page
        try:
            raw = self._disk[page_id]
        except KeyError:
            raise StorageError(f"page {page_id} was never allocated") from None
        self.stats.record_miss()
        page = Page(page_id, bytearray(raw))
        self._admit(page)
        return page

    def mark_dirty(self, page: Page) -> None:
        """Record that the caller mutated the page's bytes."""
        page.dirty = True

    def flush(self) -> None:
        """Write back every dirty pooled page."""
        for page in self._pool.values():
            if page.dirty:
                self._write_back(page)

    # ------------------------------------------------------------------
    def _admit(self, page: Page) -> None:
        while len(self._pool) >= self.pool_pages:
            _evicted_id, evicted = self._pool.popitem(last=False)
            self.stats.record_eviction()
            if evicted.dirty:
                self._write_back(evicted)
        self._pool[page.page_id] = page

    def _write_back(self, page: Page) -> None:
        self._disk[page.page_id] = bytes(page.data)
        page.dirty = False
        self.stats.record_write()

    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        """Total pages ever allocated."""
        return self._next_page_id

    def disk_bytes(self) -> int:
        """Size of the simulated disk image."""
        return len(self._disk) * self.page_size

    def __repr__(self) -> str:
        return (
            f"<Pager pages={self.page_count} pooled={len(self._pool)}/"
            f"{self.pool_pages} page_size={self.page_size}>"
        )
