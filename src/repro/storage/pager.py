"""Paged storage with an LRU buffer pool, page checksums and a WAL.

The "disk" is an in-process page store (a dict of immutable byte
blocks); every page access goes through the buffer pool and is charged
to :class:`~repro.storage.iostats.IoStats`. This is the substitution
documented in DESIGN.md for the paper's RDBMS: what the experiments
need is the *count* of page transfers, not a physical spindle.

Robustness layer (see docs/ROBUSTNESS.md):

* every on-disk page carries a CRC32 checksum, verified on every cold
  read — a mismatch raises :class:`~repro.errors.ChecksumError`;
* when a :class:`~repro.storage.wal.Wal` is attached, every write-back
  logs the full page image *before* touching disk, and
  :meth:`commit` / :meth:`checkpoint` / :meth:`crash` / :meth:`recover`
  implement the redo-only crash-consistency protocol;
* a :class:`~repro.storage.faults.FaultInjector` may be attached to
  fail writes or corrupt pages at deterministic points.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.errors import ChecksumError, StorageError
from repro.obs.trace import NULL_TRACER
from repro.storage.iostats import IoStats
from repro.storage.wal import RecoveryResult, Wal

DEFAULT_PAGE_SIZE = 4096


class Page:
    """A mutable page held in the buffer pool."""

    __slots__ = ("page_id", "data", "dirty")

    def __init__(self, page_id: int, data: bytearray):
        self.page_id = page_id
        self.data = data
        self.dirty = False

    def __repr__(self) -> str:
        return f"<Page {self.page_id}{' dirty' if self.dirty else ''}>"


class Pager:
    """Allocates pages, caches them LRU, and counts the traffic.

    Parameters
    ----------
    page_size:
        Bytes per page; every page has exactly this size.
    pool_pages:
        Buffer-pool capacity in pages. Accesses beyond the pool evict
        the least recently used page (writing it back if dirty).
    stats:
        Shared :class:`IoStats` ledger; a fresh one is created if not
        supplied.
    wal:
        Optional write-ahead log. When present, write-backs are logged
        first and the crash/recover lifecycle becomes available.
    faults:
        Optional :class:`~repro.storage.faults.FaultInjector` consulted
        before every write-back and every cold read.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; cold reads,
        write-backs and recovery are recorded as spans. Defaults to
        the shared no-op tracer (the hot buffer-hit path never touches
        it). An attached WAL without its own tracer inherits this one.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        pool_pages: int = 64,
        stats: Optional[IoStats] = None,
        wal: Optional[Wal] = None,
        faults=None,
        tracer=NULL_TRACER,
    ):
        if page_size < 64:
            raise StorageError(f"page size {page_size} too small")
        if pool_pages < 1:
            raise StorageError("buffer pool needs at least one page")
        self.page_size = page_size
        self.pool_pages = pool_pages
        self.stats = stats if stats is not None else IoStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.wal = wal
        if wal is not None and wal.stats is None:
            wal.stats = self.stats
        if wal is not None and wal.tracer is NULL_TRACER:
            wal.tracer = self.tracer
        self.faults = faults
        self._disk: Dict[int, bytes] = {}
        self._checksums: Dict[int, int] = {}
        self._pool: "OrderedDict[int, Page]" = OrderedDict()
        self._next_page_id = 0

    # ------------------------------------------------------------------
    def allocate(self) -> Page:
        """Allocate a fresh zeroed page (counts as a buffered write)."""
        page_id = self._next_page_id
        self._next_page_id += 1
        page = Page(page_id, bytearray(self.page_size))
        page.dirty = True
        zeros = bytes(self.page_size)
        self._disk[page_id] = zeros
        self._checksums[page_id] = zlib.crc32(zeros)
        self._admit(page)
        return page

    def read(self, page_id: int) -> Page:
        """Fetch a page through the buffer pool, verifying its CRC on a
        cold read."""
        page = self._pool.get(page_id)
        if page is not None:
            self._pool.move_to_end(page_id)
            self.stats.record_hit()
            return page
        with self.tracer.span("pager.read_miss", page=page_id):
            if self.faults is not None:
                # read-path chaos: transient errors, latency spikes and
                # fetch-time bit flips (the flip lands on _disk before
                # raw is sampled, so the CRC check below catches it)
                self.faults.before_page_read(self, page_id)
            try:
                raw = self._disk[page_id]
            except KeyError:
                raise StorageError(f"page {page_id} was never allocated") from None
            expected = self._checksums.get(page_id)
            if expected is not None and zlib.crc32(raw) != expected:
                self.stats.record_checksum_failure()
                raise ChecksumError(
                    f"page {page_id} failed CRC32 verification "
                    f"(stored {expected:#010x}, computed {zlib.crc32(raw):#010x})",
                    page_id=page_id,
                )
            self.stats.record_miss()
            page = Page(page_id, bytearray(raw))
            self._admit(page)
        return page

    def mark_dirty(self, page: Page) -> None:
        """Record that the caller mutated the page's bytes."""
        page.dirty = True

    def flush(self) -> None:
        """Write back every dirty pooled page."""
        for page in self._pool.values():
            if page.dirty:
                self._write_back(page)

    # ------------------------------------------------------------------
    def _admit(self, page: Page) -> None:
        while len(self._pool) >= self.pool_pages:
            _evicted_id, evicted = self._pool.popitem(last=False)
            self.stats.record_eviction()
            if evicted.dirty:
                self._write_back(evicted)
        self._pool[page.page_id] = page

    def _write_back(self, page: Page) -> None:
        with self.tracer.span("pager.write_back", page=page.page_id):
            if self.faults is not None:
                self.faults.before_page_write(page.page_id)
            if self.wal is not None:
                self.wal.append_page(page.page_id, bytes(page.data))
            self._disk[page.page_id] = bytes(page.data)
            self._checksums[page.page_id] = zlib.crc32(page.data)
            page.dirty = False
            self.stats.record_write()

    # ------------------------------------------------------------------
    # Crash-safety lifecycle
    # ------------------------------------------------------------------
    def commit(self, metadata: bytes = b"") -> Optional[int]:
        """Flush all dirty pages, then log a commit marker carrying
        *metadata*. Without a WAL this degrades to a plain flush."""
        self.flush()
        if self.wal is None:
            return None
        return self.wal.append_commit(metadata)

    def checkpoint(self, metadata: bytes = b"") -> None:
        """Commit, then truncate the WAL against the current disk image
        (which, after the flush, *is* the committed state)."""
        self.flush()
        if self.wal is None:
            return
        self.wal.checkpoint(self._disk, metadata)

    def crash(self, tear_bytes: Optional[int] = None) -> int:
        """Simulate a process crash: the buffer pool (all un-written
        dirty pages) evaporates and, by default, the last WAL record is
        torn mid-write. Pass ``tear_bytes=0`` for a clean power-cut
        after a completed write. Returns the bytes torn off the log."""
        self._pool.clear()
        if self.wal is None or tear_bytes == 0:
            return 0
        return self.wal.tear(tear_bytes)

    def recover(self) -> RecoveryResult:
        """Replay the WAL into a fresh disk image (last committed
        state), discarding whatever the crashed disk held."""
        if self.wal is None:
            raise StorageError("recovery requires a WAL")
        with self.tracer.span("pager.recover") as span:
            result = self.wal.replay()
            self._pool.clear()
            self._disk = dict(result.pages)
            self._checksums = {
                page_id: zlib.crc32(raw) for page_id, raw in self._disk.items()
            }
            self._next_page_id = max(self._disk, default=-1) + 1
            self.stats.record_recovery()
            span.set(pages=len(self._disk))
        # Post-recovery checkpoint: quarantined/uncommitted records must
        # not linger beneath future appends (replay halts at a torn tail,
        # so commits logged after it would be unreachable). The recovered
        # image becomes the new replay base and the log restarts empty.
        self.wal.checkpoint(self._disk, result.metadata)
        return result

    # ------------------------------------------------------------------
    # Fault-injection surface
    # ------------------------------------------------------------------
    def damage(self, page_id: int, offset: int, xor_mask: int) -> None:
        """Corrupt one on-disk byte without updating its checksum, and
        evict the page so the next read takes the cold path. This is
        the media-fault hook used by :class:`FaultInjector`."""
        try:
            raw = bytearray(self._disk[page_id])
        except KeyError:
            raise StorageError(f"page {page_id} was never allocated") from None
        if not 0 <= offset < len(raw):
            raise StorageError(f"offset {offset} outside page {page_id}")
        if not 0 < xor_mask <= 0xFF:
            raise StorageError("xor mask must flip at least one bit")
        raw[offset] ^= xor_mask
        self._disk[page_id] = bytes(raw)
        self._pool.pop(page_id, None)

    def stored_page_ids(self) -> List[int]:
        """Sorted ids of every page currently on disk."""
        return sorted(self._disk)

    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        """Total pages ever allocated."""
        return self._next_page_id

    def disk_bytes(self) -> int:
        """Size of the simulated disk image."""
        return len(self._disk) * self.page_size

    def __repr__(self) -> str:
        return (
            f"<Pager pages={self.page_count} pooled={len(self._pool)}/"
            f"{self.pool_pages} page_size={self.page_size}"
            f"{' wal' if self.wal is not None else ''}>"
        )
