"""Slotted-page heap file for variable-length records.

Records are byte strings addressed by a :class:`Rid` (page id, slot).
Pages use the classic slotted layout: a slot directory growing from
the header and record bytes growing from the end of the page. Deleted
slots become tombstones (marked by record offset 0 — impossible for a
live record, whose bytes always sit above the header); their space is
reclaimed by per-page compaction, and a free-space map lets inserts
first-fit into earlier pages.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import PageOverflowError, StorageError
from repro.storage.pager import Page, Pager

_PAGE_HEADER = struct.Struct(">HH")  # slot count, free-space offset
_SLOT = struct.Struct(">HH")  # record offset (0 = tombstone), record length
_TOMBSTONE_OFFSET = 0


@dataclass(frozen=True, order=True)
class Rid:
    """Record identifier: (page id, slot index)."""

    page_id: int
    slot: int

    def as_tuple(self) -> Tuple[int, int]:
        return (self.page_id, self.slot)


class HeapFile:
    """A record store with slot reuse and first-fit page selection."""

    def __init__(self, pager: Pager):
        self.pager = pager
        self._page_ids: List[int] = []
        #: conservative free-byte estimate per page (header excluded)
        self._free_bytes: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def describe(self) -> Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...]]:
        """Serializable bookkeeping: (page ids, free-space map)."""
        return (
            tuple(self._page_ids),
            tuple(sorted(self._free_bytes.items())),
        )

    def restore(self, page_ids, free_bytes) -> None:
        """Rebind the in-memory bookkeeping after crash recovery; the
        pages themselves already live in the (recovered) pager."""
        self._page_ids = list(page_ids)
        self._free_bytes = dict(free_bytes)

    # ------------------------------------------------------------------
    def insert(self, record: bytes) -> Rid:
        """Store *record*, returning its Rid."""
        needed = len(record) + _SLOT.size
        if needed > self.pager.page_size - _PAGE_HEADER.size:
            raise PageOverflowError(
                f"record of {len(record)} bytes exceeds page capacity"
            )
        for page_id in self._candidate_pages(needed):
            page = self.pager.read(page_id)
            rid = self._try_insert(page, record)
            if rid is not None:
                return rid
            self._free_bytes[page_id] = self._measure_free(page)
        page = self.pager.allocate()
        _PAGE_HEADER.pack_into(page.data, 0, 0, self.pager.page_size)
        self.pager.mark_dirty(page)
        self._page_ids.append(page.page_id)
        self._free_bytes[page.page_id] = self.pager.page_size - _PAGE_HEADER.size
        rid = self._try_insert(page, record)
        if rid is None:  # pragma: no cover - guarded by the size check
            raise StorageError("fresh page rejected a record")
        return rid

    def _candidate_pages(self, needed: int) -> List[int]:
        """Pages whose free estimate can host the record, last first
        (the most recently used page is the usual winner)."""
        return [
            page_id
            for page_id in reversed(self._page_ids)
            if self._free_bytes.get(page_id, 0) >= needed
        ]

    @staticmethod
    def _measure_free(page: Page) -> int:
        slot_count, free_offset = _PAGE_HEADER.unpack_from(page.data, 0)
        live_bytes = 0
        tombstones = 0
        for index in range(slot_count):
            offset, length = _SLOT.unpack_from(
                page.data, _PAGE_HEADER.size + index * _SLOT.size
            )
            if offset == _TOMBSTONE_OFFSET:
                tombstones += 1
            else:
                live_bytes += length
        directory = _PAGE_HEADER.size + slot_count * _SLOT.size
        # After compaction the reusable space is everything that is not
        # header, live directory entries, or live record bytes; a
        # tombstone's directory entry is reusable for the next record.
        total = len(page.data)
        return total - directory - live_bytes + tombstones * _SLOT.size

    def _try_insert(self, page: Page, record: bytes) -> Optional[Rid]:
        slot_count, free_offset = _PAGE_HEADER.unpack_from(page.data, 0)
        directory_end = _PAGE_HEADER.size + slot_count * _SLOT.size
        slot_index = self._find_tombstone(page, slot_count)
        extra_slot = _SLOT.size if slot_index is None else 0
        if free_offset - directory_end < len(record) + extra_slot:
            self._compact(page)
            slot_count, free_offset = _PAGE_HEADER.unpack_from(page.data, 0)
            directory_end = _PAGE_HEADER.size + slot_count * _SLOT.size
            slot_index = self._find_tombstone(page, slot_count)
            extra_slot = _SLOT.size if slot_index is None else 0
            if free_offset - directory_end < len(record) + extra_slot:
                return None
        if slot_index is None:
            slot_index = slot_count
            slot_count += 1
        record_offset = free_offset - len(record)
        page.data[record_offset:free_offset] = record
        _SLOT.pack_into(
            page.data,
            _PAGE_HEADER.size + slot_index * _SLOT.size,
            record_offset,
            len(record),
        )
        _PAGE_HEADER.pack_into(page.data, 0, slot_count, record_offset)
        self.pager.mark_dirty(page)
        self._free_bytes[page.page_id] = self._measure_free(page)
        return Rid(page.page_id, slot_index)

    @staticmethod
    def _find_tombstone(page: Page, slot_count: int) -> Optional[int]:
        for index in range(slot_count):
            offset, _ = _SLOT.unpack_from(
                page.data, _PAGE_HEADER.size + index * _SLOT.size
            )
            if offset == _TOMBSTONE_OFFSET:
                return index
        return None

    def _compact(self, page: Page) -> None:
        """Slide live records to the end of the page, squeezing out the
        holes left by deletions."""
        self.tracer.event("heapfile.compact", page=page.page_id)
        slot_count, _free_offset = _PAGE_HEADER.unpack_from(page.data, 0)
        live: List[Tuple[int, bytes]] = []
        for index in range(slot_count):
            offset, length = _SLOT.unpack_from(
                page.data, _PAGE_HEADER.size + index * _SLOT.size
            )
            if offset != _TOMBSTONE_OFFSET:
                live.append((index, bytes(page.data[offset : offset + length])))
        write_offset = self.pager.page_size
        for index, record in live:
            write_offset -= len(record)
            page.data[write_offset : write_offset + len(record)] = record
            _SLOT.pack_into(
                page.data, _PAGE_HEADER.size + index * _SLOT.size, write_offset, len(record)
            )
        _PAGE_HEADER.pack_into(page.data, 0, slot_count, write_offset)
        self.pager.mark_dirty(page)

    # ------------------------------------------------------------------
    def _read_slot(self, page: Page, slot: int) -> Tuple[int, int]:
        slot_count, _ = _PAGE_HEADER.unpack_from(page.data, 0)
        if slot >= slot_count:
            raise StorageError(f"slot {slot} out of range on page {page.page_id}")
        return _SLOT.unpack_from(page.data, _PAGE_HEADER.size + slot * _SLOT.size)

    def get(self, rid: Rid) -> bytes:
        """Fetch the record at *rid*."""
        page = self.pager.read(rid.page_id)
        offset, length = self._read_slot(page, rid.slot)
        if offset == _TOMBSTONE_OFFSET:
            raise StorageError(f"rid {rid} was deleted")
        return bytes(page.data[offset : offset + length])

    def delete(self, rid: Rid) -> None:
        """Tombstone the record at *rid*."""
        page = self.pager.read(rid.page_id)
        offset, _length = self._read_slot(page, rid.slot)
        if offset == _TOMBSTONE_OFFSET:
            raise StorageError(f"rid {rid} was already deleted")
        _SLOT.pack_into(
            page.data,
            _PAGE_HEADER.size + rid.slot * _SLOT.size,
            _TOMBSTONE_OFFSET,
            0,
        )
        self.pager.mark_dirty(page)
        self._free_bytes[rid.page_id] = self._measure_free(page)

    def update(self, rid: Rid, record: bytes) -> Rid:
        """Replace the record; may move it (returns the new Rid)."""
        self.delete(rid)
        return self.insert(record)

    @property
    def tracer(self):
        """The pager's tracer — the heap file never outlives its pager."""
        return self.pager.tracer

    def scan(self) -> Iterator[Tuple[Rid, bytes]]:
        """All live records in file order."""
        with self.tracer.span(
            "heapfile.scan", pages=len(self._page_ids)
        ) as span:
            records = 0
            for page_id in self._page_ids:
                page = self.pager.read(page_id)
                slot_count, _ = _PAGE_HEADER.unpack_from(page.data, 0)
                for slot in range(slot_count):
                    offset, length = _SLOT.unpack_from(
                        page.data, _PAGE_HEADER.size + slot * _SLOT.size
                    )
                    if offset != _TOMBSTONE_OFFSET:
                        records += 1
                        yield (
                            Rid(page_id, slot),
                            bytes(page.data[offset : offset + length]),
                        )
            span.set(records=records)

    def __len__(self) -> int:
        return sum(1 for _ in self.scan())

    def __repr__(self) -> str:
        return f"<HeapFile pages={len(self._page_ids)}>"
