"""Table catalog: name → table, with shared pager bookkeeping."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

from repro.errors import StorageError, TableNotFoundError
from repro.storage.pager import Pager
from repro.storage.table import Column, Schema, Table


class Catalog:
    """All tables of one database instance."""

    def __init__(self, pager: Pager):
        self.pager = pager
        self._tables: Dict[str, Table] = {}

    def create_table(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str],
    ) -> Table:
        """Create and register a table."""
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists")
        table = Table(name, Schema(columns), self.pager, primary_key)
        self._tables[name] = table
        return table

    def adopt(self, table: Table) -> Table:
        """Register an already-built table (crash recovery rebinds
        tables with :meth:`Table.attach` and adopts them here)."""
        if table.name in self._tables:
            raise StorageError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise TableNotFoundError(f"no table named {name!r}")
        del self._tables[name]

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        return f"<Catalog tables={len(self._tables)}>"
