"""Write-ahead log for the simulated storage engine.

The pager's "disk" is an in-process page store; this module gives it
the durability discipline a real deployment of §4 would need. Every
page write-back first appends a full page image to the log; a *commit*
record carries an application metadata blob (the database's catalog
snapshot) and marks everything logged so far as durable. Recovery
replays page images **up to the last valid commit record** — images
after it belong to an uncommitted mutation and are discarded, and a
torn or bit-flipped tail is quarantined rather than replayed.

Record wire format (all big-endian)::

    +-------+------+-----+-------------+-------------+---------+
    | magic | kind | lsn | payload len | payload crc | payload |
    | 4B    | 1B   | 8B  | 4B          | 4B          | ...     |
    +-------+------+-----+-------------+-------------+---------+

``kind`` is 1 for a page image (payload = 8-byte page id + image) and
2 for a commit (payload = opaque metadata blob). The CRC covers the
payload, so both torn writes (short tail) and in-place corruption
(bad CRC) are detected and quarantined at the same point.

:meth:`Wal.checkpoint` snapshots the current disk image as the new
replay *base* and truncates the log — the standard trade between log
length and recovery time, measured by ``benchmarks/bench_recovery.py``.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import StorageError

_RECORD_HEADER = struct.Struct(">4sBQII")  # magic, kind, lsn, length, crc32
_PAGE_ID = struct.Struct(">Q")
_MAGIC = b"WALR"

REC_PAGE = 1
REC_COMMIT = 2


@dataclass
class RecoveryResult:
    """What :meth:`Wal.replay` reconstructed.

    ``pages`` is the committed disk image, ``metadata`` the blob of the
    last commit record (None when nothing ever committed), and the
    counters report how much of the log survived: a non-None ``halt``
    names why scanning stopped early ("torn-record" / "corrupt-record"),
    with ``quarantined_bytes`` of unreplayable tail left behind.
    """

    pages: Dict[int, bytes] = field(default_factory=dict)
    metadata: Optional[bytes] = None
    records_scanned: int = 0
    commits_applied: int = 0
    pages_replayed: int = 0
    discarded_uncommitted: int = 0
    quarantined_bytes: int = 0
    halt: Optional[str] = None


class Wal:
    """Append-only page-image log with commit markers.

    The log lives in memory, like the pager's disk; ``stats`` (an
    :class:`~repro.storage.iostats.IoStats`) is charged one append and
    the record's bytes per :meth:`append_page` / :meth:`append_commit`.
    """

    def __init__(self, stats=None, tracer=None):
        from repro.obs.trace import NULL_TRACER

        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._buf = bytearray()
        self._offsets: List[int] = []  # start offset of every record
        self._next_lsn = 1
        self._base_pages: Dict[int, bytes] = {}
        self._base_metadata: Optional[bytes] = None

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append_page(self, page_id: int, image: bytes) -> int:
        """Log a full page image prior to its write-back; returns lsn."""
        return self._append(REC_PAGE, _PAGE_ID.pack(page_id) + bytes(image))

    def append_commit(self, metadata: bytes = b"") -> int:
        """Log a commit marker carrying *metadata*; returns its lsn."""
        return self._append(REC_COMMIT, bytes(metadata))

    def _append(self, kind: int, payload: bytes) -> int:
        with self.tracer.span("wal.append", kind=kind, bytes=len(payload)):
            lsn = self._next_lsn
            self._next_lsn += 1
            header = _RECORD_HEADER.pack(
                _MAGIC, kind, lsn, len(payload), zlib.crc32(payload)
            )
            self._offsets.append(len(self._buf))
            self._buf += header
            self._buf += payload
            if self.stats is not None:
                self.stats.record_wal_append(len(header) + len(payload))
        return lsn

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        return len(self._offsets)

    def size_bytes(self) -> int:
        return len(self._buf)

    # ------------------------------------------------------------------
    # Crash simulation
    # ------------------------------------------------------------------
    def tear(self, drop_bytes: Optional[int] = None) -> int:
        """Simulate a torn last write: chop bytes off the final record.

        With no argument, half the last record is lost. Returns how
        many bytes were actually dropped (0 on an empty log). The torn
        record stops being counted by :attr:`record_count`; its
        remaining bytes are what recovery will quarantine.
        """
        if not self._offsets:
            return 0
        last_len = len(self._buf) - self._offsets[-1]
        if drop_bytes is None:
            drop_bytes = (last_len + 1) // 2
        drop = max(1, min(drop_bytes, last_len))
        del self._buf[len(self._buf) - drop :]
        self._offsets.pop()
        return drop

    def damage(self, offset: int, xor_mask: int = 0xFF) -> None:
        """Flip bits of one log byte in place (media-corruption hook)."""
        if not 0 <= offset < len(self._buf):
            raise StorageError(f"log offset {offset} out of range")
        if not 0 < xor_mask <= 0xFF:
            raise StorageError("xor mask must flip at least one bit")
        self._buf[offset] ^= xor_mask

    def prefix(self, record_count: int, torn_tail_bytes: int = 0) -> "Wal":
        """A copy of this log containing only the first *record_count*
        records — the crash-at-every-point harness' time machine. With
        *torn_tail_bytes* > 0, that many bytes of the next record are
        included as a torn tail."""
        if not 0 <= record_count <= len(self._offsets):
            raise StorageError(
                f"prefix of {record_count} records from a "
                f"{len(self._offsets)}-record log"
            )
        end = (
            self._offsets[record_count]
            if record_count < len(self._offsets)
            else len(self._buf)
        )
        clone = Wal()
        clone._buf = bytearray(self._buf[:end])
        clone._offsets = list(self._offsets[:record_count])
        clone._next_lsn = record_count + 1
        clone._base_pages = dict(self._base_pages)
        clone._base_metadata = self._base_metadata
        if torn_tail_bytes > 0 and record_count < len(self._offsets):
            next_end = (
                self._offsets[record_count + 1]
                if record_count + 1 < len(self._offsets)
                else len(self._buf)
            )
            tail = self._buf[end : min(end + torn_tail_bytes, next_end - 1)]
            clone._buf += tail
        return clone

    # ------------------------------------------------------------------
    # Checkpoint + recovery
    # ------------------------------------------------------------------
    def checkpoint(self, pages: Dict[int, bytes], metadata: Optional[bytes]) -> None:
        """Adopt *pages* as the new replay base and truncate the log.

        The caller (the pager) must have flushed every dirty page
        first, so *pages* is exactly the committed state.
        """
        self._base_pages = {pid: bytes(raw) for pid, raw in pages.items()}
        self._base_metadata = metadata
        self._buf = bytearray()
        self._offsets = []

    def replay(self) -> RecoveryResult:
        """Reconstruct the last-committed disk image.

        Scans forward verifying each record; page images accumulate in
        a pending set that is applied atomically at each commit marker.
        A short or CRC-failing record halts the scan: everything from
        it onward is quarantined, and pending (uncommitted) images are
        discarded.
        """
        with self.tracer.span("wal.replay", log_bytes=len(self._buf)) as span:
            result = RecoveryResult(
                pages=dict(self._base_pages), metadata=self._base_metadata
            )
            pending: Dict[int, Tuple[int, bytes]] = {}
            offset = 0
            while offset < len(self._buf):
                record = self._read_record(offset)
                if isinstance(record, str):  # halt reason
                    result.halt = record
                    break
                kind, _lsn, payload, next_offset = record
                result.records_scanned += 1
                if kind == REC_PAGE:
                    page_id = _PAGE_ID.unpack_from(payload, 0)[0]
                    pending[page_id] = (
                        result.records_scanned,
                        payload[_PAGE_ID.size :],
                    )
                else:
                    for page_id, (_seq, image) in pending.items():
                        result.pages[page_id] = image
                    result.pages_replayed += len(pending)
                    pending.clear()
                    result.metadata = payload
                    result.commits_applied += 1
                offset = next_offset
            result.discarded_uncommitted = len(pending)
            result.quarantined_bytes = len(self._buf) - offset
            span.set(
                records=result.records_scanned,
                commits=result.commits_applied,
                halt=result.halt or "-",
            )
        return result

    def _read_record(self, offset: int):
        """One verified record at *offset*, or a halt-reason string."""
        if offset + _RECORD_HEADER.size > len(self._buf):
            return "torn-record"
        magic, kind, lsn, length, crc = _RECORD_HEADER.unpack_from(self._buf, offset)
        if magic != _MAGIC or kind not in (REC_PAGE, REC_COMMIT):
            return "corrupt-record"
        start = offset + _RECORD_HEADER.size
        if start + length > len(self._buf):
            return "torn-record"
        payload = bytes(self._buf[start : start + length])
        if zlib.crc32(payload) != crc:
            return "corrupt-record"
        if kind == REC_PAGE and len(payload) < _PAGE_ID.size:
            return "corrupt-record"
        return kind, lsn, payload, start + length

    def __repr__(self) -> str:
        return (
            f"<Wal records={len(self._offsets)} bytes={len(self._buf)} "
            f"base_pages={len(self._base_pages)}>"
        )
