"""Write-ahead log for the simulated storage engine.

The pager's "disk" is an in-process page store; this module gives it
the durability discipline a real deployment of §4 would need. Every
page write-back first appends a full page image to the log; a *commit*
record carries an application metadata blob (the database's catalog
snapshot) and marks everything logged so far as durable. Recovery
replays page images **up to the last valid commit record** — images
after it belong to an uncommitted mutation and are discarded, and a
torn or bit-flipped tail is quarantined rather than replayed.

Record wire format (all big-endian)::

    +-------+------+-----+-------------+-------------+---------+
    | magic | kind | lsn | payload len | payload crc | payload |
    | 4B    | 1B   | 8B  | 4B          | 4B          | ...     |
    +-------+------+-----+-------------+-------------+---------+

``kind`` is 1 for a page image (payload = 8-byte page id + image),
2 for a commit (payload = opaque metadata blob), and 3 for a *group
commit* batch (payload = 4-byte logical commit count + 8-byte covered
boundary lsn + the last commit's metadata blob — metadata blobs are
cumulative catalog snapshots, so the last one suffices for the whole
batch). The CRC covers the payload, so both torn writes (short tail)
and in-place corruption (bad CRC) are detected and quarantined at the
same point.

Group commit (``group_commit_size > 1``) coalesces logical commits:
:meth:`Wal.append_commit` defers the physical record, and a full
window — size trigger, wall-clock window expiry, or an explicit
:meth:`Wal.flush_commits` — writes **one** batch record and pays
**one** sync for the whole batch. Deferred commits live only in
memory until the flush: a crash loses the open batch in its entirety
(whole batches or none, never a prefix of one), which is exactly the
durability window the caller bought by enabling batching.

:meth:`Wal.checkpoint` snapshots the current disk image as the new
replay *base* and truncates the log — the standard trade between log
length and recovery time, measured by ``benchmarks/bench_recovery.py``.
"""

from __future__ import annotations

import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import StorageError

_RECORD_HEADER = struct.Struct(">4sBQII")  # magic, kind, lsn, length, crc32
_PAGE_ID = struct.Struct(">Q")
_BATCH_HEADER = struct.Struct(">IQ")  # logical commit count, boundary lsn
_MAGIC = b"WALR"

REC_PAGE = 1
REC_COMMIT = 2
REC_BATCH = 3


@dataclass
class WalStats:
    """Commit/sync accounting for one :class:`Wal`.

    ``logical_commits`` counts :meth:`Wal.append_commit` calls;
    ``syncs`` counts simulated fsyncs. Group commit earns its keep
    exactly when ``syncs < logical_commits``. The ``flush_*`` counters
    attribute every batch flush to the trigger that fired it.
    """

    logical_commits: int = 0
    physical_commit_records: int = 0
    batch_records: int = 0
    batched_commits: int = 0
    syncs: int = 0
    max_batch: int = 0
    flush_size: int = 0
    flush_window: int = 0
    flush_explicit: int = 0
    flush_checkpoint: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "logical_commits": self.logical_commits,
            "physical_commit_records": self.physical_commit_records,
            "batch_records": self.batch_records,
            "batched_commits": self.batched_commits,
            "syncs": self.syncs,
            "max_batch": self.max_batch,
            "flush_size": self.flush_size,
            "flush_window": self.flush_window,
            "flush_explicit": self.flush_explicit,
            "flush_checkpoint": self.flush_checkpoint,
        }


@dataclass
class RecoveryResult:
    """What :meth:`Wal.replay` reconstructed.

    ``pages`` is the committed disk image, ``metadata`` the blob of the
    last commit record (None when nothing ever committed), and the
    counters report how much of the log survived: a non-None ``halt``
    names why scanning stopped early ("torn-record" / "corrupt-record"),
    with ``quarantined_bytes`` of unreplayable tail left behind.
    """

    pages: Dict[int, bytes] = field(default_factory=dict)
    metadata: Optional[bytes] = None
    records_scanned: int = 0
    commits_applied: int = 0
    batches_applied: int = 0
    pages_replayed: int = 0
    discarded_uncommitted: int = 0
    quarantined_bytes: int = 0
    halt: Optional[str] = None


class Wal:
    """Append-only page-image log with commit markers.

    The log lives in memory, like the pager's disk; ``stats`` (an
    :class:`~repro.storage.iostats.IoStats`) is charged one append and
    the record's bytes per :meth:`append_page` / :meth:`append_commit`.
    """

    def __init__(
        self,
        stats=None,
        tracer=None,
        group_commit_size: int = 1,
        group_commit_window_s: Optional[float] = None,
        sync_delay_s: float = 0.0,
    ):
        from repro.obs.trace import NULL_TRACER

        if group_commit_size < 1:
            raise StorageError(
                f"group_commit_size must be >= 1, got {group_commit_size}"
            )
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: logical commits per physical batch record; 1 = classic WAL
        self.group_commit_size = group_commit_size
        #: max seconds a deferred commit may wait before the *next*
        #: commit flushes the batch regardless of its size
        self.group_commit_window_s = group_commit_window_s
        #: simulated fsync latency charged per sync (lets benchmarks
        #: show the wall-clock win of batching, not just the counter)
        self.sync_delay_s = sync_delay_s
        self.wal_stats = WalStats()
        self._buf = bytearray()
        self._offsets: List[int] = []  # start offset of every record
        self._next_lsn = 1
        self._base_pages: Dict[int, bytes] = {}
        self._base_metadata: Optional[bytes] = None
        # open batch: (covered lsn at deferral time, metadata) per
        # deferred logical commit, plus when the batch opened
        self._group_lock = threading.Lock()
        self._pending_commits: List[Tuple[int, bytes]] = []
        self._batch_opened_at: float = 0.0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append_page(self, page_id: int, image: bytes) -> int:
        """Log a full page image prior to its write-back; returns lsn."""
        return self._append(REC_PAGE, _PAGE_ID.pack(page_id) + bytes(image))

    def append_commit(self, metadata: bytes = b"") -> Optional[int]:
        """Log a commit carrying *metadata*.

        Classic mode (``group_commit_size == 1``): writes one
        ``REC_COMMIT`` record, pays one sync, returns its lsn.

        Group mode: the commit joins the open batch and ``None`` is
        returned — durability is deferred, never another thread
        awaited. The batch flushes (one ``REC_BATCH`` record, one
        sync) when it reaches ``group_commit_size``, when the commit
        arrives after the batch's wall-clock window expired, or on an
        explicit :meth:`flush_commits`; then the batch record's lsn is
        returned.
        """
        with self._group_lock:
            self.wal_stats.logical_commits += 1
            if self.group_commit_size <= 1:
                lsn = self._append(REC_COMMIT, bytes(metadata))
                self.wal_stats.physical_commit_records += 1
                self.wal_stats.max_batch = max(self.wal_stats.max_batch, 1)
                self._sync()
                return lsn
            if not self._pending_commits:
                self._batch_opened_at = time.monotonic()
            # boundary: every record logged so far belongs to this
            # logical commit or an earlier one
            self._pending_commits.append((self._next_lsn - 1, bytes(metadata)))
            if len(self._pending_commits) >= self.group_commit_size:
                self.wal_stats.flush_size += 1
                return self._flush_pending()
            window = self.group_commit_window_s
            if (
                window is not None
                and time.monotonic() - self._batch_opened_at >= window
            ):
                self.wal_stats.flush_window += 1
                return self._flush_pending()
            return None

    def flush_commits(self) -> Optional[int]:
        """Force the open batch out: one physical record, one sync.

        Returns the flushed record's lsn, or ``None`` when no commit
        was pending. Callers needing a durability point (shutdown, a
        synchronous caller inside an async batch) use this instead of
        waiting for the size trigger.
        """
        with self._group_lock:
            if not self._pending_commits:
                return None
            self.wal_stats.flush_explicit += 1
            return self._flush_pending()

    def pending_commits(self) -> int:
        """Logical commits deferred in the open batch (lost on crash)."""
        with self._group_lock:
            return len(self._pending_commits)

    def _flush_pending(self) -> int:
        """Write the open batch as one record + one sync. Caller holds
        ``_group_lock``."""
        batch = self._pending_commits
        self._pending_commits = []
        count = len(batch)
        boundary, last_metadata = batch[-1]
        if count == 1 and boundary == self._next_lsn - 1:
            # a batch of one with nothing logged after it is just a
            # commit — keep the log lean. (If later records snuck in
            # before an explicit flush, the batch form's boundary is
            # what keeps them out of the committed image.)
            lsn = self._append(REC_COMMIT, last_metadata)
            self.wal_stats.physical_commit_records += 1
        else:
            payload = _BATCH_HEADER.pack(count, boundary) + last_metadata
            lsn = self._append(REC_BATCH, payload)
            self.wal_stats.batch_records += 1
            self.wal_stats.batched_commits += count
            if self.stats is not None:
                self.stats.record_wal_batch()
        self.wal_stats.max_batch = max(self.wal_stats.max_batch, count)
        self._sync()
        return lsn

    def _sync(self) -> None:
        """Account one simulated fsync (the costly physical act group
        commit amortises)."""
        self.wal_stats.syncs += 1
        if self.stats is not None:
            self.stats.record_wal_sync()
        if self.sync_delay_s > 0.0:
            time.sleep(self.sync_delay_s)

    def _append(self, kind: int, payload: bytes) -> int:
        with self.tracer.span("wal.append", kind=kind, bytes=len(payload)):
            lsn = self._next_lsn
            self._next_lsn += 1
            header = _RECORD_HEADER.pack(
                _MAGIC, kind, lsn, len(payload), zlib.crc32(payload)
            )
            self._offsets.append(len(self._buf))
            self._buf += header
            self._buf += payload
            if self.stats is not None:
                self.stats.record_wal_append(len(header) + len(payload))
        return lsn

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        return len(self._offsets)

    def size_bytes(self) -> int:
        return len(self._buf)

    # ------------------------------------------------------------------
    # Crash simulation
    # ------------------------------------------------------------------
    def tear(self, drop_bytes: Optional[int] = None) -> int:
        """Simulate a torn last write: chop bytes off the final record.

        With no argument, half the last record is lost. Returns how
        many bytes were actually dropped (0 on an empty log). The torn
        record stops being counted by :attr:`record_count`; its
        remaining bytes are what recovery will quarantine.
        """
        if not self._offsets:
            return 0
        last_len = len(self._buf) - self._offsets[-1]
        if drop_bytes is None:
            drop_bytes = (last_len + 1) // 2
        drop = max(1, min(drop_bytes, last_len))
        del self._buf[len(self._buf) - drop :]
        self._offsets.pop()
        return drop

    def damage(self, offset: int, xor_mask: int = 0xFF) -> None:
        """Flip bits of one log byte in place (media-corruption hook)."""
        if not 0 <= offset < len(self._buf):
            raise StorageError(f"log offset {offset} out of range")
        if not 0 < xor_mask <= 0xFF:
            raise StorageError("xor mask must flip at least one bit")
        self._buf[offset] ^= xor_mask

    def prefix(self, record_count: int, torn_tail_bytes: int = 0) -> "Wal":
        """A copy of this log containing only the first *record_count*
        records — the crash-at-every-point harness' time machine. With
        *torn_tail_bytes* > 0, that many bytes of the next record are
        included as a torn tail.

        Deferred group-commit batches are deliberately NOT copied: a
        crash loses whatever had not reached its physical record —
        that is the durability window group commit trades away."""
        if not 0 <= record_count <= len(self._offsets):
            raise StorageError(
                f"prefix of {record_count} records from a "
                f"{len(self._offsets)}-record log"
            )
        end = (
            self._offsets[record_count]
            if record_count < len(self._offsets)
            else len(self._buf)
        )
        clone = Wal(
            group_commit_size=self.group_commit_size,
            group_commit_window_s=self.group_commit_window_s,
            sync_delay_s=self.sync_delay_s,
        )
        clone._buf = bytearray(self._buf[:end])
        clone._offsets = list(self._offsets[:record_count])
        clone._next_lsn = record_count + 1
        clone._base_pages = dict(self._base_pages)
        clone._base_metadata = self._base_metadata
        if torn_tail_bytes > 0 and record_count < len(self._offsets):
            next_end = (
                self._offsets[record_count + 1]
                if record_count + 1 < len(self._offsets)
                else len(self._buf)
            )
            tail = self._buf[end : min(end + torn_tail_bytes, next_end - 1)]
            clone._buf += tail
        return clone

    # ------------------------------------------------------------------
    # Checkpoint + recovery
    # ------------------------------------------------------------------
    def checkpoint(self, pages: Dict[int, bytes], metadata: Optional[bytes]) -> None:
        """Adopt *pages* as the new replay base and truncate the log.

        The caller (the pager) must have flushed every dirty page
        first, so *pages* is exactly the committed state. Any open
        group-commit batch is absorbed: the base image already holds
        those commits' effects, so the pending markers are dropped and
        the checkpoint's own sync makes them durable.
        """
        with self._group_lock:
            if self._pending_commits:
                self.wal_stats.flush_checkpoint += 1
                self.wal_stats.max_batch = max(
                    self.wal_stats.max_batch, len(self._pending_commits)
                )
                self._pending_commits = []
            self._base_pages = {pid: bytes(raw) for pid, raw in pages.items()}
            self._base_metadata = metadata
            self._buf = bytearray()
            self._offsets = []
            self._sync()

    def replay(self) -> RecoveryResult:
        """Reconstruct the last-committed disk image.

        Scans forward verifying each record; page images accumulate in
        a pending set that is applied atomically at each commit marker.
        A batch record applies only the pending images at or below its
        boundary lsn — images logged after the batch's last logical
        commit belong to the *next* transaction and stay pending. A
        short or CRC-failing record halts the scan: everything from it
        onward is quarantined, and pending (uncommitted) images are
        discarded. A group-commit batch is therefore all-or-nothing: a
        crash before its single physical record loses every commit in
        it, never a prefix.
        """
        with self.tracer.span("wal.replay", log_bytes=len(self._buf)) as span:
            result = RecoveryResult(
                pages=dict(self._base_pages), metadata=self._base_metadata
            )
            # page_id -> [(lsn, image), ...] in log order; a list, not
            # one slot, because a boundary may commit an early image of
            # a page while a later rewrite of it stays uncommitted
            pending: Dict[int, List[Tuple[int, bytes]]] = {}
            offset = 0
            while offset < len(self._buf):
                record = self._read_record(offset)
                if isinstance(record, str):  # halt reason
                    result.halt = record
                    break
                kind, lsn, payload, next_offset = record
                result.records_scanned += 1
                if kind == REC_PAGE:
                    page_id = _PAGE_ID.unpack_from(payload, 0)[0]
                    pending.setdefault(page_id, []).append(
                        (lsn, payload[_PAGE_ID.size :])
                    )
                else:
                    if kind == REC_BATCH:
                        count, boundary = _BATCH_HEADER.unpack_from(payload, 0)
                        metadata = payload[_BATCH_HEADER.size :]
                        result.batches_applied += 1
                    else:
                        count, boundary = 1, lsn
                        metadata = payload
                    applied = 0
                    for page_id in list(pending):
                        images = pending[page_id]
                        committed = [img for img in images if img[0] <= boundary]
                        if committed:
                            result.pages[page_id] = committed[-1][1]
                            applied += 1
                        remaining = [img for img in images if img[0] > boundary]
                        if remaining:
                            pending[page_id] = remaining
                        else:
                            del pending[page_id]
                    result.pages_replayed += applied
                    result.metadata = metadata
                    result.commits_applied += count
                offset = next_offset
            result.discarded_uncommitted = len(pending)
            result.quarantined_bytes = len(self._buf) - offset
            span.set(
                records=result.records_scanned,
                commits=result.commits_applied,
                halt=result.halt or "-",
            )
        return result

    def _read_record(self, offset: int):
        """One verified record at *offset*, or a halt-reason string."""
        if offset + _RECORD_HEADER.size > len(self._buf):
            return "torn-record"
        magic, kind, lsn, length, crc = _RECORD_HEADER.unpack_from(self._buf, offset)
        if magic != _MAGIC or kind not in (REC_PAGE, REC_COMMIT, REC_BATCH):
            return "corrupt-record"
        start = offset + _RECORD_HEADER.size
        if start + length > len(self._buf):
            return "torn-record"
        payload = bytes(self._buf[start : start + length])
        if zlib.crc32(payload) != crc:
            return "corrupt-record"
        if kind == REC_PAGE and len(payload) < _PAGE_ID.size:
            return "corrupt-record"
        if kind == REC_BATCH and len(payload) < _BATCH_HEADER.size:
            return "corrupt-record"
        return kind, lsn, payload, start + length

    def __repr__(self) -> str:
        return (
            f"<Wal records={len(self._offsets)} bytes={len(self._buf)} "
            f"base_pages={len(self._base_pages)}>"
        )
