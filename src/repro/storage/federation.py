"""Federated deployment simulation — the paper's §4 distribution claim.

"We believe that this property enables management of various data
sources scattered over several sites on a network." The enabling
property is that the coordinator needs only the *global parameters*
(κ and table K, a few KB) to do structural reasoning; node content
lives wherever its UID-local area was placed.

:class:`FederatedDocument` places each area on one of N sites, keeps a
:class:`~repro.core.persist.GlobalParameters` replica at the
coordinator, and counts the network messages each operation costs —
the measurable consequence of label arithmetic being site-local.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.labels import Ruid2Label
from repro.core.persist import GlobalParameters, dump_parameters, load_parameters
from repro.core.ruid import Ruid2Labeling
from repro.errors import StorageError, UnknownLabelError
from repro.query.synopsis import TagAreaSynopsis
from repro.xmltree.node import XmlNode


@dataclass
class Site:
    """One storage site: the areas it owns and its node rows."""

    name: str
    areas: List[int] = field(default_factory=list)
    #: (global, local, flag) key → (tag, kind, text)
    rows: Dict[Tuple[int, int, bool], Tuple[str, str, Optional[str]]] = field(
        default_factory=dict
    )
    messages_received: int = 0

    def store(self, label: Ruid2Label, node: XmlNode) -> None:
        self.rows[label.as_tuple()] = (node.tag, node.kind.value, node.text)

    def fetch(self, label: Ruid2Label) -> Tuple[str, str, Optional[str]]:
        self.messages_received += 1
        try:
            return self.rows[label.as_tuple()]
        except KeyError:
            raise UnknownLabelError(f"site {self.name}: no row for {label}") from None

    def rows_with_tag(self, tag: str) -> List[Tuple[Ruid2Label, Tuple]]:
        self.messages_received += 1
        return [
            (Ruid2Label(*key), row)
            for key, row in self.rows.items()
            if row[0] == tag
        ]


class FederatedDocument:
    """A labeled document scattered over N sites by UID-local area.

    Placement is controlled by *placement*: a callable mapping an area
    global index to a site index (defaults to round-robin over the
    frame's document order, which keeps sibling areas spread out).
    """

    def __init__(
        self,
        labeling: Ruid2Labeling,
        site_count: int = 3,
        placement: Optional[Callable[[int], int]] = None,
    ):
        if site_count < 1:
            raise StorageError("need at least one site")
        self.sites = [Site(f"site{i}") for i in range(site_count)]
        # Coordinator state: the serialized global parameters — exactly
        # what the paper says must be "loaded into the main memory".
        self.parameters: GlobalParameters = load_parameters(dump_parameters(labeling))
        self.synopsis = TagAreaSynopsis(labeling)
        self._site_of_area: Dict[int, int] = {}

        area_globals = [
            labeling.global_of_area_root(root)
            for root in labeling.frame.frame_preorder()
        ]
        for position, area in enumerate(area_globals):
            site_index = placement(area) if placement else position % site_count
            if not 0 <= site_index < site_count:
                raise StorageError(f"placement sent area {area} to bad site {site_index}")
            self._site_of_area[area] = site_index
            self.sites[site_index].areas.append(area)

        for node, label in labeling.items():
            self.sites[self._site_of_area[label.global_index]].store(label, node)

    # ------------------------------------------------------------------
    @property
    def coordinator_bytes(self) -> int:
        """Main-memory footprint of the coordinator's replica."""
        return self.parameters.memory_bytes()

    def site_of(self, label: Ruid2Label) -> Site:
        try:
            return self.sites[self._site_of_area[label.global_index]]
        except KeyError:
            raise UnknownLabelError(f"no site owns area {label.global_index}") from None

    def total_messages(self) -> int:
        return sum(site.messages_received for site in self.sites)

    def reset_messages(self) -> None:
        for site in self.sites:
            site.messages_received = 0

    # ------------------------------------------------------------------
    # Operations (each returns (result, messages_used))
    # ------------------------------------------------------------------
    def fetch(self, label: Ruid2Label) -> Tuple[Tuple, int]:
        """One row fetch: a single message to the owning site."""
        before = self.total_messages()
        row = self.site_of(label).fetch(label)
        return row, self.total_messages() - before

    def fetch_parent(self, label: Ruid2Label) -> Tuple[Tuple, int]:
        """Parent row: the coordinator computes the parent label with
        zero messages (Fig. 6 arithmetic on its κ/K replica), then one
        fetch."""
        before = self.total_messages()
        parent_label = self.parameters.parent(label)
        row = self.site_of(parent_label).fetch(parent_label)
        return row, self.total_messages() - before

    def ancestry_check(self, candidate: Ruid2Label, label: Ruid2Label) -> Tuple[bool, int]:
        """Ancestor test: **zero** messages — pure coordinator arithmetic."""
        before = self.total_messages()
        answer = self.parameters.is_ancestor(candidate, label)
        return answer, self.total_messages() - before

    def find_tag(self, tag: str, routed: bool = True) -> Tuple[List, int]:
        """Tag search. Routed mode consults only the sites owning areas
        the synopsis admits; broadcast mode asks every site."""
        before = self.total_messages()
        if routed:
            target_sites = sorted(
                {self._site_of_area[a] for a in self.synopsis.areas_for(tag)}
            )
        else:
            target_sites = range(len(self.sites))
        matches: List = []
        for index in target_sites:
            matches.extend(self.sites[index].rows_with_tag(tag))
        matches = self._document_sorted(matches)
        return matches, self.total_messages() - before

    def _document_sorted(self, matches: List) -> List:
        labels = [pair[0] for pair in matches]
        ordered = self.parameters.sort(labels)
        rank = {label: index for index, label in enumerate(ordered)}
        return sorted(matches, key=lambda pair: rank[pair[0]])

    def site_loads(self) -> List[Tuple[str, int, int]]:
        """(site, areas, rows) distribution summary."""
        return [
            (site.name, len(site.areas), len(site.rows)) for site in self.sites
        ]

    def __repr__(self) -> str:
        return (
            f"<FederatedDocument sites={len(self.sites)} "
            f"areas={len(self._site_of_area)} "
            f"coordinator={self.coordinator_bytes}B>"
        )
