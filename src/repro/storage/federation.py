"""Federated deployment simulation — the paper's §4 distribution claim.

"We believe that this property enables management of various data
sources scattered over several sites on a network." The enabling
property is that the coordinator needs only the *global parameters*
(κ and table K, a few KB) to do structural reasoning; node content
lives wherever its UID-local area was placed.

:class:`FederatedDocument` places each area on one of N sites, keeps a
:class:`~repro.core.persist.GlobalParameters` replica at the
coordinator, and counts the network messages each operation costs —
the measurable consequence of label arithmetic being site-local.

Fault tolerance (docs/ROBUSTNESS.md): each area can be replicated on
``replication_factor`` sites. When a site is down (via
:meth:`take_site_down` or an attached
:class:`~repro.storage.faults.FaultInjector`), reads fail over along
the replica chain under a :class:`~repro.resilience.BackoffPolicy`
(exponential by default; full or decorrelated jitter and a hard
attempt budget are configurable), and a per-site
:class:`~repro.resilience.CircuitBreaker` stops the coordinator from
re-contacting a site that keeps failing — open breakers are skipped
for free until their jittered cooldown admits a probe. The
coordinator's ledger records the degraded-mode cost: failed messages,
retries, failovers, breaker skips and accumulated backoff (also per
site, in :meth:`site_loads`). Tag routing degrades from the synopsis
to a broadcast when the synopsis replica's epoch is stale.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.labels import Ruid2Label
from repro.core.persist import GlobalParameters, dump_parameters, load_parameters
from repro.core.ruid import Ruid2Labeling
from repro.errors import SiteUnavailableError, StorageError, UnknownLabelError
from repro.obs.trace import NULL_TRACER
from repro.query.synopsis import TagAreaSynopsis
from repro.resilience.backoff import BackoffPolicy
from repro.resilience.breaker import OPEN, CircuitBreaker
from repro.storage.iostats import IoStats
from repro.xmltree.node import XmlNode


@dataclass
class Site:
    """One storage site: the areas it owns and its node rows."""

    name: str
    #: areas this site is the primary for
    areas: List[int] = field(default_factory=list)
    #: areas this site holds replica copies of
    replica_areas: List[int] = field(default_factory=list)
    #: (global, local, flag) key → (tag, kind, text)
    rows: Dict[Tuple[int, int, bool], Tuple[str, str, Optional[str]]] = field(
        default_factory=dict
    )
    messages_received: int = 0
    down: bool = False
    #: simulated one-way network latency per message, in seconds; the
    #: sleep releases the GIL, so parallel fan-out genuinely overlaps
    #: the waits of concurrently contacted sites
    latency: float = 0.0
    #: serialises the message counter across fan-out threads
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def store(self, label: Ruid2Label, node: XmlNode) -> None:
        self.rows[label.as_tuple()] = (node.tag, node.kind.value, node.text)

    def _receive(self) -> None:
        with self._lock:
            self.messages_received += 1
        if self.latency:
            time.sleep(self.latency)

    def fetch(self, label: Ruid2Label) -> Tuple[str, str, Optional[str]]:
        if self.down:
            raise SiteUnavailableError(f"site {self.name} is down")
        self._receive()
        try:
            return self.rows[label.as_tuple()]
        except KeyError:
            raise UnknownLabelError(f"site {self.name}: no row for {label}") from None

    def rows_with_tag(
        self, tag: str, areas: Optional[Sequence[int]] = None
    ) -> List[Tuple[Ruid2Label, Tuple]]:
        """Rows carrying *tag*; with *areas*, only rows from those
        UID-local areas (the coordinator ships the area predicate so a
        replica-holding site does not answer for areas assigned to
        another site)."""
        if self.down:
            raise SiteUnavailableError(f"site {self.name} is down")
        self._receive()
        wanted = None if areas is None else set(areas)
        return [
            (Ruid2Label(*key), row)
            for key, row in self.rows.items()
            if row[0] == tag and (wanted is None or key[0] in wanted)
        ]


class FederatedDocument:
    """A labeled document scattered over N sites by UID-local area.

    Placement is controlled by *placement*: a callable mapping an area
    global index to a site index (defaults to round-robin over the
    frame's document order, which keeps sibling areas spread out).
    With ``replication_factor`` r > 1 each area is additionally copied
    to the r-1 sites following its primary, and every read falls over
    along that chain when sites are down.
    """

    def __init__(
        self,
        labeling: Ruid2Labeling,
        site_count: int = 3,
        placement: Optional[Callable[[int], int]] = None,
        replication_factor: int = 1,
        faults=None,
        backoff_base: float = 0.01,
        max_rounds: int = 3,
        tracer=NULL_TRACER,
        site_latency: float = 0.0,
        backoff_jitter: str = "none",
        max_attempts: Optional[int] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 0.05,
    ):
        if site_count < 1:
            raise StorageError("need at least one site")
        if replication_factor < 1:
            raise StorageError("replication factor must be >= 1")
        if replication_factor > site_count:
            raise StorageError(
                f"replication factor {replication_factor} exceeds "
                f"{site_count} sites"
            )
        self.sites = [
            Site(f"site{i}", latency=site_latency) for i in range(site_count)
        ]
        self.replication_factor = replication_factor
        #: degraded-mode decisions are published as zero-duration trace
        #: events (federation.message_failed / failover / stale_fallback)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = faults
        self.backoff_base = backoff_base
        self.max_rounds = max_rounds
        # retry schedule: default "none" keeps the historical
        # deterministic base * 2**(n-1); the rng is seeded from the
        # injector so a chaos run reproduces from its seed alone
        rng_seed = faults.seed if faults is not None else 0
        self.backoff = BackoffPolicy(
            base=backoff_base,
            cap=max(backoff_base, 1.0),
            jitter=backoff_jitter,
            max_attempts=max_attempts,
            rng=random.Random(rng_seed),
        )
        #: per-site circuit breakers on the coordinator's message path
        self.breakers: Dict[str, CircuitBreaker] = {}
        self._site_backoff: Dict[str, float] = {}
        for index in range(site_count):
            name = f"site{index}"
            self.breakers[name] = CircuitBreaker(
                f"federation.{name}",
                failure_threshold=breaker_threshold,
                backoff=BackoffPolicy(
                    base=breaker_cooldown,
                    cap=max(breaker_cooldown, 2.0),
                    jitter="decorrelated",
                    rng=random.Random(rng_seed + index + 1),
                ),
            )
            self._site_backoff[name] = 0.0
        #: structural-change epoch of the document itself
        self.epoch = 0
        # Coordinator state: the serialized global parameters — exactly
        # what the paper says must be "loaded into the main memory".
        self.parameters: GlobalParameters = load_parameters(
            dump_parameters(labeling, epoch=self.epoch)
        )
        self.synopsis = TagAreaSynopsis(labeling)
        self._synopsis_epoch = self.epoch
        self._labeling = labeling
        self._sites_of_area: Dict[int, List[int]] = {}
        #: coordinator-side ledger; retries land in IoStats.retries
        self.stats = IoStats()
        #: guards the degraded-mode dict — its ``+=`` updates are
        #: read-modify-write and fan-out threads share the coordinator
        self._ledger_lock = threading.Lock()
        self.degraded: Dict[str, float] = {
            "messages_failed": 0,
            "failovers": 0,
            "stale_fallbacks": 0,
            "breaker_skips": 0,
            "backoff_seconds": 0.0,
        }

        area_globals = [
            labeling.global_of_area_root(root)
            for root in labeling.frame.frame_preorder()
        ]
        for position, area in enumerate(area_globals):
            site_index = placement(area) if placement else position % site_count
            if not 0 <= site_index < site_count:
                raise StorageError(f"placement sent area {area} to bad site {site_index}")
            chain = [
                (site_index + offset) % site_count
                for offset in range(replication_factor)
            ]
            self._sites_of_area[area] = chain
            self.sites[chain[0]].areas.append(area)
            for replica_index in chain[1:]:
                self.sites[replica_index].replica_areas.append(area)

        for node, label in labeling.items():
            for site_index in self._sites_of_area[label.global_index]:
                self.sites[site_index].store(label, node)

    # ------------------------------------------------------------------
    @property
    def coordinator_bytes(self) -> int:
        """Main-memory footprint of the coordinator's replica."""
        return self.parameters.memory_bytes()

    def site_of(self, label: Ruid2Label) -> Site:
        """The primary site of a label's area."""
        return self.sites[self._replica_chain(label.global_index)[0]]

    def _replica_chain(self, area: int) -> List[int]:
        try:
            return self._sites_of_area[area]
        except KeyError:
            raise UnknownLabelError(f"no site owns area {area}") from None

    def total_messages(self) -> int:
        return sum(site.messages_received for site in self.sites)

    def reset_messages(self) -> None:
        for site in self.sites:
            site.messages_received = 0
        self.stats.reset()
        with self._ledger_lock:
            self.degraded = {
                "messages_failed": 0,
                "failovers": 0,
                "stale_fallbacks": 0,
                "breaker_skips": 0,
                "backoff_seconds": 0.0,
            }
            self._site_backoff = {name: 0.0 for name in self._site_backoff}

    def _charge(self, key: str, amount: float = 1) -> None:
        """Atomically add *amount* to a degraded-mode counter."""
        with self._ledger_lock:
            self.degraded[key] += amount

    # ------------------------------------------------------------------
    # Fault control
    # ------------------------------------------------------------------
    def take_site_down(self, name: str) -> None:
        self._site_by_name(name).down = True

    def restore_site(self, name: str) -> None:
        """Operator restore: bring the site up and force-close its
        breaker so the next read probes it immediately. Outages driven
        through the fault injector bypass this path; call
        :meth:`reset_breakers` after ``faults.restore_site``."""
        self._site_by_name(name).down = False
        self.breakers[name].reset()

    def reset_breakers(self) -> None:
        """Force-close every per-site breaker (post-restore cleanup)."""
        for breaker in self.breakers.values():
            breaker.reset()

    def _site_by_name(self, name: str) -> Site:
        for site in self.sites:
            if site.name == name:
                return site
        raise StorageError(f"no site named {name!r}")

    def _is_down(self, site: Site) -> bool:
        if site.down:
            return True
        return self.faults is not None and self.faults.site_is_down(site.name)

    def bump_epoch(self) -> int:
        """Record a structural change: the coordinator's synopsis
        replica is stale until :meth:`resync` runs."""
        self.epoch += 1
        return self.epoch

    def resync(self) -> None:
        """Refresh the synopsis and parameter replicas to the current
        epoch (what a coordinator does after pulling new (κ, K))."""
        self.synopsis.refresh()
        self._synopsis_epoch = self.epoch
        self.parameters = load_parameters(
            dump_parameters(self._labeling, epoch=self.epoch)
        )

    @property
    def synopsis_is_stale(self) -> bool:
        return self._synopsis_epoch != self.epoch

    # ------------------------------------------------------------------
    # Degraded-mode plumbing
    # ------------------------------------------------------------------
    def _live_site_for_area(self, area: int) -> Site:
        """First reachable site in the area's replica chain.

        Walks the chain up to ``max_rounds`` times. A site whose
        breaker is open is *skipped for free* — no message, no retry,
        no backoff, just a ``breaker_skips`` charge. Every actual
        contact with a down site costs a failed message and a breaker
        failure; every contact after the first counts as a retry with
        (simulated) backoff drawn from the configured
        :class:`BackoffPolicy`, charged both globally and to the site
        being waited on. Success on a non-primary replica is a
        failover. A configured attempt budget turns exhaustion into an
        early :class:`SiteUnavailableError`.
        """
        chain = self._replica_chain(area)
        contacts = 0
        delay = 0.0
        for _round in range(self.max_rounds):
            for position, site_index in enumerate(chain):
                site = self.sites[site_index]
                breaker = self.breakers[site.name]
                if not breaker.allow():
                    self._charge("breaker_skips")
                    self.tracer.event(
                        "federation.breaker_open", area=area, site=site.name
                    )
                    continue
                if self.backoff.exhausted(contacts):
                    raise SiteUnavailableError(
                        f"area {area}: attempt budget "
                        f"({self.backoff.max_attempts}) exhausted after "
                        f"{contacts} contacts"
                    )
                if contacts > 0:
                    self.stats.record_retry()
                    delay = self.backoff.delay(contacts, previous=delay)
                    self._charge("backoff_seconds", delay)
                    with self._ledger_lock:
                        self._site_backoff[site.name] += delay
                contacts += 1
                if self._is_down(site):
                    breaker.record_failure()
                    self._charge("messages_failed")
                    self.tracer.event(
                        "federation.message_failed", area=area, site=site.name
                    )
                    continue
                breaker.record_success()
                if position > 0:
                    self._charge("failovers")
                    self.tracer.event(
                        "federation.failover",
                        area=area,
                        site=site.name,
                        replica_position=position,
                    )
                return site
        raise SiteUnavailableError(
            f"area {area}: all {len(chain)} replica(s) down after "
            f"{contacts} contacts"
        )

    # ------------------------------------------------------------------
    # Operations (each returns (result, messages_used))
    # ------------------------------------------------------------------
    def fetch(self, label: Ruid2Label) -> Tuple[Tuple, int]:
        """One row fetch: a single message to the first live replica."""
        before = self.total_messages()
        site = self._live_site_for_area(label.global_index)
        row = site.fetch(label)
        return row, self.total_messages() - before

    def fetch_parent(self, label: Ruid2Label) -> Tuple[Tuple, int]:
        """Parent row: the coordinator computes the parent label with
        zero messages (Fig. 6 arithmetic on its κ/K replica), then one
        fetch."""
        before = self.total_messages()
        parent_label = self.parameters.parent(label)
        site = self._live_site_for_area(parent_label.global_index)
        row = site.fetch(parent_label)
        return row, self.total_messages() - before

    def ancestry_check(self, candidate: Ruid2Label, label: Ruid2Label) -> Tuple[bool, int]:
        """Ancestor test: **zero** messages — pure coordinator arithmetic."""
        before = self.total_messages()
        answer = self.parameters.is_ancestor(candidate, label)
        return answer, self.total_messages() - before

    def find_tag(self, tag: str, routed: bool = True) -> Tuple[List, int]:
        """Tag search. Routed mode consults only the sites owning areas
        the synopsis admits; broadcast mode (or a routed call whose
        synopsis replica is stale) asks every area's site. Each target
        area is served by its first live replica; one message per
        distinct site contacted."""
        before = self.total_messages()
        if routed and self.synopsis_is_stale:
            self._charge("stale_fallbacks")
            self.tracer.event(
                "federation.stale_fallback", tag=tag, epoch=self.epoch
            )
            routed = False
        if routed:
            target_areas = self.synopsis.areas_for(tag)
        else:
            target_areas = sorted(self._sites_of_area)
        assignment: Dict[int, List[int]] = {}
        for area in target_areas:
            site = self._live_site_for_area(area)
            assignment.setdefault(self.sites.index(site), []).append(area)
        matches: List = []
        for site_index in sorted(assignment):
            matches.extend(
                self.sites[site_index].rows_with_tag(tag, areas=assignment[site_index])
            )
        matches = self._document_sorted(matches)
        return matches, self.total_messages() - before

    def _document_sorted(self, matches: List) -> List:
        labels = [pair[0] for pair in matches]
        ordered = self.parameters.sort(labels)
        rank = {label: index for index, label in enumerate(ordered)}
        return sorted(matches, key=lambda pair: rank[pair[0]])

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def site_loads(self) -> List[Tuple[str, int, int, str, float]]:
        """(site, areas incl. replicas, rows, up/down, accumulated
        backoff seconds) distribution."""
        with self._ledger_lock:
            backoff = dict(self._site_backoff)
        return [
            (
                site.name,
                len(site.areas) + len(site.replica_areas),
                len(site.rows),
                "down" if self._is_down(site) else "up",
                backoff[site.name],
            )
            for site in self.sites
        ]

    def stats_snapshot(self) -> Dict[str, float]:
        """Degraded-mode ledger: IoStats retries + federation counters."""
        snapshot: Dict[str, float] = {
            "messages": self.total_messages(),
            "retries": self.stats.retries,
            "breakers_open": sum(
                1 for breaker in self.breakers.values() if breaker.state == OPEN
            ),
        }
        with self._ledger_lock:
            snapshot.update(self.degraded)
        return snapshot

    def bind(self, registry, prefix: str = "federation") -> None:
        """Expose the coordinator ledger through a
        :class:`~repro.obs.metrics.MetricsRegistry` as ``prefix.*``."""
        registry.register_source(prefix, self.stats_snapshot)

    def __repr__(self) -> str:
        return (
            f"<FederatedDocument sites={len(self.sites)} "
            f"areas={len(self._sites_of_area)} "
            f"rf={self.replication_factor} "
            f"coordinator={self.coordinator_bytes}B>"
        )
