"""The XML database facade — the RDBMS deployment of §2.1 and §4–5.

Documents are shredded into a node table keyed by the numbering-scheme
label ("the data items are sorted first by the global index, and then
by local index", §2.1), with a secondary index on tags. The facade
exposes the access paths the experiments compare:

* label → row fetch (one primary-index descent);
* parent fetch: arithmetic schemes compute the parent label in memory
  and pay one fetch; index-dependent schemes (pre/post, region,
  position/depth) pay index probes *before* the fetch;
* tag lookups with and without the §4 *table routing* trick (one table
  per UID-local area, selected by the label's global index).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.labels import MultiLabel, Ruid2Label
from repro.core.persist import GlobalParameters, dump_parameters, load_parameters
from repro.core.scheme import Labeling
from repro.errors import RecoveryError, StorageError, UnknownLabelError
from repro.storage.catalog import Catalog
from repro.storage.codec import decode_value, encode_value
from repro.storage.iostats import IoStats
from repro.storage.pager import Pager
from repro.storage.table import Column, Table
from repro.storage.wal import RecoveryResult, Wal
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree

_META_MAGIC = "xmldb-meta"
_META_VERSION = 1


def _parameter_source(labeling: Any) -> Optional[Any]:
    """Whatever object carries (kappa, ktable) for *labeling*, if any.

    Accepts a core Ruid2Labeling, the scheme adapter wrapping one
    (``.core``), or an already-loaded GlobalParameters.
    """
    for candidate in (labeling, getattr(labeling, "core", None)):
        if (
            candidate is not None
            and hasattr(candidate, "kappa")
            and hasattr(candidate, "ktable")
        ):
            return candidate
    return None


def label_key(label: Any) -> Tuple[Any, ...]:
    """Flatten any scheme's label into a storable key tuple.

    rUID triples become (global, local, flag) — exactly the three
    RDBMS fields the paper proposes; multilevel labels flatten their
    components; scalar/tuple labels pass through.
    """
    if isinstance(label, Ruid2Label):
        return (label.global_index, label.local_index, label.is_area_root)
    if isinstance(label, MultiLabel):
        flat: List[Any] = [label.theta]
        for alpha, beta in label.components:
            flat.extend((alpha, beta))
        return tuple(flat)
    if isinstance(label, tuple):
        return label
    if isinstance(label, int):
        return (label,)
    raise StorageError(f"cannot derive a storage key from {type(label).__name__}")


_NODE_COLUMNS = [
    Column("label", "any"),  # flattened label tuple
    Column("tag", "str"),
    Column("kind", "str"),
    Column("text", "any"),
]


class StoredDocument:
    """One shredded document plus its labeling."""

    def __init__(
        self,
        name: str,
        tree: XmlTree,
        labeling: Labeling,
        catalog: Catalog,
        partition_by_area: bool = False,
    ):
        self.name = name
        self.tree = tree
        self.labeling = labeling
        #: label-arithmetic fallback when the labeling itself is gone
        #: (a recovered document restores κ/K from the commit metadata)
        self.parameters: Optional[GlobalParameters] = None
        self.catalog = catalog
        self.partition_by_area = partition_by_area
        self._area_tables: Dict[int, Table] = {}
        self.table = catalog.create_table(
            f"{name}__nodes", _NODE_COLUMNS, primary_key=["label"]
        )
        self.table.create_index("tag", ["tag"])
        self._load()
        if partition_by_area:
            self._load_area_tables()

    # ------------------------------------------------------------------
    # Crash-recovery support
    # ------------------------------------------------------------------
    def describe(self) -> Tuple[Any, ...]:
        """Codec-encodable registry entry for the commit metadata."""
        params_blob: Optional[bytes] = None
        source = self.parameters if self.labeling is None else _parameter_source(
            self.labeling
        )
        if source is not None:
            params_blob = dump_parameters(source)
        return (
            self.name,
            self.partition_by_area,
            tuple(sorted(self._area_tables)),
            params_blob,
        )

    @classmethod
    def attach(cls, description: Tuple[Any, ...], catalog: Catalog) -> "StoredDocument":
        """Rebind a document to already-recovered tables.

        The recovered document has no tree and no labeling; fetches and
        tag lookups work directly, and parent arithmetic works whenever
        the commit metadata carried a (κ, K) parameter blob. Call
        :meth:`XmlDatabase.attach_labeling` to restore full service.
        """
        try:
            name, partition_by_area, areas, params_blob = description
        except (TypeError, ValueError) as exc:
            raise RecoveryError(f"malformed document description: {exc}") from None
        document = cls.__new__(cls)
        document.name = name
        document.tree = None
        document.labeling = None
        document.parameters = (
            load_parameters(params_blob) if params_blob else None
        )
        document.catalog = catalog
        document.partition_by_area = partition_by_area
        document.table = catalog.table(f"{name}__nodes")
        document._area_tables = {
            area: catalog.table(f"{name}__area_{area}") for area in areas
        }
        return document

    def _row_for(self, node: XmlNode) -> Tuple[Any, ...]:
        label = self.labeling.label_of(node)
        return (label_key(label), node.tag, node.kind.value, node.text)

    def _load(self) -> None:
        for node in self.tree.preorder():
            self.table.insert(self._row_for(node))

    def _load_area_tables(self) -> None:
        """§4's "database file/table selection": one table per UID-local
        area, named by the area's global index."""
        for node in self.tree.preorder():
            label = self.labeling.label_of(node)
            if not isinstance(label, Ruid2Label):
                raise StorageError("area partitioning requires 2-level rUID labels")
            area = label.global_index
            table = self._area_tables.get(area)
            if table is None:
                table = self.catalog.create_table(
                    f"{self.name}__area_{area}", _NODE_COLUMNS, primary_key=["label"]
                )
                table.create_index("tag", ["tag"])
                self._area_tables[area] = table
            table.insert(self._row_for(node))

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def fetch(self, label: Any) -> Tuple[Any, ...]:
        """Row for *label* (one primary-index descent)."""
        row = self.table.get(label_key(label))
        if row is None:
            raise UnknownLabelError(f"label {label!r} not stored")
        return row

    def fetch_parent(self, label: Any) -> Tuple[Any, ...]:
        """Parent row: label arithmetic (or index probes) + one fetch."""
        return self.fetch(self._parent_label(label))

    def _parent_label(self, label: Any) -> Any:
        if self.labeling is not None:
            return self.labeling.parent_label(label)
        if self.parameters is not None:
            return self.parameters.parent(label)
        raise StorageError(
            f"document {self.name!r} was recovered without parameters; "
            "attach a labeling for parent arithmetic"
        )

    def nodes_with_tag(self, tag: str) -> Iterator[Tuple[Any, ...]]:
        """Rows with *tag*, lazily, via the tag index on the single
        table. Consumers that stop early (EXISTS-style probes, top-k)
        pay only for the index entries they pull; materialise with
        ``list()`` when the full set is needed."""
        return self.table.lookup("tag", tag)

    def nodes_with_tag_routed(
        self, tag: str, areas: Optional[List[int]] = None
    ) -> Tuple[List[Tuple[Any, ...]], int]:
        """Tag lookup against the per-area tables.

        When *areas* is given (e.g. from a structural pre-filter on the
        frame), only those tables are consulted — the §4 routing win.
        Returns (rows, number of tables scanned).
        """
        if not self.partition_by_area:
            raise StorageError("document was stored without area partitioning")
        if areas is None:
            targets = sorted(self._area_tables)
        else:
            targets = [a for a in sorted(areas) if a in self._area_tables]
        rows: List[Tuple[Any, ...]] = []
        for area in targets:
            rows.extend(self._area_tables[area].lookup("tag", tag))
        return rows, len(targets)

    def scan_document_order(self) -> Iterator[Tuple[Any, ...]]:
        """All rows in primary-key (global, then local) order."""
        return self.table.scan_pk_order()

    def __len__(self) -> int:
        return len(self.table)


class XmlDatabase:
    """A database instance: pager + catalog + stored documents.

    With ``durable=True`` (or an explicit ``wal``), every write-back is
    WAL-logged, :meth:`commit` makes the current state recoverable, and
    :meth:`recover` rebuilds a queryable database from a (possibly
    torn) log after :meth:`crash`.
    """

    def __init__(
        self,
        page_size: int = 4096,
        pool_pages: int = 128,
        durable: bool = False,
        wal: Optional[Wal] = None,
        faults=None,
        tracer=None,
        registry=None,
        group_commit_size: int = 1,
    ):
        self.stats = IoStats()
        if registry is not None:
            self.stats.bind(registry, "io")
        if wal is None and durable:
            wal = Wal(stats=self.stats, group_commit_size=group_commit_size)
        self.wal = wal
        self.pager = Pager(
            page_size=page_size,
            pool_pages=pool_pages,
            stats=self.stats,
            wal=self.wal,
            faults=faults,
            tracer=tracer,
        )
        self.catalog = Catalog(self.pager)
        self._documents: Dict[str, StoredDocument] = {}
        self.last_recovery: Optional[RecoveryResult] = None

    @property
    def durable(self) -> bool:
        return self.wal is not None

    def store_document(
        self,
        name: str,
        tree: XmlTree,
        labeling: Labeling,
        partition_by_area: bool = False,
    ) -> StoredDocument:
        """Shred *tree* under *labeling* into tables.

        Atomic at the catalog level: if shredding fails partway (e.g. a
        FanOutOverflowError surfacing from the labeling), the partially
        created ``{name}__nodes`` / ``{name}__area_*`` tables are
        dropped and the document is not registered.
        """
        if name in self._documents:
            raise StorageError(f"document {name!r} already stored")
        try:
            document = StoredDocument(
                name, tree, labeling, self.catalog, partition_by_area=partition_by_area
            )
        except BaseException:
            self._drop_document_tables(name)
            raise
        self._documents[name] = document
        if self.wal is not None:
            self.commit()
        return document

    def _drop_document_tables(self, name: str) -> None:
        prefix = f"{name}__area_"
        for table_name in self.catalog.table_names():
            if table_name == f"{name}__nodes" or table_name.startswith(prefix):
                self.catalog.drop_table(table_name)

    def drop_document(self, name: str) -> None:
        """Unregister a document and drop its tables."""
        if name not in self._documents:
            raise StorageError(f"no document named {name!r}")
        del self._documents[name]
        self._drop_document_tables(name)

    def document(self, name: str) -> StoredDocument:
        try:
            return self._documents[name]
        except KeyError:
            raise StorageError(f"no document named {name!r}") from None

    def document_names(self) -> List[str]:
        return sorted(self._documents)

    def node_store(self, name: str, kind: str = "paged", sqlite_path: str = ":memory:"):
        """A NodeStore over document *name* — the protocol-typed read
        path (StoreEvaluator, TwigMatcher, fragment reconstruction).

        ``kind="paged"`` (default) serves through this database's
        buffer pool: builds the persisted ranks index on first call
        (committed when durable); later calls re-attach to it.
        ``kind="sqlite"`` shreds into an XPath-Accelerator accel table
        at *sqlite_path* (``":memory:"`` default) — or attaches to one
        already shredded there, with no labeling needed.
        """
        # local import: repro.store pulls in the query layer
        if kind == "paged":
            from repro.store.paged import PagedNodeStore

            store = PagedNodeStore(self.document(name), io_stats=self.stats)
            if store.built and self.durable:
                self.commit()
            return store
        if kind == "sqlite":
            from repro.store.sqlite import SqliteNodeStore

            document = self.document(name)
            return SqliteNodeStore(
                name, labeling=document.labeling, path=sqlite_path
            )
        raise ValueError(f"unknown node-store kind {kind!r}")

    # ------------------------------------------------------------------
    # Crash-safety lifecycle
    # ------------------------------------------------------------------
    def commit(self) -> None:
        """Flush and write a commit record carrying the full catalog
        bookkeeping, making the current state the recovery target."""
        self.pager.commit(self._metadata_blob())

    def checkpoint(self) -> None:
        """Commit, then truncate the WAL (bounded-recovery point)."""
        self.pager.checkpoint(self._metadata_blob())

    def crash(self, tear_bytes: Optional[int] = None) -> int:
        """Simulate a crash (see :meth:`Pager.crash`). The in-memory
        objects of this instance are dead afterwards; use
        :meth:`recover` on the surviving WAL."""
        return self.pager.crash(tear_bytes)

    @classmethod
    def recover(
        cls,
        wal: Wal,
        page_size: int = 4096,
        pool_pages: int = 128,
        faults=None,
    ) -> "XmlDatabase":
        """Rebuild a queryable database from a surviving WAL.

        Replays committed page images, then rebinds tables and
        documents from the last commit's metadata blob. A log with no
        valid commit yields an empty (but usable) database; the replay
        report is available as :attr:`last_recovery`.
        """
        database = cls(
            page_size=page_size, pool_pages=pool_pages, wal=wal, faults=faults
        )
        result = database.pager.recover()
        database.last_recovery = result
        if result.metadata:
            database._restore_metadata(result.metadata)
        return database

    def _metadata_blob(self) -> bytes:
        return encode_value(
            (
                _META_MAGIC,
                _META_VERSION,
                self.pager.page_count,
                tuple(table.describe() for table in self.catalog),
                tuple(doc.describe() for doc in self._documents.values()),
            )
        )

    def _restore_metadata(self, blob: bytes) -> None:
        payload = decode_value(blob)
        if (
            not isinstance(payload, tuple)
            or len(payload) != 5
            or payload[0] != _META_MAGIC
        ):
            raise RecoveryError("commit metadata is not an XmlDatabase blob")
        _magic, version, next_page_id, tables, documents = payload
        if version != _META_VERSION:
            raise RecoveryError(f"unsupported metadata version {version}")
        self.pager._next_page_id = max(self.pager._next_page_id, next_page_id)
        for description in tables:
            self.catalog.adopt(Table.attach(self.pager, description))
        for description in documents:
            document = StoredDocument.attach(description, self.catalog)
            self._documents[document.name] = document

    def attach_labeling(self, name: str, labeling: Labeling) -> StoredDocument:
        """Rebind a labeling (and its tree) to a recovered document."""
        document = self.document(name)
        document.labeling = labeling
        document.tree = getattr(labeling, "tree", None)
        return document

    # ------------------------------------------------------------------
    def io_snapshot(self) -> Dict[str, int]:
        return self.stats.snapshot()

    def io_delta(self, earlier: Dict[str, int]) -> Dict[str, int]:
        return self.stats.delta_since(earlier)

    def __repr__(self) -> str:
        return (
            f"<XmlDatabase documents={len(self._documents)}"
            f"{' durable' if self.durable else ''} {self.stats!r}>"
        )
