"""The XML database facade — the RDBMS deployment of §2.1 and §4–5.

Documents are shredded into a node table keyed by the numbering-scheme
label ("the data items are sorted first by the global index, and then
by local index", §2.1), with a secondary index on tags. The facade
exposes the access paths the experiments compare:

* label → row fetch (one primary-index descent);
* parent fetch: arithmetic schemes compute the parent label in memory
  and pay one fetch; index-dependent schemes (pre/post, region,
  position/depth) pay index probes *before* the fetch;
* tag lookups with and without the §4 *table routing* trick (one table
  per UID-local area, selected by the label's global index).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.labels import MultiLabel, Ruid2Label
from repro.core.scheme import Labeling
from repro.errors import StorageError, UnknownLabelError
from repro.storage.catalog import Catalog
from repro.storage.iostats import IoStats
from repro.storage.pager import Pager
from repro.storage.table import Column, Table
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree


def label_key(label: Any) -> Tuple[Any, ...]:
    """Flatten any scheme's label into a storable key tuple.

    rUID triples become (global, local, flag) — exactly the three
    RDBMS fields the paper proposes; multilevel labels flatten their
    components; scalar/tuple labels pass through.
    """
    if isinstance(label, Ruid2Label):
        return (label.global_index, label.local_index, label.is_area_root)
    if isinstance(label, MultiLabel):
        flat: List[Any] = [label.theta]
        for alpha, beta in label.components:
            flat.extend((alpha, beta))
        return tuple(flat)
    if isinstance(label, tuple):
        return label
    if isinstance(label, int):
        return (label,)
    raise StorageError(f"cannot derive a storage key from {type(label).__name__}")


_NODE_COLUMNS = [
    Column("label", "any"),  # flattened label tuple
    Column("tag", "str"),
    Column("kind", "str"),
    Column("text", "any"),
]


class StoredDocument:
    """One shredded document plus its labeling."""

    def __init__(
        self,
        name: str,
        tree: XmlTree,
        labeling: Labeling,
        catalog: Catalog,
        partition_by_area: bool = False,
    ):
        self.name = name
        self.tree = tree
        self.labeling = labeling
        self.catalog = catalog
        self.partition_by_area = partition_by_area
        self._area_tables: Dict[int, Table] = {}
        self.table = catalog.create_table(
            f"{name}__nodes", _NODE_COLUMNS, primary_key=["label"]
        )
        self.table.create_index("tag", ["tag"])
        self._load()
        if partition_by_area:
            self._load_area_tables()

    def _row_for(self, node: XmlNode) -> Tuple[Any, ...]:
        label = self.labeling.label_of(node)
        return (label_key(label), node.tag, node.kind.value, node.text)

    def _load(self) -> None:
        for node in self.tree.preorder():
            self.table.insert(self._row_for(node))

    def _load_area_tables(self) -> None:
        """§4's "database file/table selection": one table per UID-local
        area, named by the area's global index."""
        for node in self.tree.preorder():
            label = self.labeling.label_of(node)
            if not isinstance(label, Ruid2Label):
                raise StorageError("area partitioning requires 2-level rUID labels")
            area = label.global_index
            table = self._area_tables.get(area)
            if table is None:
                table = self.catalog.create_table(
                    f"{self.name}__area_{area}", _NODE_COLUMNS, primary_key=["label"]
                )
                table.create_index("tag", ["tag"])
                self._area_tables[area] = table
            table.insert(self._row_for(node))

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def fetch(self, label: Any) -> Tuple[Any, ...]:
        """Row for *label* (one primary-index descent)."""
        row = self.table.get(label_key(label))
        if row is None:
            raise UnknownLabelError(f"label {label!r} not stored")
        return row

    def fetch_parent(self, label: Any) -> Tuple[Any, ...]:
        """Parent row: label arithmetic (or index probes) + one fetch."""
        return self.fetch(self.labeling.parent_label(label))

    def nodes_with_tag(self, tag: str) -> List[Tuple[Any, ...]]:
        """All rows with *tag*, via the tag index on the single table."""
        return list(self.table.lookup("tag", tag))

    def nodes_with_tag_routed(
        self, tag: str, areas: Optional[List[int]] = None
    ) -> Tuple[List[Tuple[Any, ...]], int]:
        """Tag lookup against the per-area tables.

        When *areas* is given (e.g. from a structural pre-filter on the
        frame), only those tables are consulted — the §4 routing win.
        Returns (rows, number of tables scanned).
        """
        if not self.partition_by_area:
            raise StorageError("document was stored without area partitioning")
        if areas is None:
            targets = sorted(self._area_tables)
        else:
            targets = [a for a in sorted(areas) if a in self._area_tables]
        rows: List[Tuple[Any, ...]] = []
        for area in targets:
            rows.extend(self._area_tables[area].lookup("tag", tag))
        return rows, len(targets)

    def scan_document_order(self) -> Iterator[Tuple[Any, ...]]:
        """All rows in primary-key (global, then local) order."""
        return self.table.scan_pk_order()

    def __len__(self) -> int:
        return len(self.table)


class XmlDatabase:
    """A database instance: pager + catalog + stored documents."""

    def __init__(self, page_size: int = 4096, pool_pages: int = 128):
        self.stats = IoStats()
        self.pager = Pager(page_size=page_size, pool_pages=pool_pages, stats=self.stats)
        self.catalog = Catalog(self.pager)
        self._documents: Dict[str, StoredDocument] = {}

    def store_document(
        self,
        name: str,
        tree: XmlTree,
        labeling: Labeling,
        partition_by_area: bool = False,
    ) -> StoredDocument:
        """Shred *tree* under *labeling* into tables."""
        if name in self._documents:
            raise StorageError(f"document {name!r} already stored")
        document = StoredDocument(
            name, tree, labeling, self.catalog, partition_by_area=partition_by_area
        )
        self._documents[name] = document
        return document

    def document(self, name: str) -> StoredDocument:
        try:
            return self._documents[name]
        except KeyError:
            raise StorageError(f"no document named {name!r}") from None

    def io_snapshot(self) -> Dict[str, int]:
        return self.stats.snapshot()

    def io_delta(self, earlier: Dict[str, int]) -> Dict[str, int]:
        return self.stats.delta_since(earlier)

    def __repr__(self) -> str:
        return f"<XmlDatabase documents={len(self._documents)} {self.stats!r}>"
