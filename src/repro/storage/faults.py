"""Deterministic fault injection for the storage and federation stacks.

Every fault a robustness test wants to provoke is scheduled through a
single seeded :class:`FaultInjector`, so a failing run reproduces from
its seed alone:

* **write failures** — arm :meth:`fail_after_writes` and the pager's
  Nth subsequent write-back raises
  :class:`~repro.errors.InjectedFaultError` before touching disk or
  WAL (the device vanished mid-operation);
* **media corruption** — :meth:`flip_page_bit` XORs one randomly
  chosen (or caller-pinned) bit of an on-disk page image, which the
  pager's CRC32 check must catch on the next cold read;
* **site outages** — :meth:`take_site_down` / :meth:`restore_site`
  drive the federation's degraded mode; placement-aware helpers pick
  victims reproducibly;
* **read-path chaos** — :meth:`arm_read_faults` gives every cold page
  read a seeded chance of a transient error
  (:class:`~repro.errors.TransientFetchError`), a latency spike, or a
  fetch-time bit flip (caught by the pager's CRC as a
  :class:`~repro.errors.ChecksumError`). This is what the resilience
  suite drives the differential harness with.

The injector is passive: components consult it at their fault points
(`Pager._write_back`, `Pager.read`, `FederatedDocument._site_is_down`),
so wiring it in costs nothing when no faults are armed.
"""

from __future__ import annotations

import random
import time
from typing import Iterable, Optional, Set, Tuple

from repro.errors import InjectedFaultError, StorageError, TransientFetchError


class FaultInjector:
    """Seeded scheduler of storage/federation faults."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self._writes_seen = 0
        self._fail_at_write: Optional[int] = None
        self._down_sites: Set[str] = set()
        # read-path fault rates (all zero = disarmed)
        self._read_transient_rate = 0.0
        self._read_latency_rate = 0.0
        self._read_latency_s = 0.0
        self._read_bitflip_rate = 0.0
        self._read_fires_left: Optional[int] = None
        self._sleep = time.sleep
        #: how many injected faults actually fired, by kind
        self.fired = {
            "write": 0,
            "bitflip": 0,
            "read_transient": 0,
            "read_latency": 0,
            "read_bitflip": 0,
        }

    # ------------------------------------------------------------------
    # Write failures
    # ------------------------------------------------------------------
    def fail_after_writes(self, n: int) -> None:
        """Arm a one-shot failure on the *n*-th write-back from now
        (n=1 fails the very next write)."""
        if n < 1:
            raise StorageError("write-failure countdown must be >= 1")
        self._writes_seen = 0
        self._fail_at_write = n

    def disarm_write_failure(self) -> None:
        self._fail_at_write = None

    def before_page_write(self, page_id: int) -> None:
        """Pager hook: called before every write-back."""
        if self._fail_at_write is None:
            return
        self._writes_seen += 1
        if self._writes_seen >= self._fail_at_write:
            self._fail_at_write = None
            self.fired["write"] += 1
            raise InjectedFaultError(
                f"injected write failure on page {page_id} "
                f"(write #{self._writes_seen}, seed {self.seed})"
            )

    # ------------------------------------------------------------------
    # Media corruption
    # ------------------------------------------------------------------
    def flip_page_bit(
        self,
        pager,
        page_id: Optional[int] = None,
        offset: Optional[int] = None,
        bit: Optional[int] = None,
    ) -> Tuple[int, int, int]:
        """Flip one bit of an on-disk page image.

        Unpinned coordinates are drawn from the injector's RNG; returns
        the (page_id, offset, bit) actually damaged so tests can assert
        against it. The page is evicted from the buffer pool so the
        next read re-checks the checksum.
        """
        candidates = pager.stored_page_ids()
        if not candidates:
            raise StorageError("no pages on disk to corrupt")
        if page_id is None:
            page_id = candidates[self.rng.randrange(len(candidates))]
        if offset is None:
            offset = self.rng.randrange(pager.page_size)
        if bit is None:
            bit = self.rng.randrange(8)
        pager.damage(page_id, offset, 1 << bit)
        self.fired["bitflip"] += 1
        return page_id, offset, bit

    # ------------------------------------------------------------------
    # Read-path chaos
    # ------------------------------------------------------------------
    def arm_read_faults(
        self,
        transient_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_s: float = 0.0,
        bitflip_rate: float = 0.0,
        max_fires: Optional[int] = None,
        sleep=None,
    ) -> None:
        """Give every cold page read a seeded chance of misbehaving.

        Rates are independent per-read probabilities; a read rolls for
        each armed fault in a fixed order (transient, latency, bitflip)
        and at most one fires. *max_fires* bounds the total number of
        faults so a retry loop eventually succeeds; *sleep* is
        injectable for tests that must not actually wait.
        """
        for name, rate in (
            ("transient_rate", transient_rate),
            ("latency_rate", latency_rate),
            ("bitflip_rate", bitflip_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise StorageError(f"{name} must be in [0, 1], got {rate}")
        if latency_rate and latency_s <= 0:
            raise StorageError("latency faults need a positive latency_s")
        self._read_transient_rate = transient_rate
        self._read_latency_rate = latency_rate
        self._read_latency_s = latency_s
        self._read_bitflip_rate = bitflip_rate
        self._read_fires_left = max_fires
        if sleep is not None:
            self._sleep = sleep

    def disarm_read_faults(self) -> None:
        self._read_transient_rate = 0.0
        self._read_latency_rate = 0.0
        self._read_latency_s = 0.0
        self._read_bitflip_rate = 0.0
        self._read_fires_left = None

    def before_page_read(self, pager, page_id: int) -> None:
        """Pager hook: called at the top of every cold (pool-miss) read."""
        if self._read_fires_left is not None and self._read_fires_left <= 0:
            return
        if self._read_transient_rate and (
            self.rng.random() < self._read_transient_rate
        ):
            self._spend_fire()
            self.fired["read_transient"] += 1
            raise TransientFetchError(
                f"injected transient read fault on page {page_id} "
                f"(seed {self.seed})"
            )
        if self._read_latency_rate and (
            self.rng.random() < self._read_latency_rate
        ):
            self._spend_fire()
            self.fired["read_latency"] += 1
            self._sleep(self._read_latency_s)
            return
        if self._read_bitflip_rate and (
            self.rng.random() < self._read_bitflip_rate
        ):
            self._spend_fire()
            self.fired["read_bitflip"] += 1
            # damage lands on _disk before the caller samples it, so
            # the pager's CRC verification turns this into a typed
            # ChecksumError on this very read
            pager.damage(
                page_id, self.rng.randrange(pager.page_size),
                1 << self.rng.randrange(8),
            )

    def _spend_fire(self) -> None:
        if self._read_fires_left is not None:
            self._read_fires_left -= 1

    # ------------------------------------------------------------------
    # Federation outages
    # ------------------------------------------------------------------
    def take_site_down(self, name: str) -> None:
        self._down_sites.add(name)

    def restore_site(self, name: str) -> None:
        self._down_sites.discard(name)

    def restore_all_sites(self) -> None:
        self._down_sites.clear()

    def site_is_down(self, name: str) -> bool:
        return name in self._down_sites

    def down_sites(self) -> Set[str]:
        return set(self._down_sites)

    def take_random_site_down(self, names: Iterable[str]) -> str:
        """Deterministically pick one of *names* and take it down."""
        pool = sorted(names)
        if not pool:
            raise StorageError("no sites to take down")
        victim = pool[self.rng.randrange(len(pool))]
        self.take_site_down(victim)
        return victim

    def __repr__(self) -> str:
        return (
            f"<FaultInjector seed={self.seed} down={sorted(self._down_sites)} "
            f"fired={self.fired}>"
        )
