"""Deterministic fault injection for the storage and federation stacks.

Every fault a robustness test wants to provoke is scheduled through a
single seeded :class:`FaultInjector`, so a failing run reproduces from
its seed alone:

* **write failures** — arm :meth:`fail_after_writes` and the pager's
  Nth subsequent write-back raises
  :class:`~repro.errors.InjectedFaultError` before touching disk or
  WAL (the device vanished mid-operation);
* **media corruption** — :meth:`flip_page_bit` XORs one randomly
  chosen (or caller-pinned) bit of an on-disk page image, which the
  pager's CRC32 check must catch on the next cold read;
* **site outages** — :meth:`take_site_down` / :meth:`restore_site`
  drive the federation's degraded mode; placement-aware helpers pick
  victims reproducibly.

The injector is passive: components consult it at their fault points
(`Pager._write_back`, `FederatedDocument._site_is_down`), so wiring it
in costs nothing when no faults are armed.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Set, Tuple

from repro.errors import InjectedFaultError, StorageError


class FaultInjector:
    """Seeded scheduler of storage/federation faults."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self._writes_seen = 0
        self._fail_at_write: Optional[int] = None
        self._down_sites: Set[str] = set()
        #: how many injected faults actually fired, by kind
        self.fired = {"write": 0, "bitflip": 0}

    # ------------------------------------------------------------------
    # Write failures
    # ------------------------------------------------------------------
    def fail_after_writes(self, n: int) -> None:
        """Arm a one-shot failure on the *n*-th write-back from now
        (n=1 fails the very next write)."""
        if n < 1:
            raise StorageError("write-failure countdown must be >= 1")
        self._writes_seen = 0
        self._fail_at_write = n

    def disarm_write_failure(self) -> None:
        self._fail_at_write = None

    def before_page_write(self, page_id: int) -> None:
        """Pager hook: called before every write-back."""
        if self._fail_at_write is None:
            return
        self._writes_seen += 1
        if self._writes_seen >= self._fail_at_write:
            self._fail_at_write = None
            self.fired["write"] += 1
            raise InjectedFaultError(
                f"injected write failure on page {page_id} "
                f"(write #{self._writes_seen}, seed {self.seed})"
            )

    # ------------------------------------------------------------------
    # Media corruption
    # ------------------------------------------------------------------
    def flip_page_bit(
        self,
        pager,
        page_id: Optional[int] = None,
        offset: Optional[int] = None,
        bit: Optional[int] = None,
    ) -> Tuple[int, int, int]:
        """Flip one bit of an on-disk page image.

        Unpinned coordinates are drawn from the injector's RNG; returns
        the (page_id, offset, bit) actually damaged so tests can assert
        against it. The page is evicted from the buffer pool so the
        next read re-checks the checksum.
        """
        candidates = pager.stored_page_ids()
        if not candidates:
            raise StorageError("no pages on disk to corrupt")
        if page_id is None:
            page_id = candidates[self.rng.randrange(len(candidates))]
        if offset is None:
            offset = self.rng.randrange(pager.page_size)
        if bit is None:
            bit = self.rng.randrange(8)
        pager.damage(page_id, offset, 1 << bit)
        self.fired["bitflip"] += 1
        return page_id, offset, bit

    # ------------------------------------------------------------------
    # Federation outages
    # ------------------------------------------------------------------
    def take_site_down(self, name: str) -> None:
        self._down_sites.add(name)

    def restore_site(self, name: str) -> None:
        self._down_sites.discard(name)

    def restore_all_sites(self) -> None:
        self._down_sites.clear()

    def site_is_down(self, name: str) -> bool:
        return name in self._down_sites

    def down_sites(self) -> Set[str]:
        return set(self._down_sites)

    def take_random_site_down(self, names: Iterable[str]) -> str:
        """Deterministically pick one of *names* and take it down."""
        pool = sorted(names)
        if not pool:
            raise StorageError("no sites to take down")
        victim = pool[self.rng.randrange(len(pool))]
        self.take_site_down(victim)
        return victim

    def __repr__(self) -> str:
        return (
            f"<FaultInjector seed={self.seed} down={sorted(self._down_sites)} "
            f"fired={self.fired}>"
        )
