"""Typed tables over the heap file + B+-tree substrate.

A :class:`Table` stores tuples described by a :class:`Schema`, keeps a
unique primary-key index, and supports additional secondary indexes
(implemented as unique composite-key B+-trees whose key appends the
Rid, the standard trick that makes duplicates unique).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from repro.errors import DuplicateKeyError, StorageError
from repro.storage.btree import BPlusTree
from repro.storage.codec import decode_key, decode_value, encode_key, encode_value
from repro.storage.heapfile import HeapFile, Rid
from repro.storage.pager import Pager

Row = Tuple[Any, ...]


@dataclass(frozen=True)
class Column:
    """One column: a name and an advisory kind tag."""

    name: str
    kind: str = "any"  # int | str | bool | bytes | any

    _CHECKS = {
        "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
        "str": lambda v: isinstance(v, str),
        "bool": lambda v: isinstance(v, bool),
        "bytes": lambda v: isinstance(v, bytes),
        "any": lambda v: True,
    }

    def validate(self, value: Any) -> None:
        if value is None:
            return  # all columns are nullable
        check = self._CHECKS.get(self.kind)
        if check is None:
            raise StorageError(f"unknown column kind {self.kind!r}")
        if not check(value):
            raise StorageError(
                f"column {self.name!r} expects {self.kind}, got {type(value).__name__}"
            )


class Schema:
    """Ordered column list with name→position lookup."""

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise StorageError("a schema needs at least one column")
        self.columns = list(columns)
        self.position: Dict[str, int] = {}
        for index, column in enumerate(self.columns):
            if column.name in self.position:
                raise StorageError(f"duplicate column {column.name!r}")
            self.position[column.name] = index

    def validate(self, row: Row) -> None:
        if len(row) != len(self.columns):
            raise StorageError(
                f"row has {len(row)} values, schema has {len(self.columns)} columns"
            )
        for column, value in zip(self.columns, row):
            column.validate(value)

    def project(self, row: Row, names: Sequence[str]) -> Tuple[Any, ...]:
        return tuple(row[self.position[name]] for name in names)

    def __len__(self) -> int:
        return len(self.columns)

    def __repr__(self) -> str:
        return f"<Schema {[c.name for c in self.columns]}>"


class _SecondaryIndex:
    """Composite-key index: encode(col values + rid pair) → b''.

    Appending the Rid makes duplicate column values unique, the
    standard secondary-index trick.
    """

    def __init__(self, name: str, columns: Sequence[str], tree: BPlusTree):
        self.name = name
        self.columns = list(columns)
        self.tree = tree

    def key_for(self, values: Tuple[Any, ...], rid: Rid) -> bytes:
        return encode_key(values + rid.as_tuple())

    def prefix_bounds(self, values: Tuple[Any, ...]) -> Tuple[bytes, bytes]:
        """Byte range covering every composite key starting with *values*."""
        prefix = encode_key(values)[:-1]  # keep the start tag, drop the end
        return prefix, prefix + b"\xff"

    def split(self, flat: Tuple[Any, ...]) -> Tuple[Tuple[Any, ...], Rid]:
        return flat[: len(self.columns)], Rid(*flat[len(self.columns) :])


class Table:
    """A heap-backed table with a primary key and secondary indexes."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        pager: Pager,
        primary_key: Sequence[str],
    ):
        if not primary_key:
            raise StorageError("a table needs a primary key")
        for column in primary_key:
            if column not in schema.position:
                raise StorageError(f"primary key column {column!r} not in schema")
        self.name = name
        self.schema = schema
        self.pager = pager
        self.primary_key = list(primary_key)
        self.heap = HeapFile(pager)
        self.pk_index = BPlusTree(pager, unique=True)
        self.indexes: Dict[str, _SecondaryIndex] = {}
        self._row_count = 0

    # ------------------------------------------------------------------
    # Crash-recovery support
    # ------------------------------------------------------------------
    def describe(self) -> Tuple[Any, ...]:
        """Codec-encodable bookkeeping snapshot.

        Captures everything needed to rebind a Table to its pages after
        a crash: schema, heap bookkeeping, index root page ids, and the
        cached row count. Page *contents* are the WAL's problem.
        """
        heap_pages, heap_free = self.heap.describe()
        return (
            self.name,
            tuple((column.name, column.kind) for column in self.schema.columns),
            tuple(self.primary_key),
            heap_pages,
            heap_free,
            self._row_count,
            self.pk_index.root_page_id,
            tuple(
                (index.name, tuple(index.columns), index.tree.root_page_id)
                for index in self.indexes.values()
            ),
        )

    @classmethod
    def attach(cls, pager: Pager, description: Tuple[Any, ...]) -> "Table":
        """Rebind a table to recovered pages from a :meth:`describe`
        snapshot, without allocating anything."""
        try:
            (name, columns, primary_key, heap_pages, heap_free,
             row_count, pk_root, indexes) = description
            table = cls.__new__(cls)
            table.name = name
            table.schema = Schema([Column(n, kind) for n, kind in columns])
            table.pager = pager
            table.primary_key = list(primary_key)
            table.heap = HeapFile(pager)
            table.heap.restore(heap_pages, dict(heap_free))
            table.pk_index = BPlusTree(pager, root_page_id=pk_root, unique=True)
            table.indexes = {
                index_name: _SecondaryIndex(
                    index_name,
                    list(index_columns),
                    BPlusTree(pager, root_page_id=root, unique=True),
                )
                for index_name, index_columns, root in indexes
            }
            table._row_count = row_count
        except (TypeError, ValueError) as exc:
            raise StorageError(f"malformed table description: {exc}") from None
        return table

    # ------------------------------------------------------------------
    def insert(self, row: Row) -> Rid:
        """Insert *row*; duplicate primary keys raise."""
        self.schema.validate(row)
        key_values = self.schema.project(row, self.primary_key)
        key = encode_key(key_values)
        if self.pk_index.contains(key):
            raise DuplicateKeyError(
                f"duplicate primary key {key_values!r} in table {self.name!r}"
            )
        rid = self.heap.insert(encode_value(row))
        self.pk_index.insert(key, encode_value(rid.as_tuple()))
        for index in self.indexes.values():
            values = self.schema.project(row, index.columns)
            index.tree.insert(index.key_for(values, rid), b"")
        self._row_count += 1
        return rid

    def get(self, *key_values: Any) -> Optional[Row]:
        """Row with the given primary-key values, or None."""
        raw = self.pk_index.get(encode_key(tuple(key_values)))
        if raw is None:
            return None
        rid = Rid(*decode_value(raw))
        return decode_value(self.heap.get(rid))

    def delete(self, *key_values: Any) -> bool:
        """Delete by primary key; returns True if a row was removed."""
        key = encode_key(tuple(key_values))
        raw = self.pk_index.get(key)
        if raw is None:
            return False
        rid = Rid(*decode_value(raw))
        row = decode_value(self.heap.get(rid))
        self.heap.delete(rid)
        self.pk_index.delete(key)
        for index in self.indexes.values():
            values = self.schema.project(row, index.columns)
            index.tree.delete(index.key_for(values, rid))
        self._row_count -= 1
        return True

    def scan(self) -> Iterator[Row]:
        """All rows in heap order."""
        for _rid, raw in self.heap.scan():
            yield decode_value(raw)

    def scan_pk_order(self) -> Iterator[Row]:
        """All rows in primary-key order (an index-order scan)."""
        for _key, raw in self.pk_index.items():
            rid = Rid(*decode_value(raw))
            yield decode_value(self.heap.get(rid))

    def range_pk(self, low: Optional[Tuple], high: Optional[Tuple]) -> Iterator[Row]:
        """Rows whose primary key lies in [low, high] (either may be None)."""
        low_key = encode_key(low) if low is not None else None
        high_key = encode_key(high) if high is not None else None
        for _key, raw in self.pk_index.range(low_key, high_key):
            rid = Rid(*decode_value(raw))
            yield decode_value(self.heap.get(rid))

    # ------------------------------------------------------------------
    def create_index(self, name: str, columns: Sequence[str]) -> None:
        """Build a secondary index over *columns* (backfills existing rows)."""
        if name in self.indexes:
            raise StorageError(f"index {name!r} already exists")
        for column in columns:
            if column not in self.schema.position:
                raise StorageError(f"index column {column!r} not in schema")
        index = _SecondaryIndex(name, columns, BPlusTree(self.pager, unique=True))
        for rid, raw in self.heap.scan():
            row = decode_value(raw)
            values = self.schema.project(row, index.columns)
            index.tree.insert(index.key_for(values, rid), b"")
        self.indexes[name] = index

    def lookup(self, index_name: str, *values: Any) -> Iterator[Row]:
        """Rows matching *values* on the named secondary index."""
        try:
            index = self.indexes[index_name]
        except KeyError:
            raise StorageError(f"no index {index_name!r} on {self.name!r}") from None
        low, high = index.prefix_bounds(tuple(values))
        for key, _ in index.tree.range(low, high):
            _decoded, rid = index.split(decode_key(key))
            yield decode_value(self.heap.get(rid))

    def __len__(self) -> int:
        return self._row_count

    def __repr__(self) -> str:
        return f"<Table {self.name!r} rows={self._row_count}>"
