"""Storage substrate: pager, B+-tree, heap files, tables, XML database,
write-ahead logging and deterministic fault injection."""

from repro.storage.btree import BPlusTree
from repro.storage.catalog import Catalog
from repro.storage.codec import decode_key, decode_value, encode_key, encode_value
from repro.storage.database import StoredDocument, XmlDatabase, label_key
from repro.storage.faults import FaultInjector
from repro.storage.federation import FederatedDocument, Site
from repro.storage.heapfile import HeapFile, Rid
from repro.storage.iostats import IoStats
from repro.storage.pager import DEFAULT_PAGE_SIZE, Page, Pager
from repro.storage.table import Column, Schema, Table
from repro.storage.wal import RecoveryResult, Wal

__all__ = [
    "BPlusTree",
    "Catalog",
    "Column",
    "DEFAULT_PAGE_SIZE",
    "FaultInjector",
    "FederatedDocument",
    "HeapFile",
    "Site",
    "IoStats",
    "Page",
    "Pager",
    "RecoveryResult",
    "Rid",
    "Schema",
    "StoredDocument",
    "Table",
    "Wal",
    "XmlDatabase",
    "decode_key",
    "decode_value",
    "encode_key",
    "encode_value",
    "label_key",
]
