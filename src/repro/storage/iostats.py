"""I/O accounting.

The paper's systems argument is *where* computation happens: rUID's
parent/axis arithmetic runs in main memory, while interval/position
schemes must consult disk-resident indexes (§2.2, §5 observation 2).
:class:`IoStats` is the ledger every storage component charges, so
experiments report disk reads/writes alongside wall time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class IoStats:
    """Counters for simulated disk traffic and buffer-pool behaviour."""

    disk_reads: int = 0
    disk_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    evictions: int = 0
    wal_appends: int = 0
    wal_bytes: int = 0
    recoveries: int = 0
    checksum_failures: int = 0
    retries: int = 0

    def record_hit(self) -> None:
        self.buffer_hits += 1

    def record_miss(self) -> None:
        self.buffer_misses += 1
        self.disk_reads += 1

    def record_write(self) -> None:
        self.disk_writes += 1

    def record_eviction(self) -> None:
        self.evictions += 1

    def record_wal_append(self, nbytes: int) -> None:
        self.wal_appends += 1
        self.wal_bytes += nbytes

    def record_recovery(self) -> None:
        self.recoveries += 1

    def record_checksum_failure(self) -> None:
        self.checksum_failures += 1

    def record_retry(self) -> None:
        self.retries += 1

    @property
    def total_io(self) -> int:
        """Physical page transfers (reads + writes)."""
        return self.disk_reads + self.disk_writes

    @property
    def hit_ratio(self) -> float:
        accesses = self.buffer_hits + self.buffer_misses
        if not accesses:
            return 1.0
        return self.buffer_hits / accesses

    def snapshot(self) -> Dict[str, int]:
        return {
            "disk_reads": self.disk_reads,
            "disk_writes": self.disk_writes,
            "buffer_hits": self.buffer_hits,
            "buffer_misses": self.buffer_misses,
            "evictions": self.evictions,
            "wal_appends": self.wal_appends,
            "wal_bytes": self.wal_bytes,
            "recoveries": self.recoveries,
            "checksum_failures": self.checksum_failures,
            "retries": self.retries,
        }

    def delta_since(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Difference between now and an earlier :meth:`snapshot`."""
        now = self.snapshot()
        return {key: now[key] - earlier.get(key, 0) for key in now}

    def reset(self) -> None:
        self.disk_reads = 0
        self.disk_writes = 0
        self.buffer_hits = 0
        self.buffer_misses = 0
        self.evictions = 0
        self.wal_appends = 0
        self.wal_bytes = 0
        self.recoveries = 0
        self.checksum_failures = 0
        self.retries = 0

    def __repr__(self) -> str:
        return (
            f"<IoStats reads={self.disk_reads} writes={self.disk_writes} "
            f"hit_ratio={self.hit_ratio:.2f}>"
        )
