"""I/O accounting.

The paper's systems argument is *where* computation happens: rUID's
parent/axis arithmetic runs in main memory, while interval/position
schemes must consult disk-resident indexes (§2.2, §5 observation 2).
:class:`IoStats` is the ledger every storage component charges, so
experiments report disk reads/writes alongside wall time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


@dataclass
class IoStats:
    """Counters for simulated disk traffic and buffer-pool behaviour.

    One ledger may be charged from several threads at once (the
    concurrent access layer shares a database across readers), so the
    ``record_*`` mutators serialise under a per-ledger lock — ``+=``
    on an attribute is a read-modify-write and loses increments under
    races.
    """

    disk_reads: int = 0
    disk_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    evictions: int = 0
    wal_appends: int = 0
    wal_bytes: int = 0
    wal_syncs: int = 0
    wal_batches: int = 0
    recoveries: int = 0
    checksum_failures: int = 0
    retries: int = 0
    #: serialises counter mutation across threads (not a counter)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_hit(self) -> None:
        with self._lock:
            self.buffer_hits += 1

    def record_miss(self) -> None:
        with self._lock:
            self.buffer_misses += 1
            self.disk_reads += 1

    def record_write(self) -> None:
        with self._lock:
            self.disk_writes += 1

    def record_eviction(self) -> None:
        with self._lock:
            self.evictions += 1

    def record_wal_append(self, nbytes: int) -> None:
        with self._lock:
            self.wal_appends += 1
            self.wal_bytes += nbytes

    def record_wal_sync(self) -> None:
        with self._lock:
            self.wal_syncs += 1

    def record_wal_batch(self) -> None:
        with self._lock:
            self.wal_batches += 1

    def record_recovery(self) -> None:
        with self._lock:
            self.recoveries += 1

    def record_checksum_failure(self) -> None:
        with self._lock:
            self.checksum_failures += 1

    def record_retry(self) -> None:
        with self._lock:
            self.retries += 1

    @property
    def total_io(self) -> int:
        """Physical page transfers (reads + writes)."""
        return self.disk_reads + self.disk_writes

    @property
    def hit_ratio(self) -> float:
        accesses = self.buffer_hits + self.buffer_misses
        if not accesses:
            return 1.0
        return self.buffer_hits / accesses

    def as_dict(self) -> Dict[str, int]:
        """Every counter field, derived from the dataclass fields —
        adding a field can never silently drift out of the exported
        dict (or out of a registry this ledger is bound to)."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if not f.name.startswith("_")
        }

    def snapshot(self) -> Dict[str, int]:
        return self.as_dict()

    def delta_since(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Difference between now and an earlier :meth:`snapshot`."""
        now = self.snapshot()
        return {key: now[key] - earlier.get(key, 0) for key in now}

    def reset(self) -> None:
        """Zero every counter field (field-driven, like :meth:`as_dict`)."""
        with self._lock:
            for f in fields(self):
                if not f.name.startswith("_"):
                    setattr(self, f.name, f.default)

    def bind(self, registry: "MetricsRegistry", prefix: str = "io") -> None:
        """Expose this ledger through *registry* as ``prefix.*`` pull
        metrics; the registry always reads live values, so the two can
        never disagree."""
        registry.register_source(prefix, self.as_dict)

    def __repr__(self) -> str:
        return (
            f"<IoStats reads={self.disk_reads} writes={self.disk_writes} "
            f"hit_ratio={self.hit_ratio:.2f}>"
        )
