"""Order-preserving key/value encoding ("memcomparable" codec).

B+-tree keys must compare as raw bytes in the same order as their
typed values. The codec supports ``None``, booleans, arbitrary-
precision integers (UID identifiers overflow 64 bits by design — the
very problem the paper discusses), strings, byte strings and tuples,
with the usual guarantees:

* ``encode_key(a) < encode_key(b)`` iff ``a < b`` under the type-aware
  ordering (values of different types order by a fixed type rank);
* tuples compare lexicographically, and a tuple's encoding is a prefix
  of the encoding of any tuple it prefixes.

Values (non-key payloads) use a compact tagged format via
:func:`encode_value` / :func:`decode_value`.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.errors import StorageError

# Type tags chosen so that byte order = type rank order.
_TAG_NONE = 0x01
_TAG_FALSE = 0x02
_TAG_TRUE = 0x03
_TAG_INT_NEG = 0x04
_TAG_INT_POS = 0x05
_TAG_STR = 0x06
_TAG_BYTES = 0x07
_TAG_TUPLE_START = 0x08
# Tuple elements are concatenated between an explicit start tag and a
# low end sentinel, so (a,) sorts before (a, b) and decoding is
# unambiguous.
_TUPLE_END = 0x00


def _encode_unsigned(magnitude: int) -> bytes:
    """Length-prefixed big-endian magnitude; order-preserving for
    non-negative integers of any size."""
    if magnitude == 0:
        return b"\x00\x00"
    raw = magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
    if len(raw) > 0xFFFF:
        raise StorageError("integer too large to encode")
    return struct.pack(">H", len(raw)) + raw


def _decode_unsigned(buffer: bytes, offset: int) -> Tuple[int, int]:
    (length,) = struct.unpack_from(">H", buffer, offset)
    offset += 2
    if length == 0:
        return 0, offset
    value = int.from_bytes(buffer[offset : offset + length], "big")
    return value, offset + length


def _invert(raw: bytes) -> bytes:
    return bytes(0xFF - b for b in raw)


def _encode_scalar(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(bytes([_TAG_NONE]))
    elif value is True:
        out.append(bytes([_TAG_TRUE]))
    elif value is False:
        out.append(bytes([_TAG_FALSE]))
    elif isinstance(value, int):
        if value >= 0:
            out.append(bytes([_TAG_INT_POS]) + _encode_unsigned(value))
        else:
            # Complemented encoding: more-negative sorts earlier.
            out.append(bytes([_TAG_INT_NEG]) + _invert(_encode_unsigned(-value)))
    elif isinstance(value, str):
        encoded = value.encode("utf-8").replace(b"\x00", b"\x00\xff") + b"\x00\x00"
        out.append(bytes([_TAG_STR]) + encoded)
    elif isinstance(value, bytes):
        encoded = value.replace(b"\x00", b"\x00\xff") + b"\x00\x00"
        out.append(bytes([_TAG_BYTES]) + encoded)
    else:
        raise StorageError(f"unsupported key component type {type(value).__name__}")


def encode_key(value: Any) -> bytes:
    """Encode a scalar or (possibly nested) tuple as a comparable key."""
    out: List[bytes] = []
    _encode_key_part(value, out)
    return b"".join(out)


def _encode_key_part(value: Any, out: List[bytes]) -> None:
    if isinstance(value, tuple):
        out.append(bytes([_TAG_TUPLE_START]))
        for element in value:
            _encode_key_part(element, out)
        out.append(bytes([_TUPLE_END]))
    else:
        _encode_scalar(value, out)


def decode_key(buffer: bytes) -> Any:
    """Decode a key produced by :func:`encode_key`.

    Top-level tuples round-trip as tuples; a single scalar round-trips
    as itself.
    """
    try:
        value, offset = _decode_key_part(buffer, 0)
    except (struct.error, IndexError) as exc:
        raise StorageError(f"truncated key: {exc}") from None
    if offset != len(buffer):
        raise StorageError("trailing bytes after key")
    return value


def _decode_key_part(buffer: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(buffer):
        raise StorageError("truncated key")
    tag = buffer[offset]
    if tag == _TAG_NONE:
        return None, offset + 1
    if tag == _TAG_TRUE:
        return True, offset + 1
    if tag == _TAG_FALSE:
        return False, offset + 1
    if tag == _TAG_INT_POS:
        value, end = _decode_unsigned(buffer, offset + 1)
        return value, end
    if tag == _TAG_INT_NEG:
        # Find the inverted length to know how far to invert back.
        inverted_len = _invert(buffer[offset + 1 : offset + 3])
        (length,) = struct.unpack(">H", inverted_len)
        end = offset + 3 + length
        restored = _invert(buffer[offset + 1 : end])
        value, _ = _decode_unsigned(restored, 0)
        return -value, end
    if tag in (_TAG_STR, _TAG_BYTES):
        raw, end = _decode_escaped(buffer, offset + 1)
        return (raw.decode("utf-8") if tag == _TAG_STR else raw), end
    if tag == _TAG_TUPLE_START:
        offset += 1
        elements: List[Any] = []
        while offset < len(buffer) and buffer[offset] != _TUPLE_END:
            element, offset = _decode_key_part(buffer, offset)
            elements.append(element)
        if offset >= len(buffer):
            raise StorageError("unterminated tuple key")
        return tuple(elements), offset + 1
    raise StorageError(f"unknown key tag {tag}")


def _decode_escaped(buffer: bytes, offset: int) -> Tuple[bytes, int]:
    parts: List[int] = []
    index = offset
    while index < len(buffer) - 1:
        if buffer[index] == 0x00:
            if buffer[index + 1] == 0x00:
                return bytes(parts), index + 2
            if buffer[index + 1] == 0xFF:
                parts.append(0x00)
                index += 2
                continue
            raise StorageError("bad escape in string key")
        parts.append(buffer[index])
        index += 1
    raise StorageError("unterminated string key")


# ----------------------------------------------------------------------
# Compact (non-comparable) value encoding
# ----------------------------------------------------------------------

_VTAG_NONE = 0
_VTAG_INT = 1
_VTAG_STR = 2
_VTAG_BYTES = 3
_VTAG_BOOL = 4
_VTAG_TUPLE = 5
_VTAG_FLOAT = 6


def encode_value(value: Any) -> bytes:
    """Tagged compact encoding for record payloads."""
    if value is None:
        return bytes([_VTAG_NONE])
    if isinstance(value, bool):
        return bytes([_VTAG_BOOL, 1 if value else 0])
    if isinstance(value, int):
        sign = 1 if value < 0 else 0
        magnitude = -value if sign else value
        raw = magnitude.to_bytes(max(1, (magnitude.bit_length() + 7) // 8), "big")
        return bytes([_VTAG_INT, sign]) + struct.pack(">I", len(raw)) + raw
    if isinstance(value, float):
        return bytes([_VTAG_FLOAT]) + struct.pack(">d", value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return bytes([_VTAG_STR]) + struct.pack(">I", len(raw)) + raw
    if isinstance(value, bytes):
        return bytes([_VTAG_BYTES]) + struct.pack(">I", len(value)) + value
    if isinstance(value, tuple):
        parts = [bytes([_VTAG_TUPLE]), struct.pack(">I", len(value))]
        for element in value:
            encoded = encode_value(element)
            parts.append(struct.pack(">I", len(encoded)))
            parts.append(encoded)
        return b"".join(parts)
    raise StorageError(f"unsupported value type {type(value).__name__}")


def decode_value(buffer: bytes) -> Any:
    """Decode one value; malformed or truncated input always raises
    :class:`~repro.errors.StorageError` with the failing offset (never
    a bare ``struct.error`` / ``IndexError`` / ``TypeError``)."""
    if not isinstance(buffer, (bytes, bytearray, memoryview)):
        raise StorageError(
            f"value buffer must be bytes, not {type(buffer).__name__}"
        )
    value, offset = _decode_value_at(buffer, 0)
    if offset != len(buffer):
        raise StorageError(
            f"trailing bytes after value (offset {offset} of {len(buffer)})"
        )
    return value


def _need(buffer: bytes, offset: int, count: int, what: str) -> None:
    if offset + count > len(buffer):
        raise StorageError(
            f"truncated value: need {count} byte(s) for {what} at offset "
            f"{offset}, have {len(buffer) - offset}"
        )


def _decode_value_at(buffer: bytes, offset: int) -> Tuple[Any, int]:
    _need(buffer, offset, 1, "tag")
    tag = buffer[offset]
    offset += 1
    if tag == _VTAG_NONE:
        return None, offset
    if tag == _VTAG_BOOL:
        _need(buffer, offset, 1, "bool")
        return bool(buffer[offset]), offset + 1
    if tag == _VTAG_INT:
        _need(buffer, offset, 5, "int header")
        sign = buffer[offset]
        (length,) = struct.unpack_from(">I", buffer, offset + 1)
        start = offset + 5
        _need(buffer, start, length, "int magnitude")
        magnitude = int.from_bytes(buffer[start : start + length], "big")
        return (-magnitude if sign else magnitude), start + length
    if tag == _VTAG_FLOAT:
        _need(buffer, offset, 8, "float")
        (value,) = struct.unpack_from(">d", buffer, offset)
        return value, offset + 8
    if tag in (_VTAG_STR, _VTAG_BYTES):
        _need(buffer, offset, 4, "length")
        (length,) = struct.unpack_from(">I", buffer, offset)
        start = offset + 4
        _need(buffer, start, length, "string/bytes body")
        raw = bytes(buffer[start : start + length])
        if tag == _VTAG_BYTES:
            return raw, start + length
        try:
            return raw.decode("utf-8"), start + length
        except UnicodeDecodeError as exc:
            raise StorageError(
                f"invalid UTF-8 in string value at offset {start}: {exc}"
            ) from None
    if tag == _VTAG_TUPLE:
        _need(buffer, offset, 4, "tuple count")
        (count,) = struct.unpack_from(">I", buffer, offset)
        offset += 4
        elements: List[Any] = []
        for index in range(count):
            _need(buffer, offset, 4, f"tuple element {index} length")
            (length,) = struct.unpack_from(">I", buffer, offset)
            offset += 4
            _need(buffer, offset, length, f"tuple element {index} body")
            element, used = _decode_value_at(buffer[offset : offset + length], 0)
            if used != length:
                raise StorageError(
                    f"tuple element {index} at offset {offset} decodes to "
                    f"{used} byte(s) but claims {length}"
                )
            elements.append(element)
            offset += length
        return tuple(elements), offset
    raise StorageError(f"unknown value tag {tag} at offset {offset - 1}")
