"""Position/depth labeling (Zhang et al. [11] style).

A node is labeled *(position, depth)* where *position* is its preorder
rank. The pair alone cannot decide descendant-vs-following: one must
discover where the candidate ancestor's subtree *ends*, which takes an
index probe (find the next position at the same-or-smaller depth).
The baseline exists to quantify that dependence — it is the weakest
scheme in the comparison and every structural query charges probes.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Tuple

from repro.baselines.base import RebuildOnUpdateLabeling
from repro.core.labels import Relation
from repro.core.scheme import NumberingScheme
from repro.errors import NoParentError, UnknownLabelError
from repro.xmltree.tree import XmlTree

PosDepthLabel = Tuple[int, int]  # (preorder position, depth)


class PosDepthLabeling(RebuildOnUpdateLabeling[PosDepthLabel]):
    """(position, depth) labels for every node of a tree."""

    scheme_name = "posdepth"
    parent_needs_index = True

    def __init__(self, tree: XmlTree):
        self.index_probes = 0
        self._by_position: List[PosDepthLabel] = []
        super().__init__(tree)

    def _assign(self) -> Dict[int, PosDepthLabel]:
        labels: Dict[int, PosDepthLabel] = {}
        stack = [(self.tree.root, 0)]
        position = 0
        ordered: List[PosDepthLabel] = []
        while stack:
            node, depth = stack.pop()
            position += 1
            label = (position, depth)
            labels[node.node_id] = label
            ordered.append(label)
            for child in reversed(node.children):
                stack.append((child, depth + 1))
        self._by_position = sorted(ordered)
        return labels

    def _position_index(self, label: PosDepthLabel) -> int:
        index = bisect_left(self._by_position, label)
        if index >= len(self._by_position) or self._by_position[index] != label:
            raise UnknownLabelError(f"label {label!r} names no real node")
        return index

    def _subtree_end(self, label: PosDepthLabel) -> int:
        """Last position inside the label's subtree, via a forward scan
        (counted): the subtree ends just before the next node whose
        depth is <= ours."""
        index = self._position_index(label)
        depth = label[1]
        for probe in range(index + 1, len(self._by_position)):
            self.index_probes += 1
            if self._by_position[probe][1] <= depth:
                return self._by_position[probe][0] - 1
        return self._by_position[-1][0]

    # -- structure from labels -------------------------------------------
    def parent_label(self, label: PosDepthLabel) -> PosDepthLabel:
        """Nearest preceding position at depth-1, via a backward scan."""
        position, depth = label
        if depth == 0:
            raise NoParentError("the root has no parent")
        index = self._position_index(label)
        for probe in range(index - 1, -1, -1):
            self.index_probes += 1
            if self._by_position[probe][1] == depth - 1:
                return self._by_position[probe]
        raise NoParentError("no parent found (inconsistent index)")

    def relation(self, first: PosDepthLabel, second: PosDepthLabel) -> Relation:
        if first == second:
            return Relation.SELF
        if first[0] < second[0]:
            if first[1] < second[1] and second[0] <= self._subtree_end(first):
                return Relation.ANCESTOR
            return Relation.PRECEDING
        if second[1] < first[1] and first[0] <= self._subtree_end(second):
            return Relation.DESCENDANT
        return Relation.FOLLOWING

    def label_bits(self, label: PosDepthLabel) -> int:
        return max(1, label[0].bit_length()) + max(1, label[1].bit_length())


class PosDepthScheme(NumberingScheme):
    """Factory for position/depth labeling."""

    name = "posdepth"

    def build(self, tree: XmlTree) -> PosDepthLabeling:
        return PosDepthLabeling(tree)
