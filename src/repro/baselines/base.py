"""Shared machinery for the comparison schemes.

The baselines (Dewey, pre/post, region, position/depth) all relabel by
*re-running their canonical assignment* after a structural change —
which is precisely their published update semantics: none of them has
a localisation mechanism, so the relabel scope is whatever the diff
says. :class:`RebuildOnUpdateLabeling` centralises that pattern.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Dict, Generic, TypeVar

from repro.core.scheme import Labeling
from repro.core.update import RelabelReport, diff_snapshots
from repro.errors import UnknownLabelError
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree

LabelT = TypeVar("LabelT")


class RebuildOnUpdateLabeling(Labeling[LabelT], Generic[LabelT]):
    """A labeling whose update semantics are "re-assign and diff"."""

    def __init__(self, tree: XmlTree):
        super().__init__(tree)
        self._label_by_node: Dict[int, LabelT] = {}
        self._node_by_label: Dict[LabelT, XmlNode] = {}
        self._reassign()

    @abstractmethod
    def _assign(self) -> Dict[int, LabelT]:
        """Compute the canonical node_id → label map for the current tree."""

    def _reassign(self) -> None:
        self._label_by_node = self._assign()
        self._node_by_label = {}
        for node in self.tree.preorder():
            self._node_by_label[self._label_by_node[node.node_id]] = node
        self.bump_generation()

    # -- lookups --------------------------------------------------------
    def label_of(self, node: XmlNode) -> LabelT:
        try:
            return self._label_by_node[node.node_id]
        except KeyError:
            raise UnknownLabelError(f"node {node!r} is not labeled") from None

    def node_of(self, label: LabelT) -> XmlNode:
        try:
            return self._node_by_label[label]
        except KeyError:
            raise UnknownLabelError(f"label {label!r} names no real node") from None

    def exists(self, label: LabelT) -> bool:
        return label in self._node_by_label

    def snapshot(self) -> Dict[int, LabelT]:
        return dict(self._label_by_node)

    # -- update ----------------------------------------------------------
    def insert(self, parent: XmlNode, position: int, node: XmlNode) -> RelabelReport:
        before = self.snapshot()
        self.tree.insert_node(parent, position, node)
        self._reassign()
        return RelabelReport(
            scheme=self.scheme_name,
            operation="insert",
            changed=diff_snapshots(before, self._label_by_node),
            inserted_count=node.subtree_size(),
            surviving_nodes=len(before),
        )

    def delete(self, node: XmlNode) -> RelabelReport:
        before = self.snapshot()
        removed = self.tree.delete_subtree(node)
        self._reassign()
        return RelabelReport(
            scheme=self.scheme_name,
            operation="delete",
            changed=diff_snapshots(before, self._label_by_node),
            deleted_count=len(removed),
            surviving_nodes=len(before) - len(removed),
        )
