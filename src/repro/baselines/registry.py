"""Scheme registry: every numbering scheme under one roof.

Benchmarks and tests sweep schemes by name; :func:`all_schemes` and
:func:`get_scheme` centralise construction with sensible defaults.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.baselines.dewey import DeweyScheme
from repro.baselines.ordpath import OrdpathScheme
from repro.baselines.packed import PackedScheme
from repro.baselines.posdepth import PosDepthScheme
from repro.baselines.prepost import PrePostScheme
from repro.baselines.region import RegionScheme
from repro.core.scheme import (
    MultiRuidScheme,
    NumberingScheme,
    Ruid2Scheme,
    UidScheme,
)

_FACTORIES: Dict[str, Callable[[], NumberingScheme]] = {
    "uid": UidScheme,
    "ruid2": Ruid2Scheme,
    "ruid-multi": MultiRuidScheme,
    "dewey": DeweyScheme,
    "ordpath": OrdpathScheme,
    "prepost": PrePostScheme,
    "region": RegionScheme,
    "posdepth": PosDepthScheme,
    "packed": PackedScheme,
}

#: schemes that support structural updates through the uniform API
UPDATABLE = (
    "uid", "ruid2", "dewey", "ordpath", "prepost", "region", "posdepth", "packed",
)

#: schemes whose parent computation is pure label arithmetic
ARITHMETIC_PARENT = ("uid", "ruid2", "ruid-multi", "dewey", "ordpath")


def scheme_names() -> List[str]:
    """All registered scheme names, stable order."""
    return list(_FACTORIES)


def get_scheme(name: str, **options) -> NumberingScheme:
    """Construct a scheme by name, passing *options* to its factory."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(_FACTORIES)
        raise KeyError(f"unknown scheme {name!r}; known: {known}") from None
    return factory(**options)


def all_schemes(**per_scheme_options) -> List[NumberingScheme]:
    """One instance of every scheme.

    ``per_scheme_options`` maps scheme name → kwargs dict, e.g.
    ``all_schemes(ruid2={"max_area_size": 32})``.
    """
    return [
        get_scheme(name, **per_scheme_options.get(name, {}))
        for name in _FACTORIES
    ]
