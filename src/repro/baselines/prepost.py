"""Pre/post-order labeling (Dietz [3]).

A node is labeled *(preorder rank, postorder rank)*; ancestry is the
plane-dominance test ``pre(a) < pre(b) and post(a) > post(b)``. The
scheme decides every structural relation from two comparisons — but,
unlike UID/rUID/Dewey, the *parent* is **not** computable from the
label alone: one must search for the tightest dominating pair, which
requires an index over the labels. That asymmetry is exactly the
motivation the paper gives for preferring UID-style schemes (§1, §6).

Update semantics: any insertion shifts every preorder rank after the
insertion point and every postorder rank after the subtree — a global
relabel of, on average, half the document.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Tuple

from repro.baselines.base import RebuildOnUpdateLabeling
from repro.core.labels import Relation
from repro.core.scheme import NumberingScheme
from repro.errors import NoParentError, UnknownLabelError
from repro.xmltree.tree import XmlTree

PrePostLabel = Tuple[int, int]


class PrePostLabeling(RebuildOnUpdateLabeling[PrePostLabel]):
    """(pre, post) labels for every node of a tree."""

    scheme_name = "prepost"
    parent_needs_index = True

    def __init__(self, tree: XmlTree):
        #: counts index probes made to answer parent queries — the
        #: "extra lookups" the paper's in-memory argument is about
        self.index_probes = 0
        self._by_pre: List[PrePostLabel] = []
        super().__init__(tree)

    def _assign(self) -> Dict[int, PrePostLabel]:
        pre_rank: Dict[int, int] = {}
        for rank, node in enumerate(self.tree.preorder(), start=1):
            pre_rank[node.node_id] = rank
        labels: Dict[int, PrePostLabel] = {}
        for rank, node in enumerate(self.tree.postorder(), start=1):
            labels[node.node_id] = (pre_rank[node.node_id], rank)
        self._by_pre = sorted(labels.values())
        return labels

    # -- structure from labels -------------------------------------------
    def parent_label(self, label: PrePostLabel) -> PrePostLabel:
        """Tightest dominating label, found by an index search.

        The parent is the label with the largest preorder rank below
        ours among those whose postorder rank exceeds ours; scanning
        left from our position in the pre-sorted index finds it. Every
        step is counted in :attr:`index_probes`.
        """
        pre, post = label
        if pre == 1:
            raise NoParentError("the root has no parent")
        position = bisect_left(self._by_pre, label)
        if position >= len(self._by_pre) or self._by_pre[position] != label:
            raise UnknownLabelError(f"label {label!r} names no real node")
        for index in range(position - 1, -1, -1):
            self.index_probes += 1
            candidate = self._by_pre[index]
            if candidate[1] > post:
                return candidate
        raise NoParentError("no dominating label found")

    def relation(self, first: PrePostLabel, second: PrePostLabel) -> Relation:
        if first == second:
            return Relation.SELF
        if first[0] < second[0]:
            return Relation.ANCESTOR if first[1] > second[1] else Relation.PRECEDING
        return Relation.DESCENDANT if first[1] < second[1] else Relation.FOLLOWING

    def label_bits(self, label: PrePostLabel) -> int:
        return max(1, label[0].bit_length()) + max(1, label[1].bit_length())


class PrePostScheme(NumberingScheme):
    """Factory for Dietz pre/post labeling."""

    name = "prepost"

    def build(self, tree: XmlTree) -> PrePostLabeling:
        return PrePostLabeling(tree)
