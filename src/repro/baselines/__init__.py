"""Comparison numbering schemes: Dewey, pre/post, region, position/depth,
and the bit-packed interval scheme."""

from repro.baselines.dewey import DeweyLabel, DeweyLabeling, DeweyScheme
from repro.baselines.ordpath import OrdpathLabel, OrdpathLabeling, OrdpathScheme
from repro.baselines.packed import PackedLabeling, PackedLayout, PackedScheme
from repro.baselines.posdepth import PosDepthLabel, PosDepthLabeling, PosDepthScheme
from repro.baselines.prepost import PrePostLabel, PrePostLabeling, PrePostScheme
from repro.baselines.region import RegionLabel, RegionLabeling, RegionScheme
from repro.baselines.registry import (
    ARITHMETIC_PARENT,
    UPDATABLE,
    all_schemes,
    get_scheme,
    scheme_names,
)

__all__ = [
    "ARITHMETIC_PARENT",
    "DeweyLabel",
    "DeweyLabeling",
    "DeweyScheme",
    "OrdpathLabel",
    "OrdpathLabeling",
    "OrdpathScheme",
    "PackedLabeling",
    "PackedLayout",
    "PackedScheme",
    "PosDepthLabel",
    "PosDepthLabeling",
    "PosDepthScheme",
    "PrePostLabel",
    "PrePostLabeling",
    "PrePostScheme",
    "RegionLabel",
    "RegionLabeling",
    "RegionScheme",
    "UPDATABLE",
    "all_schemes",
    "get_scheme",
    "scheme_names",
]
