"""Region (extended-preorder) labeling — Li & Moon [6].

A node is labeled *(start, end, level)* where the interval
``[start, end]`` strictly contains the intervals of its descendants.
Assignments reserve *gaps* (the "extended preorder" idea): with gap
``g``, a subtree of ``s`` nodes occupies ``2·s·g`` numbers, leaving
room to absorb insertions without touching existing labels.

Update semantics: an insertion first tries to fit the new subtree into
the free window between its neighbours' intervals — zero relabels if it
fits; when the window is exhausted, the whole document is re-assigned
(the scheme's well-known degradation). Deletions simply abandon the
interval (no relabel).

Like pre/post, the parent is not computable from the label alone; a
search over the interval index is needed and is counted.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, List, Tuple

from repro.baselines.base import RebuildOnUpdateLabeling
from repro.core.labels import Relation
from repro.core.scheme import NumberingScheme
from repro.core.update import RelabelReport, diff_snapshots
from repro.errors import NoParentError, UnknownLabelError
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree

RegionLabel = Tuple[int, int, int]  # (start, end, level)


class RegionLabeling(RebuildOnUpdateLabeling[RegionLabel]):
    """Gapped (start, end, level) labels for every node of a tree."""

    scheme_name = "region"
    parent_needs_index = True

    def __init__(self, tree: XmlTree, gap: int = 8):
        if gap < 1:
            raise ValueError(f"gap must be >= 1, got {gap}")
        self.gap = gap
        self.index_probes = 0
        self._starts: List[int] = []  # sorted starts, parallel to _by_start
        self._by_start: List[RegionLabel] = []
        super().__init__(tree)

    def _assign(self) -> Dict[int, RegionLabel]:
        labels: Dict[int, RegionLabel] = {}
        counter = 1

        # Iterative DFS with explicit post-visit to set `end`.
        stack: List[Tuple[XmlNode, int, bool]] = [(self.tree.root, 0, False)]
        pending_start: Dict[int, int] = {}
        while stack:
            node, level, expanded = stack.pop()
            if expanded:
                labels[node.node_id] = (pending_start[node.node_id], counter, level)
                counter += self.gap
            else:
                pending_start[node.node_id] = counter
                counter += self.gap
                stack.append((node, level, True))
                for child in reversed(node.children):
                    stack.append((child, level + 1, False))
        self._rebuild_index(labels)
        return labels

    def _rebuild_index(self, labels: Dict[int, RegionLabel]) -> None:
        self._by_start = sorted(labels.values())
        self._starts = [label[0] for label in self._by_start]

    # -- structure from labels -------------------------------------------
    def parent_label(self, label: RegionLabel) -> RegionLabel:
        """Tightest containing interval, via an index scan (counted)."""
        start, end, level = label
        position = bisect_left(self._starts, start)
        if position >= len(self._starts) or self._by_start[position] != label:
            raise UnknownLabelError(f"label {label!r} names no real node")
        for index in range(position - 1, -1, -1):
            self.index_probes += 1
            candidate = self._by_start[index]
            if candidate[1] > end:
                return candidate
        raise NoParentError("the root interval has no parent")

    def relation(self, first: RegionLabel, second: RegionLabel) -> Relation:
        if first == second:
            return Relation.SELF
        if first[0] < second[0]:
            return Relation.ANCESTOR if first[1] > second[1] else Relation.PRECEDING
        return Relation.DESCENDANT if first[1] < second[1] else Relation.FOLLOWING

    def label_bits(self, label: RegionLabel) -> int:
        start, end, level = label
        return (
            max(1, start.bit_length())
            + max(1, end.bit_length())
            + max(1, level.bit_length())
        )

    # -- update ------------------------------------------------------------
    def insert(self, parent: XmlNode, position: int, node: XmlNode) -> RelabelReport:
        before = self.snapshot()
        window = self._free_window(parent, position)
        self.tree.insert_node(parent, position, node)
        size = node.subtree_size()
        low, high = window
        capacity = high - low - 1
        if capacity >= 2 * size:
            # In-place: pack the new subtree into the window, spreading
            # the remaining slack as fresh gaps.
            spacing = max(1, capacity // (2 * size))
            parent_level = self._label_by_node[parent.node_id][2]
            self._assign_subtree(node, low, spacing, parent_level + 1)
            # no relabels, but document order changed: stamped caches
            # (rank index, columnar) must not survive this insert
            self.bump_generation()
            overflow = False
            changed: List = []
        else:
            self._reassign()
            overflow = True
            changed = diff_snapshots(before, self._label_by_node)
        return RelabelReport(
            scheme=self.scheme_name,
            operation="insert",
            changed=changed,
            inserted_count=node.subtree_size(),
            overflow=overflow,
            surviving_nodes=len(before),
        )

    def _free_window(self, parent: XmlNode, position: int) -> Tuple[int, int]:
        """Unused number range between the insertion point's neighbours."""
        parent_label = self._label_by_node[parent.node_id]
        if position > 0:
            low = self._label_by_node[parent.children[position - 1].node_id][1]
        else:
            low = parent_label[0]
        if position < len(parent.children):
            high = self._label_by_node[parent.children[position].node_id][0]
        else:
            high = parent_label[1]
        return low, high

    def _assign_subtree(self, node: XmlNode, low: int, spacing: int, level: int) -> None:
        counter = low + spacing
        stack: List[Tuple[XmlNode, int, bool]] = [(node, level, False)]
        pending_start: Dict[int, int] = {}
        new_labels: Dict[int, RegionLabel] = {}
        while stack:
            current, current_level, expanded = stack.pop()
            if expanded:
                label = (pending_start[current.node_id], counter, current_level)
                counter += spacing
                new_labels[current.node_id] = label
            else:
                pending_start[current.node_id] = counter
                counter += spacing
                stack.append((current, current_level, True))
                for child in reversed(current.children):
                    stack.append((child, current_level + 1, False))
        for node_id, label in new_labels.items():
            self._label_by_node[node_id] = label
        for subtree_node in node.iter_subtree():
            self._node_by_label[self._label_by_node[subtree_node.node_id]] = subtree_node
        for label in new_labels.values():
            insort(self._by_start, label)
        self._starts = [entry[0] for entry in self._by_start]

    def delete(self, node: XmlNode) -> RelabelReport:
        """Deletion abandons the intervals: zero relabels."""
        before = self.snapshot()
        removed = self.tree.delete_subtree(node)
        for removed_node in removed:
            label = self._label_by_node.pop(removed_node.node_id)
            self._node_by_label.pop(label, None)
            index = bisect_left(self._starts, label[0])
            if index < len(self._by_start) and self._by_start[index] == label:
                del self._by_start[index]
                del self._starts[index]
        # abandoned intervals still shrink the document: invalidate
        # generation-stamped caches
        self.bump_generation()
        return RelabelReport(
            scheme=self.scheme_name,
            operation="delete",
            changed=[],
            deleted_count=len(removed),
            surviving_nodes=len(before) - len(removed),
        )


class RegionScheme(NumberingScheme):
    """Factory for gapped region labeling."""

    name = "region"

    def __init__(self, gap: int = 8):
        self.gap = gap

    def build(self, tree: XmlTree) -> RegionLabeling:
        return RegionLabeling(tree, gap=self.gap)
