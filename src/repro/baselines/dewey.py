"""Dewey-order labeling (prefix paths of child ordinals).

Dewey labels are the classical prefix scheme the paper's related work
alludes to: a node's label is the sequence of 1-based child positions
on its root path (the root is the empty tuple). Ancestry is prefix
containment; the parent is the label minus its last component — like
UID/rUID, no index is needed for parent computation.

Update semantics: inserting at position *j* shifts the ordinals of the
right siblings, which changes the labels of their *entire subtrees*
(every descendant label carries the shifted component as a prefix
element).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.baselines.base import RebuildOnUpdateLabeling
from repro.core.labels import Relation
from repro.core.scheme import NumberingScheme
from repro.errors import NoParentError
from repro.xmltree.tree import XmlTree

DeweyLabel = Tuple[int, ...]


class DeweyLabeling(RebuildOnUpdateLabeling[DeweyLabel]):
    """Dewey labels for every node of a tree."""

    scheme_name = "dewey"
    parent_needs_index = False

    def _assign(self) -> Dict[int, DeweyLabel]:
        labels: Dict[int, DeweyLabel] = {self.tree.root.node_id: ()}
        stack = [(self.tree.root, ())]
        while stack:
            node, path = stack.pop()
            for ordinal, child in enumerate(node.children, start=1):
                child_path = path + (ordinal,)
                labels[child.node_id] = child_path
                stack.append((child, child_path))
        return labels

    # -- structure from labels -------------------------------------------
    def parent_label(self, label: DeweyLabel) -> DeweyLabel:
        if not label:
            raise NoParentError("the root (empty Dewey label) has no parent")
        return label[:-1]

    def relation(self, first: DeweyLabel, second: DeweyLabel) -> Relation:
        if first == second:
            return Relation.SELF
        shorter = min(len(first), len(second))
        if first[:shorter] == second[:shorter]:
            return Relation.ANCESTOR if len(first) < len(second) else Relation.DESCENDANT
        return Relation.PRECEDING if first < second else Relation.FOLLOWING

    def label_bits(self, label: DeweyLabel) -> int:
        """Sum of component widths plus one separator bit per component
        (a simple UTF-8-of-ordinals storage model)."""
        if not label:
            return 1
        return sum(max(1, component.bit_length()) + 1 for component in label)


class DeweyScheme(NumberingScheme):
    """Factory for Dewey-order labeling."""

    name = "dewey"

    def build(self, tree: XmlTree) -> DeweyLabeling:
        return DeweyLabeling(tree)
