"""ORDPATH-style careted Dewey labeling (extension baseline).

ORDPATH (O'Neil et al., SIGMOD 2004) postdates the paper but is the
canonical answer to the same update problem rUID attacks, from the
opposite direction: instead of localising relabeling, it *never*
relabels — insertions grow new labels into the gaps using even
"caret" components that do not contribute conceptual depth.

Included here as an extension baseline so the E4/E5 experiments show
the full trade-off space: rUID bounds update scope at fixed label
width; ORDPATH has zero update scope but unbounded label growth under
adversarial insertion.

Label model
-----------
A label is a tuple of integers. Fresh children receive odd ordinals
(1, 3, 5, ...). An insertion between adjacent labels manufactures a
suffix strictly between them, ending in an odd component, possibly
passing through even carets (e.g. between ``(1,)`` and ``(3,)`` comes
``(2, 1)``). Valid labels always end in an odd component, which makes
plain tuple-prefix the ancestor test and plain tuple comparison the
document order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.labels import Relation
from repro.core.scheme import Labeling, NumberingScheme
from repro.core.update import RelabelReport
from repro.errors import NoParentError, UnknownLabelError
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree

OrdpathLabel = Tuple[int, ...]


def _between(
    low: Optional[OrdpathLabel], high: Optional[OrdpathLabel]
) -> OrdpathLabel:
    """A suffix strictly between *low* and *high* ending in an odd
    component. ``None`` bounds are open ends."""
    if low is None and high is None:
        return (1,)
    if low is None:
        first = high[0]
        odd = first - 2 if first % 2 else first - 1
        return (odd,)
    if high is None:
        first = low[0]
        odd = first + 2 if first % 2 else first + 1
        return (odd,)
    first_low, first_high = low[0], high[0]
    if first_low == first_high:
        # Identical heads: the bounds continue (a valid label is never
        # a proper prefix of its sibling), recurse on the tails.
        return (first_low,) + _between(low[1:], high[1:])
    # Any odd strictly between the heads?
    candidate = first_low + (2 if first_low % 2 else 1)
    if candidate < first_high:
        return (candidate,)
    if first_high - first_low == 2:
        # Adjacent odds (e.g. 5 and 7): open a caret between them.
        return (first_low + 1, 1)
    # Heads differ by one: dive under whichever bound continues.
    if len(low) > 1:
        return (first_low,) + _between(low[1:], None)
    # low == (odd,) and high == (odd+1, ...): slot under the caret.
    return (first_high,) + _between(None, high[1:])


def parent_of(label: OrdpathLabel) -> OrdpathLabel:
    """Strip the final odd component and any carets guarding it."""
    if not label:
        raise NoParentError("the root (empty ORDPATH label) has no parent")
    index = len(label) - 1  # final component (odd)
    index -= 1
    while index >= 0 and label[index] % 2 == 0:
        index -= 1
    return label[: index + 1]


class OrdpathLabeling(Labeling[OrdpathLabel]):
    """Careted Dewey labels with zero-relabel insertion."""

    scheme_name = "ordpath"
    parent_needs_index = False

    def __init__(self, tree: XmlTree):
        super().__init__(tree)
        self._label_by_node: Dict[int, OrdpathLabel] = {}
        self._node_by_label: Dict[OrdpathLabel, XmlNode] = {}
        self._assign_fresh(tree.root, ())

    def _assign_fresh(self, node: XmlNode, label: OrdpathLabel) -> None:
        """Assign odd ordinals below *node* (initial load / new subtrees)."""
        stack: List[Tuple[XmlNode, OrdpathLabel]] = [(node, label)]
        while stack:
            current, current_label = stack.pop()
            self._put(current, current_label)
            for ordinal, child in enumerate(current.children):
                stack.append((child, current_label + (2 * ordinal + 1,)))

    def _put(self, node: XmlNode, label: OrdpathLabel) -> None:
        self._label_by_node[node.node_id] = label
        self._node_by_label[label] = node

    # -- lookups --------------------------------------------------------
    def label_of(self, node: XmlNode) -> OrdpathLabel:
        try:
            return self._label_by_node[node.node_id]
        except KeyError:
            raise UnknownLabelError(f"node {node!r} is not labeled") from None

    def node_of(self, label: OrdpathLabel) -> XmlNode:
        try:
            return self._node_by_label[label]
        except KeyError:
            raise UnknownLabelError(f"label {label!r} names no real node") from None

    # -- structure from labels -------------------------------------------
    def parent_label(self, label: OrdpathLabel) -> OrdpathLabel:
        return parent_of(label)

    def relation(self, first: OrdpathLabel, second: OrdpathLabel) -> Relation:
        if first == second:
            return Relation.SELF
        shorter = min(len(first), len(second))
        if first[:shorter] == second[:shorter]:
            return Relation.ANCESTOR if len(first) < len(second) else Relation.DESCENDANT
        return Relation.PRECEDING if first < second else Relation.FOLLOWING

    def label_bits(self, label: OrdpathLabel) -> int:
        if not label:
            return 1
        return sum(max(1, abs(c).bit_length()) + 2 for c in label)

    # -- update ------------------------------------------------------------
    def snapshot(self) -> Dict[int, OrdpathLabel]:
        return dict(self._label_by_node)

    def insert(self, parent: XmlNode, position: int, node: XmlNode) -> RelabelReport:
        before = len(self._label_by_node)
        parent_label = self.label_of(parent)
        left: Optional[OrdpathLabel] = None
        right: Optional[OrdpathLabel] = None
        if position > 0:
            left = self.label_of(parent.children[position - 1])
        if position < len(parent.children):
            right = self.label_of(parent.children[position])
        self.tree.insert_node(parent, position, node)
        prefix = len(parent_label)
        suffix = _between(
            left[prefix:] if left is not None else None,
            right[prefix:] if right is not None else None,
        )
        new_label = parent_label + suffix
        self._put(node, new_label)
        for ordinal, child in enumerate(node.children):
            self._assign_fresh(child, new_label + (2 * ordinal + 1,))
        self.bump_generation()
        return RelabelReport(
            scheme=self.scheme_name,
            operation="insert",
            changed=[],  # ORDPATH never relabels
            inserted_count=node.subtree_size(),
            surviving_nodes=before,
        )

    def delete(self, node: XmlNode) -> RelabelReport:
        before = len(self._label_by_node)
        removed = self.tree.delete_subtree(node)
        for gone in removed:
            label = self._label_by_node.pop(gone.node_id)
            self._node_by_label.pop(label, None)
        self.bump_generation()
        return RelabelReport(
            scheme=self.scheme_name,
            operation="delete",
            changed=[],
            deleted_count=len(removed),
            surviving_nodes=before - len(removed),
        )


class OrdpathScheme(NumberingScheme):
    """Factory for ORDPATH-style labeling."""

    name = "ordpath"

    def build(self, tree: XmlTree) -> OrdpathLabeling:
        return OrdpathLabeling(tree)
