"""Bit-packed interval labeling: one machine integer per node.

Ninth scheme in the registry. Following the compact ancestry-labeling
line (Dahlgaard et al.'s simple ``lg n + O(1)``-bit interval scheme),
a label is a single Python int with three fixed-width fields::

    [ preorder rank | subtree-end rank | level ]
      rank_bits       rank_bits          level_bits

The rank occupies the *topmost* field, so plain integer order on
labels **is** document order — ``doc_compare`` is one ``<``. Ancestry
is two compares with no index, no tuple allocation, and no relabeling
on read: ``a`` is an ancestor of ``d`` iff
``rank(a) < rank(d) <= end(a)``, all extracted by shifts and masks.

Field widths are chosen per document by :meth:`PackedLayout.for_document`
(defaults 21/21/8 → 50-bit labels, inside one 64-bit word for documents
up to 2M nodes and depth 256). The overflow rule is *widen, never
spill*: when a reassignment finds the document has outgrown a field,
the next layout grows that field and labels stay single ints — there
is no variable-length fallback path to branch on.

Updates follow the published semantics of interval schemes: any
structural change shifts ranks globally, so the scheme relabels by
re-running the canonical assignment (:class:`RebuildOnUpdateLabeling`).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import RebuildOnUpdateLabeling
from repro.core.labels import Relation
from repro.core.rankindex import RankIndex
from repro.core.scheme import NumberingScheme
from repro.errors import NoParentError, NumberingError, UnknownLabelError
from repro.xmltree.tree import XmlTree

#: default field widths: 2M nodes, depth 256, 50-bit labels
DEFAULT_RANK_BITS = 21
DEFAULT_LEVEL_BITS = 8


class PackedLayout:
    """Field widths and the shift/mask arithmetic for one layout.

    Immutable; a labeling swaps in a wider layout at reassignment time
    when the document outgrows the current one.
    """

    __slots__ = (
        "rank_bits",
        "level_bits",
        "rank_shift",
        "end_shift",
        "rank_mask",
        "level_mask",
        "total_bits",
    )

    def __init__(self, rank_bits: int = DEFAULT_RANK_BITS,
                 level_bits: int = DEFAULT_LEVEL_BITS):
        if rank_bits < 1 or level_bits < 1:
            raise NumberingError("packed fields need at least one bit each")
        self.rank_bits = rank_bits
        self.level_bits = level_bits
        self.end_shift = level_bits
        self.rank_shift = level_bits + rank_bits
        self.rank_mask = (1 << rank_bits) - 1
        self.level_mask = (1 << level_bits) - 1
        self.total_bits = 2 * rank_bits + level_bits

    @classmethod
    def for_document(cls, size: int, max_level: int,
                     min_rank_bits: int = DEFAULT_RANK_BITS,
                     min_level_bits: int = DEFAULT_LEVEL_BITS) -> "PackedLayout":
        """Widen-on-overflow: the smallest layout at least as wide as
        the floors that fits ``size`` nodes and depth ``max_level``."""
        rank_bits = max(min_rank_bits, max(1, (size - 1).bit_length() if size > 1 else 1))
        level_bits = max(min_level_bits, max(1, max_level.bit_length()))
        return cls(rank_bits=rank_bits, level_bits=level_bits)

    def pack(self, rank: int, end: int, level: int) -> int:
        if rank > self.rank_mask or end > self.rank_mask or level > self.level_mask:
            raise NumberingError(
                f"packed field overflow: rank={rank} end={end} level={level} "
                f"exceed layout {self.rank_bits}/{self.rank_bits}/{self.level_bits}"
            )
        return (rank << self.rank_shift) | (end << self.end_shift) | level

    def unpack(self, label: int) -> Tuple[int, int, int]:
        return (
            label >> self.rank_shift,
            (label >> self.end_shift) & self.rank_mask,
            label & self.level_mask,
        )

    def rank_of(self, label: int) -> int:
        return label >> self.rank_shift

    def end_of(self, label: int) -> int:
        return (label >> self.end_shift) & self.rank_mask

    def level_of(self, label: int) -> int:
        return label & self.level_mask

    def __repr__(self) -> str:
        return f"<PackedLayout {self.rank_bits}/{self.rank_bits}/{self.level_bits}>"


class PackedLabeling(RebuildOnUpdateLabeling[int]):
    """[rank|end|level] single-int labels for every node of a tree."""

    scheme_name = "packed"
    # the parent is not a pure function of one label: like pre/post, it
    # needs the label table (served O(1) from the parent-rank column)
    parent_needs_index = True

    def __init__(self, tree: XmlTree,
                 rank_bits: int = DEFAULT_RANK_BITS,
                 level_bits: int = DEFAULT_LEVEL_BITS):
        self._min_rank_bits = rank_bits
        self._min_level_bits = level_bits
        self.layout = PackedLayout(rank_bits, level_bits)
        self._by_rank: List[int] = []
        self._parent_rank = array("q")
        super().__init__(tree)

    def _assign(self) -> Dict[int, int]:
        # Pass 1: one DFS (same order as RankIndex.build) collecting
        # rank, subtree end, level, and parent rank as plain ints.
        node_ids: List[int] = []
        ends = array("q")
        levels = array("q")
        parent_rank = array("q")
        max_level = 0
        counter = 0
        # Stack entries: (node, (parent_rank, level)) to enter,
        # (None, rank) to exit.
        stack = [(self.tree.root, (-1, 0))]
        while stack:
            node, info = stack.pop()
            if node is None:
                ends[info] = counter - 1
                continue
            prank, level = info
            rank = counter
            counter += 1
            node_ids.append(node.node_id)
            ends.append(0)
            levels.append(level)
            parent_rank.append(prank)
            if level > max_level:
                max_level = level
            stack.append((None, rank))
            child_info = (rank, level + 1)
            for child in reversed(node.children):
                stack.append((child, child_info))
        # Pass 2: choose the layout (widening past the floors if the
        # document demands it) and pack.
        layout = PackedLayout.for_document(
            counter, max_level, self._min_rank_bits, self._min_level_bits
        )
        pack = layout.pack
        by_rank: List[int] = [
            pack(rank, ends[rank], levels[rank]) for rank in range(counter)
        ]
        self.layout = layout
        self._by_rank = by_rank
        self._parent_rank = parent_rank
        return {node_id: by_rank[rank] for rank, node_id in enumerate(node_ids)}

    # -- structure from labels -------------------------------------------
    def _checked_rank(self, label: int) -> int:
        rank = label >> self.layout.rank_shift
        by_rank = self._by_rank
        if rank >= len(by_rank) or by_rank[rank] != label:
            raise UnknownLabelError(f"label {label!r} names no real node")
        return rank

    def parent_label(self, label: int) -> int:
        prank = self._parent_rank[self._checked_rank(label)]
        if prank < 0:
            raise NoParentError("the root has no parent")
        return self._by_rank[prank]

    def relation(self, first: int, second: int) -> Relation:
        layout = self.layout
        rank_shift = layout.rank_shift
        r1 = first >> rank_shift
        r2 = second >> rank_shift
        if r1 == r2:
            return Relation.SELF
        end_shift = layout.end_shift
        rank_mask = layout.rank_mask
        if r1 < r2:
            if r2 <= (first >> end_shift) & rank_mask:
                return Relation.ANCESTOR
            return Relation.PRECEDING
        if r1 <= (second >> end_shift) & rank_mask:
            return Relation.DESCENDANT
        return Relation.FOLLOWING

    def doc_compare(self, first: int, second: int) -> int:
        # rank is the top field, so label order is document order
        if first == second:
            return 0
        return -1 if first < second else 1

    # -- measurement ------------------------------------------------------
    def label_bits(self, label: int) -> int:
        return self.layout.total_bits

    def memory_bytes(self) -> int:
        """The parent-rank column — the auxiliary state that answers
        parent queries in O(1) (pre/post pays index searches instead)."""
        return len(self._parent_rank) * self._parent_rank.itemsize

    # -- fast-path interop -------------------------------------------------
    def rank_index(self) -> RankIndex:
        """Ranks are *in* the labels; no relabel-on-read, no DFS — the
        index dicts are filled by shift/mask over the label list."""
        index = self._rank_index
        generation = self.generation
        if index is None or index.generation != generation:
            layout = self.layout
            rank_shift = layout.rank_shift
            end_shift = layout.end_shift
            rank_mask = layout.rank_mask
            rank: Dict[int, int] = {}
            end: Dict[int, int] = {}
            for label in self._by_rank:
                rank[label] = label >> rank_shift
                end[label] = (label >> end_shift) & rank_mask
            index = RankIndex(rank, end, generation)
            self._rank_index = index
        return index


class PackedScheme(NumberingScheme):
    """Factory for the bit-packed interval labeling."""

    name = "packed"

    def __init__(self, rank_bits: Optional[int] = None,
                 level_bits: Optional[int] = None):
        self.rank_bits = rank_bits or DEFAULT_RANK_BITS
        self.level_bits = level_bits or DEFAULT_LEVEL_BITS

    def build(self, tree: XmlTree) -> PackedLabeling:
        return PackedLabeling(tree, rank_bits=self.rank_bits,
                              level_bits=self.level_bits)
