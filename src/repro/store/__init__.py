"""Unified node-access layer (docs/STORAGE_QUERY.md).

One protocol, three deployments: in-memory (live tree + rank index),
paged (shredded document through the buffer pool), and snapshot
(:class:`~repro.concurrent.snapshot.StructuralView`, which implements
the same protocol from its frozen maps).
"""

from repro.store.base import Label, NodeRecord, NodeStore, StoreStats
from repro.store.evaluator import StoreEvaluator
from repro.store.memory import MemoryNodeStore
from repro.store.paged import PagedNodeStore

__all__ = [
    "Label",
    "MemoryNodeStore",
    "NodeRecord",
    "NodeStore",
    "PagedNodeStore",
    "StoreEvaluator",
    "StoreStats",
]
