"""Unified node-access layer (docs/STORAGE_QUERY.md).

One protocol, four deployments: in-memory (live tree + rank index),
paged (shredded document through the buffer pool), snapshot
(:class:`~repro.concurrent.snapshot.StructuralView`, which implements
the same protocol from its frozen maps), and sqlite
(:class:`~repro.store.sqlite.SqliteNodeStore`, the restart-durable
XPath Accelerator shred with SQL axis pushdown).
"""

from repro.store.base import Label, NodeRecord, NodeStore, StoreStats
from repro.store.evaluator import StoreEvaluator
from repro.store.memory import MemoryNodeStore
from repro.store.paged import PagedNodeStore
from repro.store.sqlite import SqlAxisPushdown, SqliteNodeStore

__all__ = [
    "Label",
    "MemoryNodeStore",
    "NodeRecord",
    "NodeStore",
    "PagedNodeStore",
    "SqlAxisPushdown",
    "SqliteNodeStore",
    "StoreEvaluator",
    "StoreStats",
]
