"""NodeStore over a shredded document, read through the buffer pool.

The missing half of the paper's deployment story: §2.1 shreds the
document into a label-keyed node table, and §3.2 promises axes by
label arithmetic plus one fetch per node — but until this store, the
query stack could only evaluate over a fully materialised
:class:`~repro.xmltree.tree.XmlTree`. :class:`PagedNodeStore` binds
the two together: structure comes from a persisted **ranks table**
(the on-disk analogue of the rank index, with parent arithmetic
results frozen at shred time), records come from
:meth:`StoredDocument.fetch` — one primary-index descent per node —
and every byte moves through the pager's buffer pool, so a document
larger than the pool stays queryable and the pool traffic shows up in
``EXPLAIN ANALYZE`` as ``page_hits`` / ``page_misses``.

Layout of ``{name}__ranks`` (primary key: preorder rank):

====== ===== ==========================================================
column kind  contents
====== ===== ==========================================================
rank   int   preorder rank (the pk; rank order = document order)
label  any   flattened label key (what :func:`label_key` yields)
end    int   rank of the last node in this subtree
parent any   parent's label key, or None at the root
tag    str   element/attribute name (``#text`` etc. for the rest)
kind   str   :class:`NodeKind` value string
contrib any  string-value contribution (text of TEXT/ELEMENT rows)
attrs  any   sorted ((name, value), ...) pairs, or None
====== ===== ==========================================================

Secondary indexes on ``label`` (rank lookup), ``tag`` (candidate
enumeration) and ``parent`` (child scans). A meta row at rank −1
carries the generation and scheme name, so a store recovered from the
WAL knows what it serves without a labeling attached.

XmlNodes are materialised lazily, one canonical node per label, and
never wired into a live DOM: parents stay None, ``children`` stays
empty. Consumers navigate through the store, exactly as the protocol
demands. The node cache holds only labels a query has touched.

Structural queries are served from a **columnar sidecar**: the first
structural probe scans the ranks table once (through the buffer pool,
so the traffic is visible) into a
:class:`~repro.core.columnar.ColumnarIndex` — machine-packed
``array('q')`` rank/end/parent/tag columns instead of per-row tuple
caches. After that, rank lookups, descendant slices, children (by
sibling-chain arithmetic over the end column) and per-tag candidates
never touch a page again; only *values* (records, attributes, string
contributions) keep reading through the pool.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.columnar import ColumnarIndex
from repro.core.rankindex import RankIndex
from repro.errors import NoParentError, StorageError, UnknownLabelError
from repro.storage.database import StoredDocument, label_key
from repro.storage.table import Column, Table
from repro.store.base import Label, NodeRecord, NodeStore
from repro.xmltree.node import NodeKind, XmlNode

_RANK_COLUMNS = [
    Column("rank", "int"),
    Column("label", "any"),
    Column("end", "int"),
    Column("parent", "any"),
    Column("tag", "str"),
    Column("kind", "str"),
    Column("contrib", "any"),
    Column("attrs", "any"),
]

_META_RANK = -1
_META_KIND = "#meta"

#: bounded caches: ranks rows and child lists a query touches twice
_ROW_CACHE_LIMIT = 4096


class PagedNodeStore(NodeStore):
    """Query access to one :class:`StoredDocument` generation.

    Building requires the document's tree and labeling (the shred-time
    state); attaching to an existing ranks table — e.g. after crash
    recovery — requires neither.
    """

    store_kind = "paged"
    supports_batched = True

    __slots__ = (
        "document",
        "table_name",
        "io",
        "built",
        "ranks",
        "scheme_name",
        "columnar",
        "deadline",
        "_generation",
        "_row_cache",
        "_node_cache",
        "_label_by_id",
        "_order_by_id",
        "_tag_cache",
        "_element_labels",
        "_text_labels",
        "_comment_labels",
        "_structural_labels",
    )

    def __init__(self, document: StoredDocument, io_stats=None):
        super().__init__()
        self.document = document
        self.table_name = f"{document.name}__ranks"
        catalog = document.catalog
        self.io = io_stats if io_stats is not None else catalog.pager.stats
        self.built = False
        if catalog.has_table(self.table_name):
            self.ranks = catalog.table(self.table_name)
        else:
            self.ranks = self._build()
            self.built = True
        meta = self.ranks.get(_META_RANK)
        if meta is None or meta[5] != _META_KIND:
            raise StorageError(
                f"table {self.table_name!r} carries no ranks metadata"
            )
        self._generation = meta[2]
        self.scheme_name = meta[4]
        #: cooperative-cancellation budget (a
        #: :class:`repro.resilience.Deadline`) forwarded by the
        #: evaluator for the duration of one query; every index probe
        #: is a cancellation point, so a deadline fires even inside a
        #: long candidate enumeration
        self.deadline = None
        #: structural columns, built lazily by one table scan
        self.columnar: Optional[ColumnarIndex] = None
        # bounded LRU cache over the value-row probe path
        self._row_cache: "OrderedDict[Label, Tuple[Any, ...]]" = OrderedDict()
        # canonical materialised nodes — only what queries touch
        self._node_cache: Dict[Label, XmlNode] = {}
        self._label_by_id: Dict[int, Label] = {}
        self._order_by_id: Dict[int, int] = {}
        # frozen candidate lists, built on first enumeration
        self._tag_cache: Dict[str, List[Label]] = {}
        self._element_labels: Optional[List[Label]] = None
        self._text_labels: Optional[List[Label]] = None
        self._comment_labels: Optional[List[Label]] = None
        self._structural_labels: Optional[List[Label]] = None

    # ------------------------------------------------------------------
    # Shredding the structure index
    # ------------------------------------------------------------------
    def _build(self) -> Table:
        document = self.document
        labeling = document.labeling
        if labeling is None or document.tree is None:
            raise StorageError(
                f"document {document.name!r} has no labeling attached; "
                "a ranks table cannot be built (recover one from the WAL "
                "or call XmlDatabase.attach_labeling first)"
            )
        builder = getattr(labeling, "rank_index", None)
        generation = getattr(labeling, "generation", 0)
        index = builder() if builder is not None else RankIndex.build(
            labeling, generation
        )
        table = document.catalog.create_table(
            self.table_name, _RANK_COLUMNS, primary_key=["rank"]
        )
        scheme = getattr(labeling, "scheme_name", type(labeling).__name__)
        table.insert(
            (_META_RANK, None, generation, None, scheme, _META_KIND, None, None)
        )
        labels_by_rank: List[Any] = [None] * len(index.rank)
        for label, rank in index.rank.items():
            labels_by_rank[rank] = label
        node_of = labeling.node_of
        parent_label = labeling.parent_label
        for rank, label in enumerate(labels_by_rank):
            node = node_of(label)
            try:
                parent = label_key(parent_label(label))
            except NoParentError:
                parent = None
            kind = node.kind
            contrib = (
                node.text
                if kind in (NodeKind.TEXT, NodeKind.ELEMENT) and node.text
                else None
            )
            attrs = (
                tuple(sorted(node.attributes.items()))
                if kind is NodeKind.ELEMENT and node.attributes
                else None
            )
            table.insert(
                (
                    rank,
                    label_key(label),
                    index.end[label],
                    parent,
                    node.tag,
                    kind.value,
                    contrib,
                    attrs,
                )
            )
        table.create_index("label", ["label"])
        table.create_index("tag", ["tag"])
        table.create_index("parent", ["parent"])
        return table

    # ------------------------------------------------------------------
    # Probe plumbing
    # ------------------------------------------------------------------
    def _row(self, label: Label) -> Tuple[Any, ...]:
        """The ranks row for *label*: one secondary-index probe, LRU
        cached."""
        if self.deadline is not None:
            self.deadline.tick()
        cache = self._row_cache
        row = cache.get(label)
        if row is not None:
            cache.move_to_end(label)
            return row
        self.stats.rank_probes += 1
        for candidate in self.ranks.lookup("label", label):
            cache[label] = candidate
            if len(cache) > _ROW_CACHE_LIMIT:
                cache.popitem(last=False)
            return candidate
        raise UnknownLabelError(f"label {label!r} not in {self.table_name}")

    def _row_at(self, rank: int) -> Tuple[Any, ...]:
        for row in self.ranks.range_pk((rank,), (rank,)):
            return row
        raise UnknownLabelError(f"no label at rank {rank}")

    def _structural_rows(self):
        """All non-meta rows in rank (= document) order."""
        return self.ranks.range_pk((0,), None)

    def _columnar(self) -> ColumnarIndex:
        """The structural sidecar: one ranks-table scan (through the
        buffer pool, so the traffic is charged) packed into flat
        ``array`` columns. Every later structural probe is array
        arithmetic — no page touches."""
        columnar = self.columnar
        if columnar is None:
            if self.deadline is not None:
                self.deadline.tick(items=max(1, len(self.ranks) - 1))
            columnar = ColumnarIndex.from_rank_rows(
                self._structural_rows(), self._generation
            )
            self.stats.columnar_builds += 1
            self.columnar = columnar
        return columnar

    def _tick(self) -> None:
        if self.deadline is not None:
            self.deadline.tick()

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self._generation

    def size(self) -> int:
        return len(self.ranks) - 1  # minus the meta row

    def root_label(self) -> Label:
        return self._row_at(0)[1]

    def rank_of(self, label: Label) -> int:
        self._tick()
        self.stats.rank_probes += 1
        try:
            return self._columnar().rank_by_label[label]
        except KeyError:
            raise UnknownLabelError(
                f"label {label!r} not in {self.table_name}"
            ) from None

    def end_of(self, label: Label) -> int:
        self._tick()
        self.stats.rank_probes += 1
        columnar = self._columnar()
        try:
            return columnar.end[columnar.rank_by_label[label]]
        except KeyError:
            raise UnknownLabelError(
                f"label {label!r} not in {self.table_name}"
            ) from None

    def label_at(self, rank: int) -> Label:
        self.stats.rank_probes += 1
        columnar = self._columnar()
        if 0 <= rank < columnar.size:
            return columnar.labels_by_rank[rank]
        raise UnknownLabelError(f"no label at rank {rank}")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def parent_of(self, label: Label) -> Optional[Label]:
        self.stats.parent_hops += 1
        columnar = self._columnar()
        parent_rank = columnar.parent[self.rank_of(label)]
        if parent_rank < 0:
            return None
        return columnar.labels_by_rank[parent_rank]

    def children_of(self, label: Label) -> List[Label]:
        """Sibling-chain walk over the end column — no parent-index
        page probes, no stored child lists."""
        self._tick()
        columnar = self._columnar()
        return columnar.labels_for(columnar.children_ranks(self.rank_of(label)))

    def attribute_labels(self, label: Label) -> List[Label]:
        columnar = self._columnar()
        return columnar.labels_for(
            columnar.children_ranks(self.rank_of(label), attributes=True)
        )

    def descendant_labels(self, label: Label, or_self: bool = False) -> List[Label]:
        """Bisect into the structural rank column, one array slice."""
        self._tick()
        self.stats.columnar_slices += 1
        columnar = self._columnar()
        return columnar.structural_slice(self.rank_of(label), or_self)

    # ------------------------------------------------------------------
    # Record fetch
    # ------------------------------------------------------------------
    def record(self, label: Label) -> NodeRecord:
        self.stats.fetches += 1
        row = self.document.fetch(label)
        return NodeRecord(label, row[1], NodeKind(row[2]), row[3])

    def node_for(self, label: Label) -> XmlNode:
        node = self._node_cache.get(label)
        if node is not None:
            return node
        self.stats.fetches += 1
        row = self.document.fetch(label)  # the paper's one fetch
        ranks_row = self._row(label)
        node = XmlNode(
            row[1],
            NodeKind(row[2]),
            attributes=dict(ranks_row[7]) if ranks_row[7] else None,
            text=row[3],
        )
        self._node_cache[label] = node
        self._label_by_id[node.node_id] = label
        self._order_by_id[node.node_id] = ranks_row[0]
        return node

    def label_for(self, node: XmlNode) -> Label:
        try:
            return self._label_by_id[node.node_id]
        except KeyError:
            raise UnknownLabelError(
                f"node {node!r} was not materialised by this store"
            ) from None

    # ------------------------------------------------------------------
    # Candidate enumeration
    # ------------------------------------------------------------------
    def labels_with_tag(self, tag: str) -> List[Label]:
        self.stats.tag_lookups += 1
        cached = self._tag_cache.get(tag)
        if cached is not None:
            return cached
        columnar = self._columnar()
        labels = columnar.labels_for(columnar.tag_rank_array(tag))
        self._tag_cache[tag] = labels
        return labels

    def tag_ranks(self, tag: str) -> Sequence[int]:
        self.stats.columnar_tag_scans += 1
        return self._columnar().tag_rank_array(tag)

    def parent_rank_array(self) -> Sequence[int]:
        return self._columnar().parent

    def element_labels(self) -> List[Label]:
        labels = self._element_labels
        if labels is None:
            columnar = self._columnar()
            labels = columnar.labels_for(columnar.element_ranks)
            self._element_labels = labels
        return labels

    def text_labels(self) -> List[Label]:
        labels = self._text_labels
        if labels is None:
            columnar = self._columnar()
            labels = columnar.labels_for(columnar.text_ranks)
            self._text_labels = labels
        return labels

    def comment_labels(self) -> List[Label]:
        labels = self._comment_labels
        if labels is None:
            columnar = self._columnar()
            labels = columnar.labels_for(columnar.comment_ranks)
            self._comment_labels = labels
        return labels

    def structural_labels(self) -> List[Label]:
        labels = self._structural_labels
        if labels is None:
            columnar = self._columnar()
            labels = columnar.labels_for(columnar.structural)
            self._structural_labels = labels
        return labels

    def has_tag(self, tag: str) -> bool:
        return tag in self._columnar().tag_ranks

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------
    def attributes_of(self, label: Label) -> Tuple[Tuple[str, str], ...]:
        attrs = self._row(label)[7]
        return tuple(attrs) if attrs else ()

    def string_value(self, label: Label) -> str:
        row = self._row(label)
        kind = row[5]
        if kind == NodeKind.TEXT.value:
            return row[6] or ""
        if kind in (NodeKind.ATTRIBUTE.value, NodeKind.COMMENT.value):
            self.stats.fetches += 1
            return self.document.fetch(label)[3] or ""
        # Element: join the subtree's contributions in rank order —
        # one range scan, no per-node fetch.
        return "".join(
            r[6]
            for r in self.ranks.range_pk((row[0],), (row[2],))
            if r[6]
        )

    # ------------------------------------------------------------------
    # Evaluation support
    # ------------------------------------------------------------------
    def order_by_id(self) -> Dict[int, int]:
        # Live and growing: new materialisations appear in place.
        return self._order_by_id

    def path_of(self, label: Label) -> str:
        """Slash path from the root (matches :meth:`XmlNode.path` on
        the live tree), computed from parent hops — materialised nodes
        carry no parent pointers."""
        parts: List[str] = []
        current: Optional[Label] = label
        while current is not None:
            parts.append(self._row(current)[4])
            current = self.parent_of(current)
        return "/" + "/".join(reversed(parts))

    def stats_snapshot(self) -> Dict[str, int]:
        physical = dict(self.stats.as_dict())
        io = self.io.snapshot()
        physical["page_hits"] = io["buffer_hits"]
        physical["page_misses"] = io["buffer_misses"]
        return physical
