"""In-memory NodeStore over a live tree and its labeling.

This is the configuration every pre-E17 experiment ran on: the whole
document in RAM, labels resolved to live :class:`XmlNode` objects in
one dict lookup, document order from the labeling's
:class:`~repro.core.rankindex.RankIndex`. The store is a thin,
generation-aware view — it owns no structure of its own beyond the
candidate lists, so wrapping a labeling costs nothing until the first
tag lookup.

All derived state is stamped with the labeling's generation and
rebuilt wholesale after a structural update, mirroring the cache
discipline of the scheme evaluator it now backs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.rankindex import RankIndex
from repro.errors import NoParentError, UnknownLabelError
from repro.store.base import Label, NodeRecord, NodeStore
from repro.xmltree.node import NodeKind, XmlNode


class MemoryNodeStore(NodeStore):
    """Protocol adapter over a live ``(tree, labeling)`` pair.

    Accepts any labeling shape in use across the codebase: the uniform
    :class:`~repro.core.scheme.Labeling` adapters, or a bare core
    labeling (e.g. :class:`~repro.core.ruid.Ruid2Labeling`) that
    carries ``tree`` / ``label_of`` / ``node_of`` and parent arithmetic
    under either the ``parent_label`` or ``rparent`` name.
    """

    store_kind = "memory"

    def __init__(self, labeling: Any):
        super().__init__()
        self.labeling = labeling
        self.tree = labeling.tree
        self.scheme_name = getattr(labeling, "scheme_name", type(labeling).__name__)
        parent = getattr(labeling, "parent_label", None)
        self._parent_arithmetic = parent if parent is not None else labeling.rparent
        self._bound_generation: Optional[int] = None
        self.rank_map: Dict[Label, int] = {}
        self.end_map: Dict[Label, int] = {}
        self._labels_by_rank: Optional[List[Label]] = None
        self._order_by_id: Optional[Dict[int, int]] = None
        self._tag_labels: Optional[Dict[str, List[Label]]] = None
        self._element_labels: Optional[List[Label]] = None
        self._text_labels: Optional[List[Label]] = None
        self._comment_labels: Optional[List[Label]] = None
        self._structural_labels: Optional[List[Label]] = None
        self._ensure()

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return getattr(self.labeling, "generation", 0)

    def _rank_index(self) -> RankIndex:
        builder = getattr(self.labeling, "rank_index", None)
        if builder is not None:
            return builder()
        return RankIndex.build(self.labeling, self.generation)

    def _ensure(self) -> None:
        """Rebind every derived structure to the current generation; a
        no-op (one int compare) when nothing changed."""
        generation = self.generation
        if generation == self._bound_generation:
            return
        index = self._rank_index()
        self.rank_map = index.rank
        self.end_map = index.end
        self._labels_by_rank = None
        self._order_by_id = None
        self._tag_labels = None
        self._element_labels = None
        self._text_labels = None
        self._comment_labels = None
        self._structural_labels = None
        self._bound_generation = generation

    def refresh(self) -> "MemoryNodeStore":
        """Re-validate against the labeling (cheap; call per query)."""
        self._ensure()
        return self

    # ------------------------------------------------------------------
    def size(self) -> int:
        self._ensure()
        return len(self.rank_map)

    def root_label(self) -> Label:
        return self.labeling.label_of(self.tree.root)

    def rank_of(self, label: Label) -> int:
        self._ensure()
        try:
            return self.rank_map[label]
        except KeyError:
            raise UnknownLabelError(f"label {label!r} not in this generation") from None

    def end_of(self, label: Label) -> int:
        self._ensure()
        try:
            return self.end_map[label]
        except KeyError:
            raise UnknownLabelError(f"label {label!r} not in this generation") from None

    def label_at(self, rank: int) -> Label:
        self._ensure()
        by_rank = self._labels_by_rank
        if by_rank is None:
            by_rank = [None] * len(self.rank_map)
            for label, r in self.rank_map.items():
                by_rank[r] = label
            self._labels_by_rank = by_rank
        try:
            return by_rank[rank]
        except IndexError:
            raise UnknownLabelError(f"no label at rank {rank}") from None

    # ------------------------------------------------------------------
    def parent_of(self, label: Label) -> Optional[Label]:
        self.stats.parent_hops += 1
        try:
            return self._parent_arithmetic(label)
        except NoParentError:
            return None

    def children_of(self, label: Label) -> List[Label]:
        node = self.node_for(label)
        label_of = self.labeling.label_of
        return [
            label_of(child)
            for child in node.children
            if child.kind is not NodeKind.ATTRIBUTE
        ]

    # ------------------------------------------------------------------
    def record(self, label: Label) -> NodeRecord:
        self.stats.fetches += 1
        node = self.labeling.node_of(label)
        return NodeRecord(label, node.tag, node.kind, node.text)

    def node_for(self, label: Label) -> XmlNode:
        self.stats.fetches += 1
        return self.labeling.node_of(label)

    def raw_node_of(self, label: Label) -> XmlNode:
        """Uncounted dereference for hot loops that account fetches in
        bulk via :meth:`note_fetches`."""
        return self.labeling.node_of(label)

    def note_fetches(self, count: int) -> None:
        self.stats.fetches += count

    def label_for(self, node: XmlNode) -> Label:
        try:
            return self.labeling.label_of(node)
        except KeyError:
            raise UnknownLabelError(
                f"node {node!r} carries no label in this store"
            ) from None

    # ------------------------------------------------------------------
    def _build_candidates(self) -> None:
        """Per-kind label lists in document-rank order (attributes are
        not part of the main structural document; the navigational
        evaluator's axes skip them identically)."""
        label_of = self.labeling.label_of
        tag_labels: Dict[str, List[Label]] = {}
        element_labels: List[Label] = []
        text_labels: List[Label] = []
        comment_labels: List[Label] = []
        structural_labels: List[Label] = []
        for node in self.tree.preorder():
            kind = node.kind
            if kind is NodeKind.ATTRIBUTE:
                continue
            label = label_of(node)
            structural_labels.append(label)
            if kind is NodeKind.ELEMENT:
                element_labels.append(label)
                bucket = tag_labels.get(node.tag)
                if bucket is None:
                    tag_labels[node.tag] = bucket = []
                bucket.append(label)
            elif kind is NodeKind.TEXT:
                text_labels.append(label)
            elif kind is NodeKind.COMMENT:
                comment_labels.append(label)
        self._tag_labels = tag_labels
        self._element_labels = element_labels
        self._text_labels = text_labels
        self._comment_labels = comment_labels
        self._structural_labels = structural_labels

    def tag_labels(self) -> Dict[str, List[Label]]:
        """The raw tag → labels map (hot paths index it directly)."""
        self._ensure()
        if self._tag_labels is None:
            self._build_candidates()
        return self._tag_labels

    def labels_with_tag(self, tag: str) -> List[Label]:
        self.stats.tag_lookups += 1
        return self.tag_labels().get(tag, [])

    def element_labels(self) -> List[Label]:
        self._ensure()
        if self._element_labels is None:
            self._build_candidates()
        return self._element_labels

    def text_labels(self) -> List[Label]:
        self._ensure()
        if self._text_labels is None:
            self._build_candidates()
        return self._text_labels

    def comment_labels(self) -> List[Label]:
        self._ensure()
        if self._comment_labels is None:
            self._build_candidates()
        return self._comment_labels

    def structural_labels(self) -> List[Label]:
        self._ensure()
        if self._structural_labels is None:
            self._build_candidates()
        return self._structural_labels

    def has_tag(self, tag: str) -> bool:
        return tag in self.tag_labels()

    # ------------------------------------------------------------------
    def attributes_of(self, label: Label) -> Tuple[Tuple[str, str], ...]:
        node = self.labeling.node_of(label)
        if node.attributes:
            return tuple(sorted(node.attributes.items()))
        return ()

    def attribute_labels(self, label: Label) -> List[Label]:
        node = self.labeling.node_of(label)
        label_of = self.labeling.label_of
        return [
            label_of(child)
            for child in node.children
            if child.kind is NodeKind.ATTRIBUTE
        ]

    def string_value(self, label: Label) -> str:
        node = self.labeling.node_of(label)
        if node.kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE, NodeKind.COMMENT):
            return node.text or ""
        return node.text_content()

    # ------------------------------------------------------------------
    def order_by_id(self) -> Dict[int, int]:
        self._ensure()
        order = self._order_by_id
        if order is None:
            node_of = self.labeling.node_of
            order = {
                node_of(label).node_id: rank
                for label, rank in self.rank_map.items()
            }
            self._order_by_id = order
        return order

    def descendant_labels(self, label: Label, or_self: bool = False) -> List[Label]:
        """Rank-interval slice over the structural label list."""
        from bisect import bisect_left, bisect_right

        self._ensure()
        labels = self.structural_labels()
        rank_map = self.rank_map
        ranks = getattr(self, "_structural_ranks", None)
        if ranks is None or len(ranks) != len(labels):
            ranks = [rank_map[lb] for lb in labels]
            self._structural_ranks = ranks
        locate = bisect_left if or_self else bisect_right
        low = locate(ranks, rank_map[label])
        high = bisect_right(ranks, self.end_map[label])
        return labels[low:high]
