"""In-memory NodeStore over a live tree and its labeling.

This is the configuration every pre-E17 experiment ran on: the whole
document in RAM, labels resolved to live :class:`XmlNode` objects in
one dict lookup. Structure — document order, subtree intervals,
parenthood, per-tag candidates — is served from the labeling's
:class:`~repro.core.columnar.ColumnarIndex`: contiguous integer
buffers built in one DFS, so descendant slices are a bisect plus an
array slice and parent hops are one indexed load, with no per-node
object walks on any hot path.

All derived state is stamped with the labeling's generation and
rebuilt wholesale after a structural update, mirroring the cache
discipline of the scheme evaluator it now backs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.columnar import ColumnarIndex
from repro.errors import NoParentError, UnknownLabelError
from repro.store.base import Label, NodeRecord, NodeStore
from repro.xmltree.node import NodeKind, XmlNode


class MemoryNodeStore(NodeStore):
    """Protocol adapter over a live ``(tree, labeling)`` pair.

    Accepts any labeling shape in use across the codebase: the uniform
    :class:`~repro.core.scheme.Labeling` adapters, or a bare core
    labeling (e.g. :class:`~repro.core.ruid.Ruid2Labeling`) that
    carries ``tree`` / ``label_of`` / ``node_of`` and parent arithmetic
    under either the ``parent_label`` or ``rparent`` name.
    """

    store_kind = "memory"
    supports_batched = True

    __slots__ = (
        "labeling",
        "tree",
        "scheme_name",
        "columnar",
        "_parent_arithmetic",
        "_bound_generation",
        "rank_map",
        "end_map",
        "_order_by_id",
        "_tag_labels",
        "_element_labels",
        "_text_labels",
        "_comment_labels",
        "_structural_labels",
    )

    def __init__(self, labeling: Any):
        super().__init__()
        self.labeling = labeling
        self.tree = labeling.tree
        self.scheme_name = getattr(labeling, "scheme_name", type(labeling).__name__)
        parent = getattr(labeling, "parent_label", None)
        self._parent_arithmetic = parent if parent is not None else labeling.rparent
        self._bound_generation: Optional[int] = None
        self.columnar: Optional[ColumnarIndex] = None
        self.rank_map: Dict[Label, int] = {}
        self.end_map: Dict[Label, int] = {}
        self._order_by_id: Optional[Dict[int, int]] = None
        self._tag_labels: Optional[Dict[str, List[Label]]] = None
        self._element_labels: Optional[List[Label]] = None
        self._text_labels: Optional[List[Label]] = None
        self._comment_labels: Optional[List[Label]] = None
        self._structural_labels: Optional[List[Label]] = None
        self._ensure()

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return getattr(self.labeling, "generation", 0)

    def _build_columnar(self) -> ColumnarIndex:
        builder = getattr(self.labeling, "columnar_index", None)
        if builder is not None:
            return builder()
        return ColumnarIndex.build(self.labeling, self.generation)

    def _ensure(self) -> None:
        """Rebind every derived structure to the current generation; a
        no-op (one int compare) when nothing changed."""
        generation = self.generation
        if generation == self._bound_generation:
            return
        columnar = self._build_columnar()
        self.stats.columnar_builds += 1
        index = columnar.as_rank_index()
        self.columnar = columnar
        self.rank_map = index.rank
        self.end_map = index.end
        self._order_by_id = None
        self._tag_labels = None
        self._element_labels = None
        self._text_labels = None
        self._comment_labels = None
        self._structural_labels = None
        self._bound_generation = generation

    def refresh(self) -> "MemoryNodeStore":
        """Re-validate against the labeling (cheap; call per query)."""
        self._ensure()
        return self

    # ------------------------------------------------------------------
    def size(self) -> int:
        self._ensure()
        return self.columnar.size

    def root_label(self) -> Label:
        return self.labeling.label_of(self.tree.root)

    def rank_of(self, label: Label) -> int:
        self._ensure()
        try:
            return self.rank_map[label]
        except KeyError:
            raise UnknownLabelError(f"label {label!r} not in this generation") from None

    def end_of(self, label: Label) -> int:
        self._ensure()
        try:
            return self.end_map[label]
        except KeyError:
            raise UnknownLabelError(f"label {label!r} not in this generation") from None

    def label_at(self, rank: int) -> Label:
        self._ensure()
        try:
            return self.columnar.labels_by_rank[rank]
        except IndexError:
            raise UnknownLabelError(f"no label at rank {rank}") from None

    # ------------------------------------------------------------------
    def parent_of(self, label: Label) -> Optional[Label]:
        self.stats.parent_hops += 1
        try:
            return self._parent_arithmetic(label)
        except NoParentError:
            return None

    def children_of(self, label: Label) -> List[Label]:
        self._ensure()
        columnar = self.columnar
        return columnar.labels_for(columnar.children_ranks(self.rank_of(label)))

    # ------------------------------------------------------------------
    def record(self, label: Label) -> NodeRecord:
        self.stats.fetches += 1
        node = self.labeling.node_of(label)
        return NodeRecord(label, node.tag, node.kind, node.text)

    def node_for(self, label: Label) -> XmlNode:
        self.stats.fetches += 1
        return self.labeling.node_of(label)

    def raw_node_of(self, label: Label) -> XmlNode:
        """Uncounted dereference for hot loops that account fetches in
        bulk via :meth:`note_fetches`."""
        return self.labeling.node_of(label)

    def note_fetches(self, count: int) -> None:
        self.stats.fetches += count

    def label_for(self, node: XmlNode) -> Label:
        try:
            return self.labeling.label_of(node)
        except KeyError:
            raise UnknownLabelError(
                f"node {node!r} carries no label in this store"
            ) from None

    # ------------------------------------------------------------------
    def tag_labels(self) -> Dict[str, List[Label]]:
        """The raw tag → labels map (hot paths index it directly),
        materialised from the columnar per-tag rank arrays."""
        self._ensure()
        tag_labels = self._tag_labels
        if tag_labels is None:
            columnar = self.columnar
            labels_for = columnar.labels_for
            tag_labels = {
                tag: labels_for(bucket)
                for tag, bucket in columnar.tag_ranks.items()
            }
            self._tag_labels = tag_labels
        return tag_labels

    def labels_with_tag(self, tag: str) -> List[Label]:
        self.stats.tag_lookups += 1
        return self.tag_labels().get(tag, [])

    def tag_ranks(self, tag: str) -> Sequence[int]:
        self._ensure()
        self.stats.columnar_tag_scans += 1
        return self.columnar.tag_rank_array(tag)

    def parent_rank_array(self) -> Sequence[int]:
        self._ensure()
        return self.columnar.parent

    def element_labels(self) -> List[Label]:
        self._ensure()
        labels = self._element_labels
        if labels is None:
            columnar = self.columnar
            labels = columnar.labels_for(columnar.element_ranks)
            self._element_labels = labels
        return labels

    def text_labels(self) -> List[Label]:
        self._ensure()
        labels = self._text_labels
        if labels is None:
            columnar = self.columnar
            labels = columnar.labels_for(columnar.text_ranks)
            self._text_labels = labels
        return labels

    def comment_labels(self) -> List[Label]:
        self._ensure()
        labels = self._comment_labels
        if labels is None:
            columnar = self.columnar
            labels = columnar.labels_for(columnar.comment_ranks)
            self._comment_labels = labels
        return labels

    def structural_labels(self) -> List[Label]:
        self._ensure()
        labels = self._structural_labels
        if labels is None:
            columnar = self.columnar
            labels = columnar.labels_for(columnar.structural)
            self._structural_labels = labels
        return labels

    def has_tag(self, tag: str) -> bool:
        self._ensure()
        return tag in self.columnar.tag_ranks

    # ------------------------------------------------------------------
    def attributes_of(self, label: Label) -> Tuple[Tuple[str, str], ...]:
        node = self.labeling.node_of(label)
        if node.attributes:
            return tuple(sorted(node.attributes.items()))
        return ()

    def attribute_labels(self, label: Label) -> List[Label]:
        self._ensure()
        columnar = self.columnar
        return columnar.labels_for(
            columnar.children_ranks(self.rank_of(label), attributes=True)
        )

    def string_value(self, label: Label) -> str:
        node = self.labeling.node_of(label)
        if node.kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE, NodeKind.COMMENT):
            return node.text or ""
        return node.text_content()

    # ------------------------------------------------------------------
    def order_by_id(self) -> Dict[int, int]:
        self._ensure()
        order = self._order_by_id
        if order is None:
            node_of = self.labeling.node_of
            order = {
                node_of(label).node_id: rank
                for rank, label in enumerate(self.columnar.labels_by_rank)
            }
            self._order_by_id = order
        return order

    def descendant_labels(self, label: Label, or_self: bool = False) -> List[Label]:
        """Bisect into the structural rank column, one array slice."""
        self._ensure()
        self.stats.columnar_slices += 1
        return self.columnar.structural_slice(self.rank_of(label), or_self)
