"""XPath evaluation against any :class:`~repro.store.base.NodeStore`.

:class:`StoreEvaluator` plugs the store protocol under the shared
:class:`~repro.query.evaluator.BaseEvaluator` semantics: every axis is
answered from ranks, intervals, parent arithmetic and candidate lists
— the operations the protocol guarantees — and labels are dereferenced
to nodes only for node tests and results, which is exactly the
paper's one-fetch-per-node discipline made concrete.

Against a :class:`~repro.store.memory.MemoryNodeStore` this behaves
like the per-context scheme evaluator; against a
:class:`~repro.store.paged.PagedNodeStore` the same code runs queries
over a shredded document through the buffer pool, with no live DOM in
sight.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryError, UnknownLabelError, UnsupportedFeatureError
from repro.query.ast import NodeTest, Step
from repro.query.evaluator import BaseEvaluator, node_test_matches
from repro.query.stats import QueryStats
from repro.store.base import Label, NodeStore
from repro.xmltree.node import NodeKind, XmlNode


class StoreEvaluator(BaseEvaluator):
    """Axis steps from NodeStore primitives.

    Keeps no generation-spanning caches of its own beyond the candidate
    rank-array cache (keyed by the store's generation, cleared on
    mismatch): every structural question goes back to the store, which
    owns invalidation. One evaluator instance therefore stays correct
    across updates as long as the store does.

    Against a store with columnar backing (``supports_batched``),
    predicate-free child/descendant steps run **set-at-a-time** over
    raw rank arrays — per-tag candidate ranks against the whole context
    frontier with a running-max interval scan — instead of one
    axis call per context node. Wrapper stores that charge per call
    (the resilient store) keep the per-node path and its accounting.
    """

    strategy_name = "store"
    route_name = "store"

    #: axes the batched set-at-a-time path implements; vertical
    #: upward axes stay per-node (ancestor chains are short)
    _BATCHED_AXES = frozenset({"child", "descendant", "descendant-or-self"})

    def __init__(
        self,
        store: NodeStore,
        stats: Optional[QueryStats] = None,
        batched: bool = True,
        pushdown: bool = True,
    ):
        # Deliberately no super().__init__: BaseEvaluator would bind a
        # live tree; everything it reads through self.tree is
        # overridden below.
        self.store = store
        self.tree = None  # any accidental live-tree access fails loudly
        self.stats = stats if stats is not None else QueryStats()
        self.tracer = None
        self.document_node = XmlNode("#document", NodeKind.DOCUMENT)
        #: False forces the per-node path (the pre-columnar behaviour,
        #: kept for before/after benchmarking)
        self.batched = batched
        #: False disables store-native axis pushdown (stores that have
        #: none ignore this); kept switchable so the differential and
        #: property suites can pin SQL answers against the Python paths
        self.pushdown = pushdown
        # two-level candidate cache: (store id, generation) -> node
        # test token -> (labels, ranks). The outer key makes eviction
        # generation-precise — the concurrent layer drops exactly a
        # reclaimed generation's arrays without touching live ones —
        # while a store relabeling in place still invalidates its own
        # stale bucket on first use of the new generation.
        self._candidate_cache: Dict[
            Tuple[int, int], Dict[Tuple, Tuple[List[Label], Sequence[int]]]
        ] = {}

    # -- BaseEvaluator hooks ------------------------------------------------
    def doc_order(self) -> Dict[int, int]:
        # The store's map, not a copy: a paged store grows it as nodes
        # materialise, and sort_nodes must see those entries.
        return self.store.order_by_id()

    def select(self, expr, context: Optional[XmlNode] = None) -> List[XmlNode]:
        if context is None:
            context = self.store.node_for(self.store.root_label())
        result = self._eval(expr, context, 1, 1)
        if not isinstance(result, list):
            raise QueryError(f"expression yields a {type(result).__name__}, not nodes")
        return result

    def evaluate(self, expr, context: Optional[XmlNode] = None):
        if context is None:
            context = self.store.node_for(self.store.root_label())
        return self._eval(expr, context, 1, 1)

    def string_value_of(self, node: XmlNode) -> str:
        try:
            label = self.store.label_for(node)
        except UnknownLabelError:
            # Transient attribute node synthesized by this evaluator:
            # its text was frozen at synthesis time.
            return node.text or ""
        return self.store.string_value(label)

    def _document_axis(self, axis: str) -> List[XmlNode]:
        store = self.store
        if axis == "child":
            return [store.node_for(store.root_label())]
        if axis == "descendant":
            return self._nodes(store.structural_labels())
        if axis == "descendant-or-self":
            return [self.document_node, *self._nodes(store.structural_labels())]
        if axis == "self":
            return [self.document_node]
        return []

    # -- label plumbing -----------------------------------------------------
    def _nodes(self, labels: List[Label]) -> List[XmlNode]:
        node_for = self.store.node_for
        return [node_for(label) for label in labels]

    # -- batched fast path --------------------------------------------------
    def _candidate_arrays(
        self, test: NodeTest
    ) -> Optional[Tuple[List[Label], Sequence[int]]]:
        """(labels, ranks) that can satisfy *test* — parallel sequences
        in document-rank order, cached per (store, generation)."""
        store = self.store
        cache_key = (id(store), store.generation)
        bucket = self._candidate_cache.get(cache_key)
        if bucket is None:
            # a store that relabeled in place leaves a stale bucket
            # under its old generation: drop it so the cache stays
            # bounded at one generation per live store
            stale = [
                key
                for key in self._candidate_cache
                if key[0] == cache_key[0] and key[1] != cache_key[1]
            ]
            for key in stale:
                del self._candidate_cache[key]
            bucket = self._candidate_cache[cache_key] = {}
        node_type = test.node_type
        if node_type is None:
            token = ("tag", test.name)
        elif node_type in ("node", "text", "comment"):
            token = ("kind", node_type)
        else:
            return None
        cached = bucket.get(token)
        if cached is not None:
            self.stats.count("candidate_cache_hits")
            return cached
        self.stats.count("candidate_cache_misses")
        if node_type is None and test.name is not None:
            labels = store.labels_with_tag(test.name)
            ranks: Sequence[int] = store.tag_ranks(test.name)
        else:
            if node_type is None:
                labels = store.element_labels()
            elif node_type == "node":
                labels = store.structural_labels()
            elif node_type == "text":
                labels = store.text_labels()
            else:
                labels = store.comment_labels()
            rank_of = store.rank_of
            ranks = array("q", (rank_of(lb) for lb in labels))
        pair = (labels, ranks)
        bucket[token] = pair
        return pair

    def evict_generation(self, generation: int) -> int:
        """Drop every cached candidate array built for *generation*.

        Called by the concurrent layer when epoch reclamation retires a
        generation's view: the arrays hold label lists pinned to that
        view, and evicting them here is what lets the view's buffers
        actually be freed. Returns the number of buckets dropped."""
        doomed = [key for key in self._candidate_cache if key[1] == generation]
        for key in doomed:
            del self._candidate_cache[key]
        if doomed:
            self.stats.count("candidate_cache_evictions", len(doomed))
        return len(doomed)

    def _eval_step(self, nodes: List[XmlNode], step: Step) -> List[XmlNode]:
        pushdown = self.store.axis_pushdown
        if (
            self.pushdown
            and pushdown is not None
            and not step.predicates
            and step.axis in pushdown.AXES
        ):
            result = self._eval_step_pushdown(nodes, step, pushdown)
            if result is not None:
                self.stats.count("pushdown_steps")
                if self.deadline is not None:
                    self.deadline.tick(len(result))
                return result
        if (
            self.batched
            and self.store.supports_batched
            and not step.predicates
            and step.axis in self._BATCHED_AXES
        ):
            result = self._eval_step_batched(nodes, step)
            if result is not None:
                self.stats.count("batched_steps")
                if self.deadline is not None:
                    # one weighted cancellation point per batched step
                    self.deadline.tick(len(result))
                return result
        return super()._eval_step(nodes, step)

    def _eval_step_pushdown(
        self, nodes: List[XmlNode], step: Step, pushdown
    ) -> Optional[List[XmlNode]]:
        """Whole step answered by the store's native engine (one SQL
        range predicate per axis); None means fall back — unlabelable
        context or a test the pushdown dialect cannot express."""
        store = self.store
        has_doc = False
        labels: List[Label] = []
        label_for = store.label_for
        try:
            for node in nodes:
                if node is self.document_node:
                    has_doc = True
                else:
                    labels.append(label_for(node))
        except UnknownLabelError:
            return None  # transient attribute context
        found = pushdown.step(labels, step.axis, step.test, has_doc)
        if found is None:
            return None
        out: List[XmlNode] = []
        if (
            has_doc
            and step.axis == "descendant-or-self"
            and node_test_matches(self.document_node, step.test, step.axis)
        ):
            out.append(self.document_node)
        out.extend(self._nodes(found))
        return out

    def _eval_step_batched(
        self, nodes: List[XmlNode], step: Step
    ) -> Optional[List[XmlNode]]:
        """Set-at-a-time step over raw rank arrays; None means fall
        back to the per-node path (unlabelable context, inexpressible
        test, missing parent column)."""
        store = self.store
        has_doc = False
        labels: List[Label] = []
        label_for = store.label_for
        try:
            for node in nodes:
                if node is self.document_node:
                    has_doc = True
                else:
                    labels.append(label_for(node))
        except UnknownLabelError:
            return None  # transient attribute context
        pair = self._candidate_arrays(step.test)
        if pair is None:
            return None
        candidates, candidate_ranks = pair
        axis = step.axis

        if axis == "child":
            parent_ranks = store.parent_rank_array()
            if parent_ranks is None:
                return None
            if not labels and not has_doc:
                return []
            context_ranks = {store.rank_of(lb) for lb in set(labels)}
            kept: List[Label] = []
            for position, cand_rank in enumerate(candidate_ranks):
                parent_rank = parent_ranks[cand_rank]
                if parent_rank < 0:
                    if has_doc:  # the root element, child of the doc node
                        kept.append(candidates[position])
                elif parent_rank in context_ranks:
                    kept.append(candidates[position])
            return self._nodes(kept)

        # descendant / descendant-or-self
        or_self = axis == "descendant-or-self"
        if has_doc:
            out: List[XmlNode] = []
            if or_self and node_test_matches(self.document_node, step.test, axis):
                out.append(self.document_node)
            out.extend(self._nodes(candidates))
            return out
        if not labels:
            return []
        # Contexts sorted by rank with a running max of subtree ends:
        # candidate x descends from some context iff the best end among
        # contexts at/before x's rank reaches x.
        rank_of = store.rank_of
        end_of = store.end_of
        spans = sorted((rank_of(lb), end_of(lb)) for lb in set(labels))
        span_ranks = [r for r, _ in spans]
        prefix_max: List[int] = []
        best = -1
        for _, subtree_end in spans:
            if subtree_end > best:
                best = subtree_end
            prefix_max.append(best)
        locate = bisect_right if or_self else bisect_left
        kept = []
        for position, cand_rank in enumerate(candidate_ranks):
            j = locate(span_ranks, cand_rank) - 1
            if j >= 0 and prefix_max[j] >= cand_rank:
                kept.append(candidates[position])
        return self._nodes(kept)

    # -- axes ---------------------------------------------------------------
    def axis_nodes(self, node: XmlNode, axis: str) -> List[XmlNode]:
        store = self.store
        if axis == "attribute":
            return self._attribute_nodes(node)
        try:
            label = store.label_for(node)
        except UnknownLabelError:
            return self._transient_axis(node, axis)
        if axis == "self":
            return [node]
        if axis == "parent":
            parent = store.parent_of(label)
            return [store.node_for(parent)] if parent is not None else []
        if axis in ("ancestor", "ancestor-or-self"):
            return self._nodes(
                store.ancestor_labels(label, or_self=axis == "ancestor-or-self")
            )
        if axis == "child":
            return self._nodes(store.children_of(label))
        if axis in ("descendant", "descendant-or-self"):
            return self._nodes(
                store.descendant_labels(label, or_self=axis == "descendant-or-self")
            )
        if axis in ("following-sibling", "preceding-sibling"):
            parent = store.parent_of(label)
            if parent is None:
                return []
            siblings = store.children_of(parent)
            position = siblings.index(label)
            if axis == "following-sibling":
                return self._nodes(siblings[position + 1 :])
            return self._nodes(siblings[:position])
        if axis == "following":
            # Everything ranked after this subtree's interval.
            end = store.end_of(label)
            return self._nodes(
                [
                    candidate
                    for candidate in store.structural_labels()
                    if store.rank_of(candidate) > end
                ]
            )
        if axis == "preceding":
            rank = store.rank_of(label)
            ancestors = set(store.ancestor_labels(label))
            return self._nodes(
                [
                    candidate
                    for candidate in store.structural_labels()
                    if store.rank_of(candidate) < rank and candidate not in ancestors
                ]
            )
        raise UnsupportedFeatureError(f"unsupported axis {axis!r}")

    def _transient_axis(self, node: XmlNode, axis: str) -> List[XmlNode]:
        """Axes from a synthesized attribute node (outside the store)."""
        if axis == "self":
            return [node]
        parent = node.parent
        if parent is None:
            return []
        if axis == "parent":
            return [parent]
        if axis in ("ancestor", "ancestor-or-self"):
            chain = self.axis_nodes(parent, "ancestor-or-self")
            if axis == "ancestor-or-self":
                chain = [*chain, node]
            return chain
        return []

    def _attribute_nodes(self, node: XmlNode) -> List[XmlNode]:
        try:
            label = self.store.label_for(node)
        except UnknownLabelError:
            return []
        materialised = self.store.attribute_labels(label)
        if materialised:
            return self._nodes(materialised)
        created: List[XmlNode] = []
        for name, value in self.store.attributes_of(label):
            attr = XmlNode(name, NodeKind.ATTRIBUTE, text=value)
            attr.parent = node  # navigable but not inserted as a child
            created.append(attr)
        return created
