"""XPath evaluation against any :class:`~repro.store.base.NodeStore`.

:class:`StoreEvaluator` plugs the store protocol under the shared
:class:`~repro.query.evaluator.BaseEvaluator` semantics: every axis is
answered from ranks, intervals, parent arithmetic and candidate lists
— the operations the protocol guarantees — and labels are dereferenced
to nodes only for node tests and results, which is exactly the
paper's one-fetch-per-node discipline made concrete.

Against a :class:`~repro.store.memory.MemoryNodeStore` this behaves
like the per-context scheme evaluator; against a
:class:`~repro.store.paged.PagedNodeStore` the same code runs queries
over a shredded document through the buffer pool, with no live DOM in
sight.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import QueryError, UnknownLabelError, UnsupportedFeatureError
from repro.query.evaluator import BaseEvaluator
from repro.query.stats import QueryStats
from repro.store.base import Label, NodeStore
from repro.xmltree.node import NodeKind, XmlNode


class StoreEvaluator(BaseEvaluator):
    """Axis steps from NodeStore primitives.

    Keeps no generation-spanning caches of its own: every structural
    question goes back to the store, which owns invalidation. One
    evaluator instance therefore stays correct across updates as long
    as the store does.
    """

    strategy_name = "store"
    route_name = "store"

    def __init__(self, store: NodeStore, stats: Optional[QueryStats] = None):
        # Deliberately no super().__init__: BaseEvaluator would bind a
        # live tree; everything it reads through self.tree is
        # overridden below.
        self.store = store
        self.tree = None  # any accidental live-tree access fails loudly
        self.stats = stats if stats is not None else QueryStats()
        self.tracer = None
        self.document_node = XmlNode("#document", NodeKind.DOCUMENT)

    # -- BaseEvaluator hooks ------------------------------------------------
    def doc_order(self) -> Dict[int, int]:
        # The store's map, not a copy: a paged store grows it as nodes
        # materialise, and sort_nodes must see those entries.
        return self.store.order_by_id()

    def select(self, expr, context: Optional[XmlNode] = None) -> List[XmlNode]:
        if context is None:
            context = self.store.node_for(self.store.root_label())
        result = self._eval(expr, context, 1, 1)
        if not isinstance(result, list):
            raise QueryError(f"expression yields a {type(result).__name__}, not nodes")
        return result

    def evaluate(self, expr, context: Optional[XmlNode] = None):
        if context is None:
            context = self.store.node_for(self.store.root_label())
        return self._eval(expr, context, 1, 1)

    def string_value_of(self, node: XmlNode) -> str:
        try:
            label = self.store.label_for(node)
        except UnknownLabelError:
            # Transient attribute node synthesized by this evaluator:
            # its text was frozen at synthesis time.
            return node.text or ""
        return self.store.string_value(label)

    def _document_axis(self, axis: str) -> List[XmlNode]:
        store = self.store
        if axis == "child":
            return [store.node_for(store.root_label())]
        if axis == "descendant":
            return self._nodes(store.structural_labels())
        if axis == "descendant-or-self":
            return [self.document_node, *self._nodes(store.structural_labels())]
        if axis == "self":
            return [self.document_node]
        return []

    # -- label plumbing -----------------------------------------------------
    def _nodes(self, labels: List[Label]) -> List[XmlNode]:
        node_for = self.store.node_for
        return [node_for(label) for label in labels]

    # -- axes ---------------------------------------------------------------
    def axis_nodes(self, node: XmlNode, axis: str) -> List[XmlNode]:
        store = self.store
        if axis == "attribute":
            return self._attribute_nodes(node)
        try:
            label = store.label_for(node)
        except UnknownLabelError:
            return self._transient_axis(node, axis)
        if axis == "self":
            return [node]
        if axis == "parent":
            parent = store.parent_of(label)
            return [store.node_for(parent)] if parent is not None else []
        if axis in ("ancestor", "ancestor-or-self"):
            return self._nodes(
                store.ancestor_labels(label, or_self=axis == "ancestor-or-self")
            )
        if axis == "child":
            return self._nodes(store.children_of(label))
        if axis in ("descendant", "descendant-or-self"):
            return self._nodes(
                store.descendant_labels(label, or_self=axis == "descendant-or-self")
            )
        if axis in ("following-sibling", "preceding-sibling"):
            parent = store.parent_of(label)
            if parent is None:
                return []
            siblings = store.children_of(parent)
            position = siblings.index(label)
            if axis == "following-sibling":
                return self._nodes(siblings[position + 1 :])
            return self._nodes(siblings[:position])
        if axis == "following":
            # Everything ranked after this subtree's interval.
            end = store.end_of(label)
            return self._nodes(
                [
                    candidate
                    for candidate in store.structural_labels()
                    if store.rank_of(candidate) > end
                ]
            )
        if axis == "preceding":
            rank = store.rank_of(label)
            ancestors = set(store.ancestor_labels(label))
            return self._nodes(
                [
                    candidate
                    for candidate in store.structural_labels()
                    if store.rank_of(candidate) < rank and candidate not in ancestors
                ]
            )
        raise UnsupportedFeatureError(f"unsupported axis {axis!r}")

    def _transient_axis(self, node: XmlNode, axis: str) -> List[XmlNode]:
        """Axes from a synthesized attribute node (outside the store)."""
        if axis == "self":
            return [node]
        parent = node.parent
        if parent is None:
            return []
        if axis == "parent":
            return [parent]
        if axis in ("ancestor", "ancestor-or-self"):
            chain = self.axis_nodes(parent, "ancestor-or-self")
            if axis == "ancestor-or-self":
                chain = [*chain, node]
            return chain
        return []

    def _attribute_nodes(self, node: XmlNode) -> List[XmlNode]:
        try:
            label = self.store.label_for(node)
        except UnknownLabelError:
            return []
        materialised = self.store.attribute_labels(label)
        if materialised:
            return self._nodes(materialised)
        created: List[XmlNode] = []
        for name, value in self.store.attributes_of(label):
            attr = XmlNode(name, NodeKind.ATTRIBUTE, text=value)
            attr.parent = node  # navigable but not inserted as a child
            created.append(attr)
        return created
