"""Durable NodeStore over stdlib ``sqlite3`` — the XPath Accelerator.

The paper's pre/post numbering makes every major axis a *pure range
predicate*: ``u`` is an ancestor of ``v`` iff ``pre(u) < pre(v) AND
post(u) > post(v)``, descendant is the mirror, siblings are a
parent-equality scan. That is exactly Grust's XPath Accelerator
relational encoding, and it means an off-the-shelf SQL engine — with
nothing XML-specific in it — can answer whole axis steps with one
indexed ``SELECT``. :class:`SqliteNodeStore` shreds a labeled document
into such an **accel table** inside a SQLite database (in-memory or a
real file on disk) and serves the full :class:`NodeStore` protocol
from it, which buys the system three things at once:

* a **restart-durable** backend: a store attached to a previously
  shredded ``.db`` file answers queries with *zero* re-shred and no
  labeling object anywhere in the process;
* **axis pushdown**: :class:`SqlAxisPushdown` turns predicate-free
  child / descendant / ancestor / sibling steps into single SQL
  statements the embedded C engine executes, while the evaluator's
  batched Python paths remain as fallbacks;
* an honest benchmark partner for the Python evaluators — E17 now
  compares memory, paged and sqlite on one workload.

Layout of ``{name}__accel`` (primary key: ``pre``):

========== ======= ====================================================
column     type    contents
========== ======= ====================================================
pre        INTEGER preorder rank (pk; pre order = document order)
post       INTEGER postorder rank
level      INTEGER depth below the root element (root = 0)
parent_pre INTEGER parent's ``pre``, NULL at the root
kind       INTEGER node-kind code (:mod:`repro.core.columnar` codes)
tag_id     INTEGER id into ``{name}__tags`` (−1 for untagged kinds)
value      TEXT    string-value contribution (text of TEXT/ELEMENT
                   rows, comment/attribute text)
========== ======= ====================================================

A **meta row at pre −1** (kind −1) carries the labeling generation in
``post`` and the scheme name in ``value``, so an attached store knows
what it serves without a labeling. Companion tables ``{name}__tags``
(the tag dictionary) and ``{name}__attrs`` (dict-form attribute pairs
per element ``pre``) complete the shred. Indexes: ``(tag_id, pre)``
for per-tag candidate range scans, ``parent_pre`` for child scans,
``post`` for the ancestor range predicate.

Because ``pre``/``post``/``level`` are assigned over the same DFS,
the subtree-end rank every interval consumer needs is *derivable*:
``end(v) = post(v) + level(v)`` (a node's postorder rank counts its
``size−1`` descendants plus the ``pre(v) − level(v)`` preceding
non-ancestors, so ``post = pre + size − 1 − level``). Descendant
scans therefore run on the primary key — ``pre BETWEEN pre(v)+1 AND
post(v)+level(v)`` — with no self-join on post at all.

Labels in this store's dialect are the ``pre`` ranks themselves
(plain ints), mirroring the snapshot view's ``node_id`` ints: opaque
to consumers, trivially stable across attach, and free to translate
to ranks.

Every statement goes through one guarded execution point that charges
``sql_queries`` / ``sql_rows`` on :class:`StoreStats`, ticks the
query's deadline between fetched batches, and maps ``sqlite3`` errors
into the storage taxonomy (``TransientFetchError`` for
busy/locked-class failures, ``StorageError`` for the rest), so
:class:`~repro.resilience.store.ResilientNodeStore` can guard this
backend exactly like the paged one.
"""

from __future__ import annotations

import re
import sqlite3
from array import array
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.columnar import (
    KIND_ATTRIBUTE,
    KIND_COMMENT,
    KIND_DOCUMENT,
    KIND_ELEMENT,
    KIND_PI,
    KIND_TEXT,
    NO_RANK,
)
from repro.errors import (
    NoParentError,
    StorageError,
    TransientFetchError,
    UnknownLabelError,
)
from repro.query.ast import NodeTest
from repro.store.base import Label, NodeRecord, NodeStore
from repro.xmltree.node import NodeKind, XmlNode

_META_PRE = -1
_META_KIND = -1

#: kind code → NodeKind (inverse of the columnar code table)
_KIND_BY_CODE = {
    KIND_ELEMENT: NodeKind.ELEMENT,
    KIND_TEXT: NodeKind.TEXT,
    KIND_COMMENT: NodeKind.COMMENT,
    KIND_ATTRIBUTE: NodeKind.ATTRIBUTE,
    KIND_PI: NodeKind.PROCESSING_INSTRUCTION,
    KIND_DOCUMENT: NodeKind.DOCUMENT,
}
_CODE_BY_KIND = {kind: code for code, kind in _KIND_BY_CODE.items()}

#: bounded LRU over point-row probes (mirrors the paged store's cache)
_ROW_CACHE_LIMIT = 4096

#: rows pulled per fetchmany batch — each batch boundary is a deadline
#: cancellation point, so a runaway scan is interruptible mid-flight
_FETCH_BATCH = 1024

#: bound on SQL parameters per statement (SQLite guarantees ≥999 host
#: parameters; range predicates use two each)
_MAX_PARAMS = 800

_NAME_RE = re.compile(r"[A-Za-z0-9_.-]+\Z")

#: sqlite3 error texts that indicate a condition a retry may clear
_TRANSIENT_MARKERS = ("locked", "busy", "disk i/o", "ioerr")


def _quoted(name: str) -> str:
    if not _NAME_RE.match(name):
        raise StorageError(f"unusable document name for sqlite tables: {name!r}")
    return f'"{name}"'


def _merge_intervals(spans: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Coalesce overlapping/adjacent [lo, hi] ranges (sorted output)."""
    if not spans:
        return spans
    spans.sort()
    merged = [spans[0]]
    for lo, hi in spans[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi + 1:
            if hi > last_hi:
                merged[-1] = (last_lo, hi)
        else:
            merged.append((lo, hi))
    return [span for span in merged if span[1] >= span[0]]


def _chunks(items: Sequence, size: int) -> Iterable[Sequence]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


class SqlAxisPushdown:
    """Whole axis steps as single SQL range predicates.

    The helper the :class:`~repro.store.evaluator.StoreEvaluator`
    consults before its batched Python paths: given a context frontier
    (a list of ``pre`` ranks) and a step, it emits the accelerator
    predicate for the axis — descendant/child/ancestor/sibling — with
    the node test folded in as an indexed filter, and returns the
    matching ``pre`` ranks in document order. Returns ``None`` when
    the node test is not expressible as a SQL filter (the evaluator
    falls back to Python).

    Each pushed step is one to a handful of ``SELECT`` statements
    (context frontiers are chunked to stay under SQLite's host-
    parameter limit), counted in ``StoreStats.pushdown_steps``.
    """

    #: axes this helper can translate; ``following``/``preceding`` are
    #: rare enough to leave on the evaluator's per-node path
    AXES = frozenset(
        {
            "child",
            "descendant",
            "descendant-or-self",
            "ancestor",
            "ancestor-or-self",
            "following-sibling",
            "preceding-sibling",
        }
    )

    def __init__(self, store: "SqliteNodeStore"):
        self.store = store

    # ------------------------------------------------------------------
    def test_filter(self, test: NodeTest) -> Optional[Tuple[str, Tuple]]:
        """(SQL clause, params) expressing *test*, or ``None`` when it
        cannot be pushed down. A tag unknown to the document yields a
        clause no row satisfies (the synopsis answer, in SQL)."""
        node_type = test.node_type
        if node_type is None:
            if test.name is not None:
                tag_id = self.store._tag_id(test.name)
                if tag_id is None:
                    return ("0", ())  # no such tag anywhere
                return (f"kind = {KIND_ELEMENT} AND tag_id = ?", (tag_id,))
            return (f"kind = {KIND_ELEMENT}", ())
        if node_type == "node":
            return (f"kind != {KIND_ATTRIBUTE}", ())
        if node_type == "text":
            return (f"kind = {KIND_TEXT}", ())
        if node_type == "comment":
            return (f"kind = {KIND_COMMENT}", ())
        return None

    # ------------------------------------------------------------------
    def step(
        self,
        pres: List[int],
        axis: str,
        test: NodeTest,
        has_doc: bool = False,
    ) -> Optional[List[int]]:
        """Matching ``pre`` ranks for one predicate-free step, sorted
        and deduplicated, or ``None`` if the test is inexpressible."""
        folded = self.test_filter(test)
        if folded is None:
            return None
        clause, params = folded
        store = self.store
        store.stats.pushdown_steps += 1
        context = sorted(set(pres))
        if axis == "child":
            out = self._child(context, clause, params, has_doc)
        elif axis in ("descendant", "descendant-or-self"):
            out = self._descendant(
                context, clause, params, axis == "descendant-or-self", has_doc
            )
        elif axis in ("ancestor", "ancestor-or-self"):
            out = self._ancestor(
                context, clause, params, axis == "ancestor-or-self"
            )
        else:  # following-sibling / preceding-sibling
            out = self._sibling(context, clause, params, axis == "following-sibling")
        return out

    # ------------------------------------------------------------------
    def _child(
        self, context: List[int], clause: str, params: Tuple, has_doc: bool
    ) -> List[int]:
        store = self.store
        accel = store._accel
        found: set = set()
        for chunk in _chunks(context, _MAX_PARAMS):
            marks = ",".join("?" * len(chunk))
            found.update(
                row[0]
                for row in store._execute_all(
                    f"SELECT pre FROM {accel} WHERE parent_pre IN ({marks}) "
                    f"AND {clause}",
                    (*chunk, *params),
                )
            )
        if has_doc:
            # the root element is the document node's only child
            found.update(
                row[0]
                for row in store._execute_all(
                    f"SELECT pre FROM {accel} WHERE parent_pre IS NULL "
                    f"AND pre >= 0 AND {clause}",
                    params,
                )
            )
        return sorted(found)

    def _descendant(
        self,
        context: List[int],
        clause: str,
        params: Tuple,
        or_self: bool,
        has_doc: bool,
    ) -> List[int]:
        store = self.store
        accel = store._accel
        if has_doc:
            # the document subsumes every interval: one candidate scan
            return [
                row[0]
                for row in store._execute_all(
                    f"SELECT pre FROM {accel} WHERE {clause} AND pre >= 0 "
                    f"ORDER BY pre",
                    params,
                )
            ]
        spans: List[Tuple[int, int]] = []
        for pre in context:
            end = store.end_of(pre)
            lo = pre if or_self else pre + 1
            if lo <= end:
                spans.append((lo, end))
        spans = _merge_intervals(spans)
        found: List[int] = []
        for chunk in _chunks(spans, _MAX_PARAMS // 2):
            ranges = " OR ".join("pre BETWEEN ? AND ?" for _ in chunk)
            bound = [value for span in chunk for value in span]
            found.extend(
                row[0]
                for row in store._execute_all(
                    f"SELECT pre FROM {accel} WHERE ({ranges}) AND {clause} "
                    f"ORDER BY pre",
                    (*bound, *params),
                )
            )
        # merged intervals are disjoint and chunked in ascending order,
        # so the per-statement ORDER BY pre keeps the whole list sorted
        return found

    def _ancestor(
        self, context: List[int], clause: str, params: Tuple, or_self: bool
    ) -> List[int]:
        store = self.store
        accel = store._accel
        found: set = set()
        posts = store._posts_of(context)
        pairs = list(zip(context, posts))
        for chunk in _chunks(pairs, _MAX_PARAMS // 2):
            # the accelerator predicate itself: pre < pre(v) AND
            # post > post(v), per context, OR-folded into one SELECT
            ors = " OR ".join("(pre < ? AND post > ?)" for _ in chunk)
            bound = [value for pair in chunk for value in pair]
            found.update(
                row[0]
                for row in store._execute_all(
                    f"SELECT DISTINCT pre FROM {accel} WHERE pre >= 0 "
                    f"AND ({ors}) AND {clause}",
                    (*bound, *params),
                )
            )
        if or_self:
            for chunk in _chunks(context, _MAX_PARAMS):
                marks = ",".join("?" * len(chunk))
                found.update(
                    row[0]
                    for row in store._execute_all(
                        f"SELECT pre FROM {accel} WHERE pre IN ({marks}) "
                        f"AND {clause}",
                        (*chunk, *params),
                    )
                )
        return sorted(found)

    def _sibling(
        self, context: List[int], clause: str, params: Tuple, following: bool
    ) -> List[int]:
        store = self.store
        accel = store._accel
        pairs: List[Tuple[int, int]] = []
        for pre in context:
            parent = store.parent_of(pre)
            if parent is not None:
                pairs.append((parent, pre))
        op = ">" if following else "<"
        found: set = set()
        for chunk in _chunks(pairs, _MAX_PARAMS // 2):
            ors = " OR ".join(f"(parent_pre = ? AND pre {op} ?)" for _ in chunk)
            bound = [value for pair in chunk for value in pair]
            found.update(
                row[0]
                for row in store._execute_all(
                    f"SELECT DISTINCT pre FROM {accel} WHERE ({ors}) "
                    f"AND {clause}",
                    (*bound, *params),
                )
            )
        return sorted(found)


class SqliteNodeStore(NodeStore):
    """NodeStore over a SQLite accel table (build-or-attach).

    Mirrors :class:`~repro.store.paged.PagedNodeStore`'s constructor
    discipline: if ``{name}__accel`` already exists in the target
    database, the store **attaches** to it (``built`` is False, no
    labeling needed, zero re-shred); otherwise it **shreds** from the
    supplied labeling and commits. Pass ``path`` for a durable file
    (or the default ``":memory:"``), or an existing ``connection`` to
    share one in-memory database across stores.

    Labels are the ``pre`` ranks (ints); ``labels_are_ranks`` lets
    dialect-translating wrappers (the resilient store) map them to a
    fallback's scheme labels by rank instead of by storage key.
    """

    store_kind = "sqlite"
    supports_batched = True
    labels_are_ranks = True

    __slots__ = (
        "name",
        "path",
        "connection",
        "built",
        "scheme_name",
        "deadline",
        "axis_pushdown",
        "before_query",
        "_accel",
        "_tags_table",
        "_attrs_table",
        "_generation",
        "_size",
        "_tags",
        "_tag_ids",
        "_row_cache",
        "_node_cache",
        "_label_by_id",
        "_order_by_id",
        "_tag_cache",
        "_kind_cache",
        "_parent_ranks",
        "_element_tags",
    )

    def __init__(
        self,
        name: str,
        labeling: Any = None,
        path: str = ":memory:",
        connection: Optional[sqlite3.Connection] = None,
    ):
        super().__init__()
        self.name = name
        self.path = path
        self._accel = _quoted(f"{name}__accel")
        self._tags_table = _quoted(f"{name}__tags")
        self._attrs_table = _quoted(f"{name}__attrs")
        if connection is not None:
            self.connection = connection
        else:
            try:
                self.connection = sqlite3.connect(path)
            except sqlite3.Error as exc:
                raise StorageError(f"cannot open sqlite file {path!r}: {exc}") from exc
        #: cooperative-cancellation budget forwarded by the evaluator;
        #: every statement execution and fetch batch is a tick
        self.deadline = None
        #: fault-injection hook (tests): called with the SQL text
        #: before every statement; may raise TransientFetchError
        self.before_query: Optional[Callable[[str], None]] = None
        self.built = False
        if not self._has_accel():
            if labeling is None:
                raise StorageError(
                    f"sqlite database {path!r} holds no accel table for "
                    f"{name!r} and no labeling was supplied to shred from"
                )
            self._shred(labeling)
            self.built = True
        meta = self._fetch_meta()
        self._generation: int = meta[0]
        self.scheme_name: str = meta[1]
        self._size: int = meta[2]
        self._tags: List[str] = self._load_tags()
        self._tag_ids: Dict[str, int] = {
            tag: tid for tid, tag in enumerate(self._tags)
        }
        self.axis_pushdown = SqlAxisPushdown(self)
        self._row_cache: "OrderedDict[int, Tuple]" = OrderedDict()
        self._node_cache: Dict[int, XmlNode] = {}
        self._label_by_id: Dict[int, int] = {}
        self._order_by_id: Dict[int, int] = {}
        self._tag_cache: Dict[str, List[int]] = {}
        self._kind_cache: Dict[str, List[int]] = {}
        self._parent_ranks: Optional[array] = None
        self._element_tags: Optional[set] = None

    # ------------------------------------------------------------------
    # Constructors mirroring the paged store's build-or-attach
    # ------------------------------------------------------------------
    @classmethod
    def shred(
        cls,
        name: str,
        labeling: Any,
        path: str = ":memory:",
        connection: Optional[sqlite3.Connection] = None,
    ) -> "SqliteNodeStore":
        """Shred ``labeling``'s document into a fresh accel table."""
        return cls(name, labeling=labeling, path=path, connection=connection)

    @classmethod
    def attach(
        cls,
        name: str,
        path: str = ":memory:",
        connection: Optional[sqlite3.Connection] = None,
    ) -> "SqliteNodeStore":
        """Attach to an existing accel table — no labeling, no
        re-shred; raises :class:`StorageError` if the table is not
        there."""
        return cls(name, labeling=None, path=path, connection=connection)

    # ------------------------------------------------------------------
    # Guarded execution: the one place SQL meets the connection
    # ------------------------------------------------------------------
    def _execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        if self.before_query is not None:
            self.before_query(sql)
        if self.deadline is not None:
            self.deadline.tick()
        self.stats.sql_queries += 1
        try:
            return self.connection.execute(sql, params)
        except sqlite3.OperationalError as exc:
            text = str(exc).lower()
            if any(marker in text for marker in _TRANSIENT_MARKERS):
                raise TransientFetchError(f"sqlite read failed: {exc}") from exc
            raise StorageError(f"sqlite error: {exc}") from exc
        except sqlite3.Error as exc:
            raise StorageError(f"sqlite error: {exc}") from exc

    def _execute_all(self, sql: str, params: Sequence = ()) -> List[Tuple]:
        """Execute and drain in deadline-ticked batches."""
        cursor = self._execute(sql, params)
        rows: List[Tuple] = []
        while True:
            batch = cursor.fetchmany(_FETCH_BATCH)
            if not batch:
                break
            self.stats.sql_rows += len(batch)
            if self.deadline is not None:
                self.deadline.tick(items=len(batch))
            rows.extend(batch)
        return rows

    def _execute_one(self, sql: str, params: Sequence = ()) -> Optional[Tuple]:
        cursor = self._execute(sql, params)
        row = cursor.fetchone()
        if row is not None:
            self.stats.sql_rows += 1
        return row

    # ------------------------------------------------------------------
    # Shredding
    # ------------------------------------------------------------------
    def _has_accel(self) -> bool:
        row = self._execute_one(
            "SELECT name FROM sqlite_master WHERE type = 'table' AND name = ?",
            (f"{self.name}__accel",),
        )
        return row is not None

    def _shred(self, labeling: Any) -> None:
        """One pass over the labeling's rank index into the accel
        table: pre/post/level from each scheme's *own* rank index and
        parent arithmetic, so a buggy scheme diverges here rather than
        silently inheriting a shared traversal."""
        index_builder = getattr(labeling, "rank_index", None)
        if index_builder is None:
            raise StorageError(
                f"{type(labeling).__name__} exposes no rank_index to shred from"
            )
        index = index_builder()
        generation = getattr(labeling, "generation", 0)
        scheme = getattr(labeling, "scheme_name", type(labeling).__name__)
        size = len(index.rank)
        labels_by_rank: List[Any] = [None] * size
        for label, rank in index.rank.items():
            labels_by_rank[rank] = label
        node_of = labeling.node_of
        parent_arithmetic = getattr(labeling, "parent_label", None)
        if parent_arithmetic is None:
            parent_arithmetic = labeling.rparent

        tags: List[str] = []
        tag_ids: Dict[str, int] = {}
        levels = array("q", bytes(8 * size)) if size else array("q")
        accel_rows: List[Tuple] = []
        attr_rows: List[Tuple] = []
        rank_of = index.rank
        end_of = index.end
        for pre, label in enumerate(labels_by_rank):
            node = node_of(label)
            try:
                parent = parent_arithmetic(label)
                parent_pre: Optional[int] = rank_of[parent]
            except NoParentError:
                parent_pre = None
            level = 0 if parent_pre is None else levels[parent_pre] + 1
            levels[pre] = level
            post = end_of[label] - level  # post = pre + size − 1 − level
            kind = node.kind
            kind_code = _CODE_BY_KIND[kind]
            tag = node.tag
            tag_id = tag_ids.get(tag)
            if tag_id is None:
                tag_id = len(tags)
                tag_ids[tag] = tag_id
                tags.append(tag)
            value = node.text if node.text else None
            accel_rows.append(
                (pre, post, level, parent_pre, kind_code, tag_id, value)
            )
            if kind is NodeKind.ELEMENT and node.attributes:
                attr_rows.extend(
                    (pre, attr_name, attr_value)
                    for attr_name, attr_value in sorted(node.attributes.items())
                )

        accel = self._accel
        connection = self.connection
        try:
            connection.execute(
                f"CREATE TABLE {accel} ("
                "pre INTEGER PRIMARY KEY, post INTEGER NOT NULL, "
                "level INTEGER NOT NULL, parent_pre INTEGER, "
                "kind INTEGER NOT NULL, tag_id INTEGER NOT NULL, value TEXT)"
            )
            connection.execute(
                f"CREATE TABLE {self._tags_table} "
                "(tag_id INTEGER PRIMARY KEY, tag TEXT NOT NULL)"
            )
            connection.execute(
                f"CREATE TABLE {self._attrs_table} "
                "(pre INTEGER NOT NULL, name TEXT NOT NULL, value TEXT NOT NULL)"
            )
            connection.execute(
                f"INSERT INTO {accel} VALUES (?, ?, ?, ?, ?, ?, ?)",
                (_META_PRE, generation, -1, None, _META_KIND, NO_RANK, scheme),
            )
            connection.executemany(
                f"INSERT INTO {accel} VALUES (?, ?, ?, ?, ?, ?, ?)", accel_rows
            )
            connection.executemany(
                f"INSERT INTO {self._tags_table} VALUES (?, ?)",
                list(enumerate(tags)),
            )
            connection.executemany(
                f"INSERT INTO {self._attrs_table} VALUES (?, ?, ?)", attr_rows
            )
            connection.execute(
                f"CREATE INDEX {_quoted(self.name + '__accel_tag')} "
                f"ON {accel}(tag_id, pre)"
            )
            connection.execute(
                f"CREATE INDEX {_quoted(self.name + '__accel_parent')} "
                f"ON {accel}(parent_pre)"
            )
            connection.execute(
                f"CREATE INDEX {_quoted(self.name + '__accel_post')} "
                f"ON {accel}(post)"
            )
            connection.execute(
                f"CREATE INDEX {_quoted(self.name + '__attrs_pre')} "
                f"ON {self._attrs_table}(pre)"
            )
            connection.commit()
        except sqlite3.Error as exc:
            raise StorageError(f"sqlite shred failed: {exc}") from exc

    def _fetch_meta(self) -> Tuple[int, str, int]:
        meta = self._execute_one(
            f"SELECT post, value FROM {self._accel} WHERE pre = ? AND kind = ?",
            (_META_PRE, _META_KIND),
        )
        if meta is None:
            raise StorageError(
                f"table {self.name}__accel carries no accel metadata"
            )
        count = self._execute_one(
            f"SELECT COUNT(*) FROM {self._accel} WHERE pre >= 0"
        )
        return int(meta[0]), meta[1], int(count[0])

    def _load_tags(self) -> List[str]:
        rows = self._execute_all(
            f"SELECT tag_id, tag FROM {self._tags_table} ORDER BY tag_id"
        )
        return [row[1] for row in rows]

    def _tag_id(self, tag: str) -> Optional[int]:
        return self._tag_ids.get(tag)

    # ------------------------------------------------------------------
    # Point probes
    # ------------------------------------------------------------------
    def _row(self, label: Label) -> Tuple:
        """(pre, post, level, parent_pre, kind, tag_id, value) for one
        label, LRU cached."""
        cache = self._row_cache
        row = cache.get(label)
        if row is not None:
            cache.move_to_end(label)
            return row
        self.stats.rank_probes += 1
        if isinstance(label, int) and not isinstance(label, bool) and label >= 0:
            row = self._execute_one(
                f"SELECT * FROM {self._accel} WHERE pre = ?", (label,)
            )
        else:
            row = None
        if row is None:
            raise UnknownLabelError(
                f"label {label!r} not in {self.name}__accel"
            )
        cache[label] = row
        if len(cache) > _ROW_CACHE_LIMIT:
            cache.popitem(last=False)
        return row

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self._generation

    def size(self) -> int:
        return self._size

    def root_label(self) -> Label:
        return 0

    def rank_of(self, label: Label) -> int:
        # the dialect's labels *are* preorder ranks; validate membership
        self._row(label)
        return label

    def end_of(self, label: Label) -> int:
        row = self._row(label)
        return row[1] + row[2]  # end = post + level

    def label_at(self, rank: int) -> Label:
        self.stats.rank_probes += 1
        if 0 <= rank < self._size:
            return rank
        raise UnknownLabelError(f"no label at rank {rank}")

    def post_of(self, label: Label) -> int:
        """Postorder rank (the accel table's second coordinate)."""
        return self._row(label)[1]

    def level_of(self, label: Label) -> int:
        """Depth below the root element."""
        return self._row(label)[2]

    def _posts_of(self, pres: List[int]) -> List[int]:
        return [self._row(pre)[1] for pre in pres]

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def parent_of(self, label: Label) -> Optional[Label]:
        self.stats.parent_hops += 1
        return self._row(label)[3]

    def children_of(self, label: Label) -> List[Label]:
        self.rank_of(label)  # membership check
        return [
            row[0]
            for row in self._execute_all(
                f"SELECT pre FROM {self._accel} WHERE parent_pre = ? "
                f"AND kind != {KIND_ATTRIBUTE} ORDER BY pre",
                (label,),
            )
        ]

    def attribute_labels(self, label: Label) -> List[Label]:
        self.rank_of(label)
        return [
            row[0]
            for row in self._execute_all(
                f"SELECT pre FROM {self._accel} WHERE parent_pre = ? "
                f"AND kind = {KIND_ATTRIBUTE} ORDER BY pre",
                (label,),
            )
        ]

    def descendant_labels(self, label: Label, or_self: bool = False) -> List[Label]:
        """One primary-key range scan: the pre/post window collapses to
        ``pre BETWEEN lo AND end`` because end = post + level."""
        row = self._row(label)
        low = label if or_self else label + 1
        high = row[1] + row[2]
        return [
            r[0]
            for r in self._execute_all(
                f"SELECT pre FROM {self._accel} WHERE pre BETWEEN ? AND ? "
                f"AND kind != {KIND_ATTRIBUTE} ORDER BY pre",
                (low, high),
            )
        ]

    def ancestor_labels(self, label: Label, or_self: bool = False) -> List[Label]:
        """The accelerator predicate itself: pre < pre(v) AND
        post > post(v), one SELECT, naturally root-first in pre order."""
        row = self._row(label)
        chain = [
            r[0]
            for r in self._execute_all(
                f"SELECT pre FROM {self._accel} WHERE pre >= 0 AND pre < ? "
                f"AND post > ? ORDER BY pre",
                (label, row[1]),
            )
        ]
        if or_self:
            chain.append(label)
        return chain

    # ------------------------------------------------------------------
    # Record fetch
    # ------------------------------------------------------------------
    def record(self, label: Label) -> NodeRecord:
        self.stats.fetches += 1
        row = self._row(label)
        return NodeRecord(
            label, self._tags[row[5]], _KIND_BY_CODE[row[4]], row[6]
        )

    def node_for(self, label: Label) -> XmlNode:
        node = self._node_cache.get(label)
        if node is not None:
            return node
        self.stats.fetches += 1
        row = self._row(label)
        kind = _KIND_BY_CODE[row[4]]
        attributes = None
        if kind is NodeKind.ELEMENT:
            pairs = self.attributes_of(label)
            if pairs:
                attributes = dict(pairs)
        node = XmlNode(self._tags[row[5]], kind, attributes=attributes, text=row[6])
        self._node_cache[label] = node
        self._label_by_id[node.node_id] = label
        self._order_by_id[node.node_id] = label  # label == preorder rank
        return node

    def label_for(self, node: XmlNode) -> Label:
        try:
            return self._label_by_id[node.node_id]
        except KeyError:
            raise UnknownLabelError(
                f"node {node!r} was not materialised by this store"
            ) from None

    # ------------------------------------------------------------------
    # Candidate enumeration — per-tag index-range scans
    # ------------------------------------------------------------------
    def labels_with_tag(self, tag: str) -> List[Label]:
        self.stats.tag_lookups += 1
        cached = self._tag_cache.get(tag)
        if cached is not None:
            return cached
        tag_id = self._tag_id(tag)
        if tag_id is None:
            labels: List[Label] = []
        else:
            # (tag_id, pre) index: one range scan, already in pre order
            labels = [
                row[0]
                for row in self._execute_all(
                    f"SELECT pre FROM {self._accel} WHERE tag_id = ? "
                    f"AND kind = {KIND_ELEMENT} ORDER BY pre",
                    (tag_id,),
                )
            ]
        self._tag_cache[tag] = labels
        return labels

    def tag_ranks(self, tag: str) -> Sequence[int]:
        self.stats.columnar_tag_scans += 1
        return array("q", self.labels_with_tag(tag))

    def parent_rank_array(self) -> Sequence[int]:
        """rank → parent rank as one flat buffer (one scan, cached) —
        what the evaluator's batched Python child step consumes when
        pushdown is disabled."""
        parents = self._parent_ranks
        if parents is None:
            parents = array("q")
            for row in self._execute_all(
                f"SELECT parent_pre FROM {self._accel} WHERE pre >= 0 "
                f"ORDER BY pre"
            ):
                parents.append(NO_RANK if row[0] is None else row[0])
            self._parent_ranks = parents
        return parents

    def _kind_labels(self, key: str, clause: str) -> List[Label]:
        cached = self._kind_cache.get(key)
        if cached is None:
            cached = [
                row[0]
                for row in self._execute_all(
                    f"SELECT pre FROM {self._accel} WHERE pre >= 0 "
                    f"AND {clause} ORDER BY pre"
                )
            ]
            self._kind_cache[key] = cached
        return cached

    def element_labels(self) -> List[Label]:
        return self._kind_labels("element", f"kind = {KIND_ELEMENT}")

    def text_labels(self) -> List[Label]:
        return self._kind_labels("text", f"kind = {KIND_TEXT}")

    def comment_labels(self) -> List[Label]:
        return self._kind_labels("comment", f"kind = {KIND_COMMENT}")

    def structural_labels(self) -> List[Label]:
        return self._kind_labels("structural", f"kind != {KIND_ATTRIBUTE}")

    def has_tag(self, tag: str) -> bool:
        # synopsis over *element* tags only — the tag dictionary also
        # holds '#text'-style names for untagged kinds
        tags = self._element_tags
        if tags is None:
            tags = {
                self._tags[row[0]]
                for row in self._execute_all(
                    f"SELECT DISTINCT tag_id FROM {self._accel} "
                    f"WHERE kind = {KIND_ELEMENT}"
                )
            }
            self._element_tags = tags
        return tag in tags

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------
    def attributes_of(self, label: Label) -> Tuple[Tuple[str, str], ...]:
        self.rank_of(label)
        return tuple(
            (row[0], row[1])
            for row in self._execute_all(
                f"SELECT name, value FROM {self._attrs_table} WHERE pre = ? "
                f"ORDER BY name",
                (label,),
            )
        )

    def string_value(self, label: Label) -> str:
        row = self._row(label)
        kind = row[4]
        if kind in (KIND_TEXT, KIND_ATTRIBUTE, KIND_COMMENT):
            return row[6] or ""
        # element: join the subtree's text contributions in pre order —
        # one pk range scan
        return "".join(
            r[0] or ""
            for r in self._execute_all(
                f"SELECT value FROM {self._accel} WHERE pre BETWEEN ? AND ? "
                f"AND kind IN ({KIND_ELEMENT}, {KIND_TEXT}) "
                f"AND value IS NOT NULL ORDER BY pre",
                (label, row[1] + row[2]),
            )
        )

    # ------------------------------------------------------------------
    # Evaluation support
    # ------------------------------------------------------------------
    def order_by_id(self) -> Dict[int, int]:
        # live and growing, like the paged store's map
        return self._order_by_id

    def path_of(self, label: Label) -> str:
        chain = self.ancestor_labels(label, or_self=True)
        return "/" + "/".join(self._tags[self._row(entry)[5]] for entry in chain)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying connection (attached stores reopen from
        the file with zero re-shred)."""
        self.connection.close()

    def __repr__(self) -> str:
        return (
            f"<SqliteNodeStore {self.name!r} {self.scheme_name} "
            f"gen={self._generation} nodes={self._size} path={self.path!r}>"
        )
