"""The unified node-access protocol.

The paper's central claim (§3.2, Fig. 6) is that rUID identifiers plus
the in-memory table K let every axis be resolved by *label arithmetic
with at most one fetch per node*. :class:`NodeStore` is the interface
that makes the claim testable across deployments: it exposes exactly
the operations the read path needs — tag lookup, rank/interval access,
label → node-record fetch, parent computation — and nothing that ties
a consumer to a live DOM.

Four implementations cover the system's deployment shapes:

* :class:`~repro.store.memory.MemoryNodeStore` wraps a live tree plus
  its labeling and rank index (the all-in-RAM configuration every
  experiment before E17 ran on);
* :class:`~repro.store.paged.PagedNodeStore` reads shredded documents
  through the pager's buffer pool, so documents larger than RAM stay
  queryable and every fetch is visible as page traffic;
* :class:`~repro.concurrent.snapshot.StructuralView` is the frozen
  per-generation snapshot the concurrent access layer hands to
  readers;
* :class:`~repro.store.sqlite.SqliteNodeStore` shreds into a SQLite
  accel table (the XPath Accelerator encoding) — the restart-durable
  shape, with whole axis steps pushed down as SQL range predicates.

Every store charges a :class:`StoreStats` ledger. ``fetches`` counts
label → record dereferences — the quantity the paper bounds at one per
result node — and the paged store adds the buffer-pool traffic those
fetches caused, so ``EXPLAIN ANALYZE`` can print physical counters per
query (docs/STORAGE_QUERY.md).
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.xmltree.node import NodeKind, XmlNode

Label = Hashable


class NodeRecord:
    """The stored facts about one node: what a single fetch returns.

    Deliberately smaller than :class:`~repro.xmltree.node.XmlNode` —
    no parent/children pointers, no mutable attribute dict — because a
    record is what crosses the storage boundary, not a DOM.
    """

    __slots__ = ("label", "tag", "kind", "text")

    def __init__(self, label: Label, tag: str, kind: NodeKind, text: Optional[str]):
        self.label = label
        self.tag = tag
        self.kind = kind
        self.text = text

    def __repr__(self) -> str:
        return f"<NodeRecord {self.kind.value} {self.tag!r} label={self.label!r}>"


class StoreStats:
    """Physical access counters for one store.

    Plain unlocked ints: these sit on per-dereference hot paths, and
    every store is either single-writer (memory, paged) or effectively
    read-only (snapshot), so the lost-update window of ``+=`` is not
    worth a lock here. Ledgers that *are* shared across racing writers
    (IoStats, QueryStats) stay locked.
    """

    __slots__ = (
        "fetches",
        "tag_lookups",
        "rank_probes",
        "parent_hops",
        "columnar_builds",
        "columnar_slices",
        "columnar_tag_scans",
        "sql_queries",
        "sql_rows",
        "pushdown_steps",
    )

    def __init__(self) -> None:
        self.fetches = 0
        self.tag_lookups = 0
        self.rank_probes = 0
        self.parent_hops = 0
        self.columnar_builds = 0
        self.columnar_slices = 0
        self.columnar_tag_scans = 0
        # SQL-backed stores only: statements issued, rows drained from
        # cursors, and whole axis steps answered by SQL pushdown
        self.sql_queries = 0
        self.sql_rows = 0
        self.pushdown_steps = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "fetches": self.fetches,
            "tag_lookups": self.tag_lookups,
            "rank_probes": self.rank_probes,
            "parent_hops": self.parent_hops,
            "columnar_builds": self.columnar_builds,
            "columnar_slices": self.columnar_slices,
            "columnar_tag_scans": self.columnar_tag_scans,
            "sql_queries": self.sql_queries,
            "sql_rows": self.sql_rows,
            "pushdown_steps": self.pushdown_steps,
        }

    def __repr__(self) -> str:
        return f"<StoreStats fetches={self.fetches} tag_lookups={self.tag_lookups}>"


class NodeStore:
    """Label-addressed access to one document generation.

    Labels are opaque hashables: scheme label objects for the memory
    store, flattened storage key tuples for the paged store, and
    ``node_id`` ints for the snapshot view. Consumers never look inside
    a label — structure comes from ranks, intervals and
    :meth:`parent_of`, exactly the operations the numbering scheme
    guarantees are computable.

    All sequence-returning methods yield labels in document (preorder
    rank) order, excluding attribute nodes unless stated otherwise.
    """

    #: human-readable implementation tag for plans and tables
    store_kind: str = "abstract"
    #: the numbering scheme the store was built from
    scheme_name: str = "unknown"
    #: True when the store serves rank columns from contiguous array
    #: buffers, so set-at-a-time evaluation over raw ranks is cheaper
    #: than per-node probing; wrappers that charge per call (the
    #: resilient store) leave this False to keep their call accounting
    supports_batched: bool = False
    #: an axis-pushdown helper (``step(pres, axis, test, has_doc)``)
    #: the StoreEvaluator consults before its Python paths, or None;
    #: only stores whose dialect can answer whole steps natively (the
    #: SQL store) provide one
    axis_pushdown = None
    #: True when the store's labels *are* preorder ranks (plain ints),
    #: letting dialect-translating wrappers map them by rank
    labels_are_ranks: bool = False

    #: slotted so that slotted implementations (StructuralView) stay
    #: slotted; dict-backed implementations simply don't declare
    #: __slots__ of their own
    __slots__ = ("stats",)

    def __init__(self) -> None:
        self.stats = StoreStats()

    # -- identity -------------------------------------------------------
    @property
    def generation(self) -> int:
        """Labeling generation this store serves."""
        raise NotImplementedError

    def size(self) -> int:
        """Number of labeled nodes (attributes included)."""
        raise NotImplementedError

    def root_label(self) -> Label:
        """Label of the document's root element."""
        raise NotImplementedError

    # -- rank / interval access -----------------------------------------
    def rank_of(self, label: Label) -> int:
        """Preorder rank of *label* (raises UnknownLabelError)."""
        raise NotImplementedError

    def end_of(self, label: Label) -> int:
        """Rank of the last node in *label*'s subtree."""
        raise NotImplementedError

    def label_at(self, rank: int) -> Label:
        """Label holding preorder rank *rank*."""
        raise NotImplementedError

    # -- structure -------------------------------------------------------
    def parent_of(self, label: Label) -> Optional[Label]:
        """Parent's label, or None at the root. Computed by scheme
        arithmetic (memory) or from the arithmetic persisted at shred
        time (paged/snapshot) — never by chasing live DOM pointers."""
        raise NotImplementedError

    def children_of(self, label: Label) -> List[Label]:
        """Structural (non-attribute) children, document order."""
        raise NotImplementedError

    # -- record fetch ----------------------------------------------------
    def record(self, label: Label) -> NodeRecord:
        """One fetch: the stored record for *label*."""
        raise NotImplementedError

    def node_for(self, label: Label) -> XmlNode:
        """An :class:`XmlNode` carrying *label*'s content — the live
        node where one exists, a lazily materialised record node
        otherwise. Counts as a fetch."""
        raise NotImplementedError

    def label_for(self, node: XmlNode) -> Label:
        """Reverse lookup (raises UnknownLabelError for nodes this
        store never produced, e.g. transient attribute nodes)."""
        raise NotImplementedError

    # -- candidate enumeration -------------------------------------------
    def labels_with_tag(self, tag: str) -> List[Label]:
        """Element labels with *tag*, document order."""
        raise NotImplementedError

    def element_labels(self) -> List[Label]:
        raise NotImplementedError

    def text_labels(self) -> List[Label]:
        raise NotImplementedError

    def comment_labels(self) -> List[Label]:
        raise NotImplementedError

    def structural_labels(self) -> List[Label]:
        """Every non-attribute label, document order."""
        raise NotImplementedError

    def has_tag(self, tag: str) -> bool:
        """Synopsis check: can *tag* match anywhere at all?"""
        return bool(self.labels_with_tag(tag))

    # -- values ----------------------------------------------------------
    def attributes_of(self, label: Label) -> Tuple[Tuple[str, str], ...]:
        """Sorted (name, value) attribute pairs of an element."""
        raise NotImplementedError

    def attribute_labels(self, label: Label) -> List[Label]:
        """Labels of *materialised* attribute children (empty when the
        document keeps attributes in dict form only)."""
        raise NotImplementedError

    def string_value(self, label: Label) -> str:
        """XPath string-value of the node at *label*."""
        raise NotImplementedError

    # -- evaluation support ----------------------------------------------
    def order_by_id(self) -> Dict[int, int]:
        """``node_id`` → preorder rank for every node this store has
        handed out; used by evaluators to sort result sets."""
        raise NotImplementedError

    def tag_ranks(self, tag: str) -> Sequence[int]:
        """Preorder ranks of the elements carrying *tag*, aligned with
        :meth:`labels_with_tag`. Columnar stores return a shared
        ``array('q')`` buffer; this default computes one."""
        return array("q", (self.rank_of(lb) for lb in self.labels_with_tag(tag)))

    def parent_rank_array(self) -> Optional[Sequence[int]]:
        """rank → parent rank (−1 at the root) as one flat buffer, or
        None when the store has no columnar backing — consumers fall
        back to per-node :meth:`parent_of` hops."""
        return None

    # -- shared derived operations ---------------------------------------
    def descendant_labels(self, label: Label, or_self: bool = False) -> List[Label]:
        """Structural descendants via the rank interval. Implementations
        with a better plan (contiguous id slices, range scans) override."""
        low = self.rank_of(label) + (0 if or_self else 1)
        high = self.end_of(label)
        out: List[Label] = []
        for rank in range(low, high + 1):
            candidate = self.label_at(rank)
            if self.record(candidate).kind is not NodeKind.ATTRIBUTE:
                out.append(candidate)
        return out

    def structural_labels_between(self, low: int, high: int) -> List[Label]:
        """Structural (non-attribute) labels with preorder rank in the
        inclusive interval ``[low, high]``, document order. Stores with
        a rank column answer with one bisect + slice; this default
        probes rank by rank."""
        from repro.errors import UnknownLabelError

        out: List[Label] = []
        for rank in range(max(low, 0), high + 1):
            try:
                candidate = self.label_at(rank)
            except UnknownLabelError:
                break
            if self.record(candidate).kind is not NodeKind.ATTRIBUTE:
                out.append(candidate)
        return out

    def ancestor_labels(self, label: Label, or_self: bool = False) -> List[Label]:
        """Ancestors root-first, by parent hops."""
        chain: List[Label] = [label] if or_self else []
        current = self.parent_of(label)
        while current is not None:
            chain.append(current)
            current = self.parent_of(current)
        chain.reverse()
        return chain

    def path_of(self, label: Label) -> str:
        """Slash-joined tag path root → node (matches
        :meth:`XmlNode.path` for live trees) — ancestry comes from
        parent arithmetic, so it works on stores with no DOM."""
        chain = self.ancestor_labels(label, or_self=True)
        return "/" + "/".join(self.record(entry).tag for entry in chain)

    def stats_snapshot(self) -> Dict[str, int]:
        """Counter snapshot; paged stores add buffer-pool traffic."""
        return self.stats.as_dict()

    def stats_delta(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Difference between now and an earlier :meth:`stats_snapshot`."""
        now = self.stats_snapshot()
        return {key: now[key] - earlier.get(key, 0) for key in now}

    def bind(self, registry: Any, prefix: str = "store") -> None:
        """Expose the physical counters as ``prefix.*`` pull metrics."""
        registry.register_source(prefix, self.stats_snapshot)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.scheme_name} "
            f"gen={self.generation} nodes={self.size()}>"
        )
