"""Columnar structural index: flat integer arrays over one generation.

The rank index made ancestry an integer comparison, but its integers
still live in per-label dict entries. This module takes the next step
the ROADMAP's "succinct labels and array-backed stores" item calls
for: materialise the structure columns — subtree end, parent rank,
tag id, node kind — as contiguous ``array`` buffers indexed by
preorder rank, built in the same single DFS as
:class:`~repro.core.rankindex.RankIndex`.

With those buffers every hot structural question is array arithmetic:

* descendants of rank *r* are the slice ``(r, end[r]]`` of the
  structural rank column (one bisect, no per-node kind checks);
* children are the sibling chain ``r+1, end[r+1]+1, ...`` — no child
  lists are stored at all;
* parenthood is ``parent[r]`` — one indexed load;
* tag candidates are precomputed per-tag rank arrays, aligned with the
  label lists the evaluators consume.

The buffers are machine-word packed (``array('q')`` / ``array('i')`` /
``array('b')``), so a node's structure costs ~21 bytes instead of a
constellation of dict entries and tuples. Like the rank index, a
columnar index is stamped with the generation that produced it and is
discarded wholesale on structural updates.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Dict, Hashable, Iterable, List, Optional, Tuple, TYPE_CHECKING

from repro.xmltree.node import NodeKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.rankindex import RankIndex

#: kind codes stored in the ``kind`` column (one signed byte each)
KIND_ELEMENT = 0
KIND_TEXT = 1
KIND_COMMENT = 2
KIND_ATTRIBUTE = 3
KIND_PI = 4
KIND_DOCUMENT = 5

_KIND_CODE = {
    NodeKind.ELEMENT: KIND_ELEMENT,
    NodeKind.TEXT: KIND_TEXT,
    NodeKind.COMMENT: KIND_COMMENT,
    NodeKind.ATTRIBUTE: KIND_ATTRIBUTE,
    NodeKind.PROCESSING_INSTRUCTION: KIND_PI,
    NodeKind.DOCUMENT: KIND_DOCUMENT,
}

_CODE_BY_VALUE = {kind.value: code for kind, code in _KIND_CODE.items()}

#: ranks column sentinel: "no parent" / "not an element"
NO_RANK = -1


class ColumnarIndex:
    """Flat-array structure columns for one labeling generation.

    ``labels_by_rank[r]`` is the label at preorder rank ``r``; every
    other column is indexed by the same rank. Labels stay opaque — the
    arrays carry the structure, the label list carries the identities.
    """

    __slots__ = (
        "generation",
        "size",
        "labels_by_rank",
        "rank_by_label",
        "end",
        "parent",
        "kind",
        "tag_id",
        "tags",
        "tag_ranks",
        "structural",
        "element_ranks",
        "text_ranks",
        "comment_ranks",
        "_rank_index",
        "_empty_ranks",
    )

    def __init__(self, generation: int):
        self.generation = generation
        self.size = 0
        self.labels_by_rank: List[Hashable] = []
        self.rank_by_label: Dict[Hashable, int] = {}
        #: rank → last rank inside the subtree
        self.end = array("q")
        #: rank → parent rank (NO_RANK at the root)
        self.parent = array("q")
        #: rank → kind code (KIND_ELEMENT, ...)
        self.kind = array("b")
        #: rank → tag id for elements, NO_RANK otherwise
        self.tag_id = array("i")
        #: tag id → tag string
        self.tags: List[str] = []
        #: tag → rank array of its elements (document order)
        self.tag_ranks: Dict[str, array] = {}
        #: sorted ranks of every non-attribute node
        self.structural = array("q")
        self.element_ranks = array("q")
        self.text_ranks = array("q")
        self.comment_ranks = array("q")
        self._rank_index: Optional["RankIndex"] = None
        self._empty_ranks = array("q")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, labeling, generation: int) -> "ColumnarIndex":
        """One DFS over the labeled tree, filling every column.

        The traversal order is identical to
        :meth:`RankIndex.build <repro.core.rankindex.RankIndex.build>`,
        so ranks agree between the two indexes for the same generation.
        """
        index = cls(generation)
        label_of = labeling.label_of
        append = index._append_node
        counter = 0
        end = index.end
        # Stack entries: (node, parent_rank) to enter, (None, rank) to exit.
        stack: List[Tuple] = [(labeling.tree.root, NO_RANK)]
        while stack:
            node, info = stack.pop()
            if node is None:
                end[info] = counter - 1
                continue
            rank = counter
            counter += 1
            append(label_of(node), rank, info, node.kind, node.tag)
            stack.append((None, rank))
            for child in reversed(node.children):
                stack.append((child, rank))
        index.size = counter
        return index

    @classmethod
    def from_rank_rows(cls, rows: Iterable[Tuple], generation: int) -> "ColumnarIndex":
        """Build from persisted ``__ranks`` rows (rank order), as the
        paged store reads them back: ``(rank, label, end, parent_label,
        tag, kind_value, ...)``. Parents precede children in rank
        order, so parent labels always resolve during the single scan."""
        index = cls(generation)
        counter = 0
        rank_by_label = index.rank_by_label
        for row in rows:
            label = row[1]
            parent_label = row[3]
            parent_rank = NO_RANK if parent_label is None else rank_by_label[parent_label]
            kind_code = _CODE_BY_VALUE[row[5]]
            index._append_row(label, counter, parent_rank, kind_code, row[4])
            index.end.append(row[2])
            counter += 1
        index.size = counter
        return index

    def _append_node(self, label, rank: int, parent_rank: int, kind: NodeKind, tag: str) -> None:
        self._append_row(label, rank, parent_rank, _KIND_CODE[kind], tag)
        self.end.append(0)  # patched at subtree exit

    def _append_row(self, label, rank: int, parent_rank: int, kind_code: int, tag: str) -> None:
        self.labels_by_rank.append(label)
        self.rank_by_label[label] = rank
        self.parent.append(parent_rank)
        self.kind.append(kind_code)
        if kind_code == KIND_ELEMENT:
            bucket = self.tag_ranks.get(tag)
            if bucket is None:
                self.tag_ranks[tag] = bucket = array("q")
                self.tags.append(tag)
                tag_id = len(self.tags) - 1
            else:
                tag_id = self.tag_id[bucket[0]]
            bucket.append(rank)
            self.tag_id.append(tag_id)
            self.element_ranks.append(rank)
            self.structural.append(rank)
        else:
            self.tag_id.append(NO_RANK)
            if kind_code != KIND_ATTRIBUTE:
                self.structural.append(rank)
                if kind_code == KIND_TEXT:
                    self.text_ranks.append(rank)
                elif kind_code == KIND_COMMENT:
                    self.comment_ranks.append(rank)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def rank_of(self, label) -> int:
        """Preorder rank (raises KeyError for unknown labels)."""
        return self.rank_by_label[label]

    def label_at(self, rank: int):
        return self.labels_by_rank[rank]

    def end_at(self, rank: int) -> int:
        return self.end[rank]

    def parent_rank_at(self, rank: int) -> int:
        return self.parent[rank]

    def tag_at(self, rank: int) -> Optional[str]:
        tid = self.tag_id[rank]
        return None if tid < 0 else self.tags[tid]

    def tag_rank_array(self, tag: str) -> array:
        """Ranks of the elements carrying *tag* (document order); an
        empty shared buffer for unknown tags."""
        return self.tag_ranks.get(tag, self._empty_ranks)

    def labels_for(self, ranks: Iterable[int]) -> List:
        by_rank = self.labels_by_rank
        return [by_rank[r] for r in ranks]

    # ------------------------------------------------------------------
    # Structure arithmetic
    # ------------------------------------------------------------------
    def children_ranks(self, rank: int, attributes: bool = False) -> List[int]:
        """Child ranks via the sibling chain ``r+1, end[r+1]+1, ...`` —
        pure array walks, no stored child lists."""
        end = self.end
        kind = self.kind
        wanted = KIND_ATTRIBUTE if attributes else None
        out: List[int] = []
        limit = end[rank]
        child = rank + 1
        while child <= limit:
            code = kind[child]
            if (code == KIND_ATTRIBUTE) == (wanted is not None):
                out.append(child)
            child = end[child] + 1
        return out

    def structural_slice_ranks(self, rank: int, or_self: bool = False) -> array:
        """Non-attribute ranks inside *rank*'s subtree interval."""
        structural = self.structural
        locate = bisect_left if or_self else bisect_right
        lo = locate(structural, rank)
        hi = bisect_right(structural, self.end[rank])
        return structural[lo:hi]

    def structural_slice(self, rank: int, or_self: bool = False) -> List:
        """Labels of the non-attribute subtree of *rank* (doc order)."""
        return self.labels_for(self.structural_slice_ranks(rank, or_self))

    def covers(self, upper_rank: int, lower_rank: int, self_or: bool = False) -> bool:
        if upper_rank == lower_rank:
            return self_or
        return upper_rank < lower_rank <= self.end[upper_rank]

    # ------------------------------------------------------------------
    # Interop / accounting
    # ------------------------------------------------------------------
    def as_rank_index(self) -> "RankIndex":
        """A :class:`RankIndex` sharing this generation's ranks — dict
        views over the same DFS, built once and cached."""
        from repro.core.rankindex import RankIndex

        index = self._rank_index
        if index is None:
            end = self.end
            rank_map: Dict[Hashable, int] = self.rank_by_label
            end_map = {
                label: end[rank] for label, rank in rank_map.items()
            }
            index = RankIndex(rank_map, end_map, self.generation)
            self._rank_index = index
        return index

    def buffer_bytes(self) -> int:
        """Bytes held by the packed structure buffers (labels and the
        rank dict are identity, not structure, and are excluded)."""
        total = 0
        for buffer in (
            self.end,
            self.parent,
            self.kind,
            self.tag_id,
            self.structural,
            self.element_ranks,
            self.text_ranks,
            self.comment_ranks,
        ):
            total += len(buffer) * buffer.itemsize
        for bucket in self.tag_ranks.values():
            total += len(bucket) * bucket.itemsize
        return total

    def bytes_per_node(self) -> float:
        return self.buffer_bytes() / self.size if self.size else 0.0

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"<ColumnarIndex nodes={self.size} tags={len(self.tags)} "
            f"generation={self.generation}>"
        )
