"""XPath axis generation from rUID identifiers — paper §3.5.

The paper demonstrates rUID's "XPath axes expressiveness" with routines
``rparent``, ``rancestor``, ``rchildren``, ``rdescendant``,
``rpsibling``, ``rfsibling``, ``rpreceding`` and ``rfollowing``. This
module implements all of them.

Two layers are exposed, mirroring the paper's distinction between
identifier arithmetic and data access:

* **candidate** routines — pure (κ, K) arithmetic producing identifier
  lists that may include *virtual* slots (no node behind them);
* **node-level** routines on :class:`AxisEngine` — candidates filtered
  against the labeling's existence index, returning only real nodes'
  labels in document order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core import uid as uid_math
from repro.core.ktable import KTable
from repro.core.labels import Relation, Ruid2Label
from repro.core.order import Ruid2Order
from repro.core.ruid import Ruid2Labeling


def candidate_children(
    label: Ruid2Label, kappa: int, ktable: KTable
) -> List[Ruid2Label]:
    """The paper's ``rchildren`` routine: possible child identifiers.

    Children of a node live in the same UID-local area (for an area
    root: the area it roots). A child slot that coincides with the root
    of a lower area yields that area root's identifier (global index of
    the *child* area, root indicator true) — resolved via the (upper
    global, local) probe into table K.
    """
    area = label.global_index
    fan_out = ktable.fan_out(area)
    position = 1 if label.is_area_root else label.local_index
    low, high = uid_math.children_range(position, fan_out)
    pair_index = ktable.build_pair_index(kappa)
    result: List[Ruid2Label] = []
    for local in range(low, high + 1):
        child_area = pair_index.get((area, local))
        if child_area is not None:
            result.append(Ruid2Label(child_area, local, True))
        else:
            result.append(Ruid2Label(area, local, False))
    return result


def candidate_siblings(
    label: Ruid2Label, kappa: int, ktable: KTable, preceding: bool
) -> List[Ruid2Label]:
    """The ``rpsibling`` / ``rfsibling`` routines: sibling slots before
    or after the context node, in document order."""
    if label.is_document_root:
        return []
    if label.is_area_root:
        # The node sits as a leaf in the upper area at local_index.
        area = uid_math.parent(label.global_index, kappa)
    else:
        area = label.global_index
    fan_out = ktable.fan_out(area)
    position = label.local_index
    if position == 1:
        return []  # an area's own root has no siblings within the area
    parent_local = uid_math.parent(position, fan_out)
    low, high = uid_math.children_range(parent_local, fan_out)
    slots = range(low, position) if preceding else range(position + 1, high + 1)
    pair_index = ktable.build_pair_index(kappa)
    result: List[Ruid2Label] = []
    for local in slots:
        child_area = pair_index.get((area, local))
        if child_area is not None:
            result.append(Ruid2Label(child_area, local, True))
        else:
            result.append(Ruid2Label(area, local, False))
    return result


class AxisEngine:
    """Node-level XPath axes over a built :class:`Ruid2Labeling`.

    The engine combines the pure candidate routines with an existence
    filter and the Lemma 3 frame acceleration for the ``preceding`` /
    ``following`` axes. All returned lists are in document order.
    """

    def __init__(self, labeling: Ruid2Labeling):
        self.labeling = labeling
        self.order = Ruid2Order(labeling.kappa, labeling.ktable)
        self._labels_in_area: Optional[Dict[int, List[Ruid2Label]]] = None
        self._area_doc_order: Optional[List[int]] = None
        self._sort_keys: Dict[Ruid2Label, tuple] = {}
        self._slots: Optional[Dict[Tuple[int, int], Ruid2Label]] = None
        # Prebuilt axis-name dispatch (constructing it per call showed
        # up in profiles of axis-heavy query workloads).
        self._dispatch = {
            "parent": self._parent_list,
            "ancestor": self.ancestors,
            "ancestor-or-self": self._ancestor_or_self,
            "child": self.children,
            "descendant": self.descendants,
            "descendant-or-self": self._descendant_or_self,
            "preceding-sibling": self.preceding_siblings,
            "following-sibling": self.following_siblings,
            "preceding": self.preceding,
            "following": self.following,
            "self": self._self_list,
        }

    # -- indexes --------------------------------------------------------
    def labels_in_area(self, global_index: int) -> List[Ruid2Label]:
        """Labels of the real nodes contained in an area (document
        order; child-area roots included as the area's leaves)."""
        if self._labels_in_area is None:
            index: Dict[int, List[Ruid2Label]] = {}
            frame = self.labeling.frame
            for root_node in frame.frame_preorder():
                g = self.labeling.global_of_area_root(root_node)
                area = frame.areas[root_node.node_id]
                index[g] = [self.labeling.label_of(n) for n in area.nodes]
            self._labels_in_area = index
        return self._labels_in_area[global_index]

    def _slot_map(self) -> Dict[Tuple[int, int], Ruid2Label]:
        """(containing area, local index) → the real label at that slot.

        The existence filter of the candidate routines, materialised
        once: probing a slot costs one dict lookup instead of
        constructing a candidate label per virtual slot.
        """
        slots = self._slots
        if slots is None:
            slots = {}
            kappa = self.labeling.kappa
            for label in self.labeling.labels():
                if label.is_area_root:
                    if label.is_document_root:
                        continue
                    upper = uid_math.parent(label.global_index, kappa)
                    slots[(upper, label.local_index)] = label
                else:
                    slots[(label.global_index, label.local_index)] = label
            self._slots = slots
        return slots

    def _areas_in_doc_order(self) -> List[int]:
        if self._area_doc_order is None:
            self._area_doc_order = [
                self.labeling.global_of_area_root(node)
                for node in self.labeling.frame.frame_preorder()
            ]
        return self._area_doc_order

    # -- upward axes ------------------------------------------------------
    def parent(self, label: Ruid2Label) -> Optional[Ruid2Label]:
        """The parent's label, or ``None`` at the document root."""
        if label.is_document_root:
            return None
        return self.labeling.rparent(label)

    def ancestors(self, label: Ruid2Label) -> List[Ruid2Label]:
        """``ancestor`` axis, nearest first (pure arithmetic)."""
        return self.labeling.rancestors(label)

    # -- downward axes ----------------------------------------------------
    def children(self, label: Ruid2Label) -> List[Ruid2Label]:
        """``child`` axis: real children in document order.

        Equivalent to filtering :func:`candidate_children` against the
        existence index, via the O(1)-per-slot map.
        """
        area = label.global_index
        fan_out = self.labeling.ktable.fan_out(area)
        position = 1 if label.is_area_root else label.local_index
        low, high = uid_math.children_range(position, fan_out)
        slots = self._slot_map()
        result: List[Ruid2Label] = []
        for local in range(low, high + 1):
            hit = slots.get((area, local))
            if hit is not None:
                result.append(hit)
        return result

    def descendants(self, label: Ruid2Label) -> List[Ruid2Label]:
        """``descendant`` axis via the paper's frame shortcut.

        Within-area descendants are generated by repeated ``rchildren``;
        every area whose root is one of those descendants contributes
        *all* of its nodes (and, recursively, its frame descendants) —
        "all nodes in the areas rooted at the newly found nodes are
        descendants of n" (§3.5).
        """
        result: List[Ruid2Label] = []
        area_queue: List[Ruid2Label] = []

        def collect_within(start: Ruid2Label) -> None:
            stack = [start]
            while stack:
                current = stack.pop()
                for child in reversed(self.children(current)):
                    result.append(child)
                    if child.is_area_root:
                        area_queue.append(child)
                    else:
                        stack.append(child)

        # reversed/stack discipline gives preorder; then area subtrees
        # are expanded in a second phase and the whole list re-sorted.
        collect_within(label)
        seen_areas = set()
        while area_queue:
            area_root = area_queue.pop()
            if area_root.global_index in seen_areas:
                continue
            seen_areas.add(area_root.global_index)
            for inner in self.labels_in_area(area_root.global_index):
                if inner != area_root:
                    result.append(inner)
                    if inner.is_area_root:
                        area_queue.append(inner)
        return self.sort_document_order(result)

    # -- sibling axes -------------------------------------------------------
    def preceding_siblings(self, label: Ruid2Label) -> List[Ruid2Label]:
        """``preceding-sibling`` axis, document order."""
        return self._siblings(label, preceding=True)

    def following_siblings(self, label: Ruid2Label) -> List[Ruid2Label]:
        """``following-sibling`` axis, document order."""
        return self._siblings(label, preceding=False)

    def _siblings(self, label: Ruid2Label, preceding: bool) -> List[Ruid2Label]:
        if label.is_document_root:
            return []
        if label.is_area_root:
            area = uid_math.parent(label.global_index, self.labeling.kappa)
        else:
            area = label.global_index
        fan_out = self.labeling.ktable.fan_out(area)
        position = label.local_index
        if position == 1:
            return []
        parent_local = uid_math.parent(position, fan_out)
        low, high = uid_math.children_range(parent_local, fan_out)
        window = range(low, position) if preceding else range(position + 1, high + 1)
        slots = self._slot_map()
        result: List[Ruid2Label] = []
        for local in window:
            hit = slots.get((area, local))
            if hit is not None:
                result.append(hit)
        return result

    # -- horizontal axes ------------------------------------------------------
    def preceding(self, label: Ruid2Label) -> List[Ruid2Label]:
        """``preceding`` axis with the Lemma 3 acceleration."""
        return self._horizontal(label, Relation.PRECEDING)

    def following(self, label: Ruid2Label) -> List[Ruid2Label]:
        """``following`` axis with the Lemma 3 acceleration."""
        return self._horizontal(label, Relation.FOLLOWING)

    def _horizontal(self, label: Ruid2Label, wanted: Relation) -> List[Ruid2Label]:
        """Classify whole areas by their root's relation to the context
        node (Lemma 3): a preceding/following area root carries its
        entire area; only *ancestor* areas need per-node checks."""
        result: List[Ruid2Label] = []
        seen: set = set()
        for area_global in self._areas_in_doc_order():
            root_node = self.labeling.area_root_node(area_global)
            root_label = self.labeling.label_of(root_node)
            relation = self.order.relation(root_label, label)
            if relation is wanted:
                for inner in self.labels_in_area(area_global):
                    if inner not in seen:
                        seen.add(inner)
                        result.append(inner)
                if root_label not in seen:
                    seen.add(root_label)
                    result.append(root_label)
            elif relation is Relation.ANCESTOR or relation is Relation.SELF:
                for inner in self.labels_in_area(area_global):
                    if inner in seen:
                        continue
                    if self.order.relation(inner, label) is wanted:
                        seen.add(inner)
                        result.append(inner)
        return self.sort_document_order(result)

    # -- helpers ---------------------------------------------------------
    def sort_document_order(self, labels: List[Ruid2Label]) -> List[Ruid2Label]:
        """Sort labels into document order using the arithmetic key
        (memoised — keys are pure functions of the label and κ/K)."""
        keys = self._sort_keys

        def key_of(label: Ruid2Label) -> tuple:
            cached = keys.get(label)
            if cached is None:
                cached = self.order.sort_key(label)
                keys[label] = cached
            return cached

        return sorted(labels, key=key_of)

    def _parent_list(self, label: Ruid2Label) -> List[Ruid2Label]:
        parent = self.parent(label)
        return [parent] if parent is not None else []

    def _ancestor_or_self(self, label: Ruid2Label) -> List[Ruid2Label]:
        return [label, *self.ancestors(label)]

    def _descendant_or_self(self, label: Ruid2Label) -> List[Ruid2Label]:
        return [label, *self.descendants(label)]

    @staticmethod
    def _self_list(label: Ruid2Label) -> List[Ruid2Label]:
        return [label]

    def axis(self, label: Ruid2Label, name: str) -> List[Ruid2Label]:
        """Dispatch by XPath axis name (hyphenated, as in expressions)."""
        try:
            handler = self._dispatch[name]
        except KeyError:
            raise ValueError(f"unknown axis {name!r}") from None
        return handler(label)
