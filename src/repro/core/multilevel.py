"""Multilevel rUID — paper §2.4 (Definition 4) and Example 3.

The 2-level construction is applied recursively: the frame of level
*i* is materialised as a tree and becomes the data of level *i+1*.
The topmost frame is enumerated by a plain UID, whose value is the
``θ`` of Definition 4; every level below contributes one
``(α, β)`` component.

An ``m``-stage build (``levels = m + 1``) can enumerate on the order
of ``e^m`` nodes, where ``e`` is the per-level UID capacity — the
paper's scalability claim (§3.1). In practice two or three levels
cover any real document ("this requires only a few levels to encode a
large XML tree").
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.labels import MultiLabel, Relation, Ruid2Label
from repro.core.order import Ruid2Order
from repro.core.partition import Partitioner, SizeCapPartitioner
from repro.core.ruid import Ruid2Labeling
from repro.errors import NoParentError, NumberingError, UnknownLabelError
from repro.xmltree.node import NodeKind, XmlNode
from repro.xmltree.tree import XmlTree


class _Stage:
    """One 2-level build in the recursive chain.

    ``labeling`` labels ``tree`` (which is the original document for
    stage 1, or the materialised frame of the stage below). The proxy
    maps connect each of this stage's areas to the node representing it
    in the next stage's tree.
    """

    def __init__(self, tree: XmlTree, labeling: Ruid2Labeling):
        self.tree = tree
        self.labeling = labeling
        #: area global index (this stage) -> proxy node in the next tree
        self.proxy_of_global: Dict[int, XmlNode] = {}
        #: proxy node_id (next tree) -> area global index (this stage)
        self.global_of_proxy: Dict[int, int] = {}

    def materialise_frame(self) -> XmlTree:
        """Build the next stage's tree: one proxy node per area root,
        edges per the frame."""
        frame = self.labeling.frame

        def make_proxy(area_root: XmlNode) -> XmlNode:
            proxy = XmlNode(area_root.tag, NodeKind.ELEMENT)
            g = self.labeling.global_of_area_root(area_root)
            self.proxy_of_global[g] = proxy
            self.global_of_proxy[proxy.node_id] = g
            for child_root in frame.frame_children[area_root.node_id]:
                proxy.append_child(make_proxy(child_root))
            return proxy

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, self.tree.height() + 1000))
        try:
            return XmlTree(make_proxy(self.tree.root))
        finally:
            sys.setrecursionlimit(old_limit)


class MultilevelRuidLabeling:
    """Multilevel rUID labels for every node of a tree.

    Parameters
    ----------
    tree:
        The document tree.
    levels:
        Total number of rUID levels ``l >= 2``; a value of 2 is exactly
        the 2-level scheme with :class:`MultiLabel` packaging.
    partitioners:
        One strategy per stage (``levels - 1`` of them), or a single
        strategy reused at every stage, or ``None`` for size-capped
        defaults.
    """

    scheme_name = "ruid-multi"

    def __init__(
        self,
        tree: XmlTree,
        levels: int = 3,
        partitioners: Optional[Sequence[Partitioner] | Partitioner] = None,
    ):
        if levels < 2:
            raise NumberingError(f"multilevel rUID needs levels >= 2, got {levels}")
        self.tree = tree
        self.levels = levels
        stage_count = levels - 1
        if partitioners is None:
            strategy_list: List[Partitioner] = [
                SizeCapPartitioner(64) for _ in range(stage_count)
            ]
        elif isinstance(partitioners, Partitioner):
            strategy_list = [partitioners] * stage_count
        else:
            strategy_list = list(partitioners)
            if len(strategy_list) != stage_count:
                raise NumberingError(
                    f"expected {stage_count} partitioners, got {len(strategy_list)}"
                )

        self.stages: List[_Stage] = []
        current = tree
        for strategy in strategy_list:
            stage = _Stage(current, Ruid2Labeling(current, strategy))
            self.stages.append(stage)
            current = stage.materialise_frame()

        self._label_by_node: Dict[int, MultiLabel] = {}
        self._node_by_label: Dict[MultiLabel, XmlNode] = {}
        self._compose_labels()

    # ------------------------------------------------------------------
    def _compose_labels(self) -> None:
        for node in self.tree.preorder():
            label = self._encode_node(node)
            self._label_by_node[node.node_id] = label
            self._node_by_label[label] = node

    def _encode_node(self, node: XmlNode) -> MultiLabel:
        """Walk the stage chain upward, collecting one component per
        stage; the top stage's global index becomes θ."""
        components: List[Tuple[int, bool]] = []
        current = node
        theta = 1
        for index, stage in enumerate(self.stages):
            two_level = stage.labeling.label_of(current)
            components.append((two_level.local_index, two_level.is_area_root))
            theta = two_level.global_index
            if index + 1 < len(self.stages):
                current = stage.proxy_of_global[two_level.global_index]
        # components were collected bottom-up; Definition 4 lists them
        # top-down below θ.
        return MultiLabel(theta, tuple(reversed(components)))

    def _encode_area(self, stage_index: int, global_index: int) -> MultiLabel:
        """Upper part of a label: the identity of a stage's area as a
        (shorter) MultiLabel over the higher stages."""
        components: List[Tuple[int, bool]] = []
        theta = global_index
        current_global = global_index
        for index in range(stage_index + 1, len(self.stages)):
            proxy = self.stages[index - 1].proxy_of_global[current_global]
            two_level = self.stages[index].labeling.label_of(proxy)
            components.append((two_level.local_index, two_level.is_area_root))
            theta = two_level.global_index
            current_global = two_level.global_index
        return MultiLabel(theta, tuple(reversed(components)))

    def _decode_global(self, label: MultiLabel, stage_index: int = 0) -> int:
        """Recover the stage-``stage_index`` global index encoded by the
        components of *label* above that stage. Pure table lookups."""
        expected = len(self.stages) - stage_index - 1
        upper_components = label.components[:expected] if expected else ()
        global_index = label.theta
        # Walk down from the top stage, resolving each (α, β) to a node
        # of the stage's tree and then to the area it proxies.
        for offset, (alpha, beta) in enumerate(upper_components):
            stage = self.stages[len(self.stages) - 1 - offset]
            two_level = Ruid2Label(global_index, alpha, beta)
            proxy = stage.labeling.node_of(two_level)
            below = self.stages[len(self.stages) - 2 - offset]
            global_index = below.global_of_proxy[proxy.node_id]
        return global_index

    def _bottom_two_level(self, label: MultiLabel) -> Ruid2Label:
        """The stage-1 (bottom) 2-level form of *label*."""
        alpha, beta = label.components[-1]
        return Ruid2Label(self._decode_global(label), alpha, beta)

    def _encode_bottom(self, two_level: Ruid2Label) -> MultiLabel:
        """Inverse of :meth:`_bottom_two_level`."""
        upper = self._encode_area(0, two_level.global_index)
        return upper.extend(two_level.local_index, two_level.is_area_root)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def label_of(self, node: XmlNode) -> MultiLabel:
        try:
            return self._label_by_node[node.node_id]
        except KeyError:
            raise UnknownLabelError(f"node {node!r} is not labeled") from None

    def node_of(self, label: MultiLabel) -> XmlNode:
        try:
            return self._node_by_label[label]
        except KeyError:
            raise UnknownLabelError(f"label {label} names no real node") from None

    def exists(self, label: MultiLabel) -> bool:
        return label in self._node_by_label

    def labels(self) -> Iterator[MultiLabel]:
        return iter(self._node_by_label)

    def items(self) -> Iterator[Tuple[XmlNode, MultiLabel]]:
        for node in self.tree.preorder():
            yield node, self._label_by_node[node.node_id]

    # ------------------------------------------------------------------
    # Identifier arithmetic
    # ------------------------------------------------------------------
    def rparent(self, label: MultiLabel) -> MultiLabel:
        """Parent identifier via per-level table arithmetic.

        The bottom component is advanced with the stage-1 Fig. 6
        algorithm; crossing an area boundary re-encodes the upper
        components through the stage tables — still pure in-memory
        lookups, the multilevel analogue of (κ, K).
        """
        bottom = self._bottom_two_level(label)
        if bottom.is_document_root:
            raise NoParentError("the document root has no parent")
        parent_two_level = self.stages[0].labeling.rparent(bottom)
        return self._encode_bottom(parent_two_level)

    def rancestors(self, label: MultiLabel) -> List[MultiLabel]:
        result: List[MultiLabel] = []
        current = label
        while True:
            bottom = self._bottom_two_level(current)
            if bottom.is_document_root:
                return result
            current = self._encode_bottom(self.stages[0].labeling.rparent(bottom))
            result.append(current)

    def relation(self, first: MultiLabel, second: MultiLabel) -> Relation:
        """Structural relation, delegated to the bottom-stage order
        oracle (Lemmas 2–3 apply level-wise)."""
        oracle = Ruid2Order(self.stages[0].labeling.kappa, self.stages[0].labeling.ktable)
        return oracle.relation(
            self._bottom_two_level(first), self._bottom_two_level(second)
        )

    def is_ancestor(self, candidate: MultiLabel, label: MultiLabel) -> bool:
        return self.relation(candidate, label) is Relation.ANCESTOR

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def label_bits(self, label: MultiLabel) -> int:
        return label.bits()

    def max_label_bits(self) -> int:
        return max(label.bits() for label in self.labels())

    def top_frame_size(self) -> int:
        """Node count of the topmost frame tree — what must "become
        small enough to be stored" for the recursion to stop (§2.4)."""
        top = self.stages[-1]
        return top.labeling.frame.area_count()

    def __len__(self) -> int:
        return len(self._label_by_node)

    def __repr__(self) -> str:
        return (
            f"<MultilevelRuidLabeling levels={self.levels} nodes={len(self)} "
            f"top_frame={self.top_frame_size()}>"
        )
