"""Label value types for the rUID schemes.

Labels are immutable value objects; all structural decisions the paper
makes from labels (parent computation, axes, document order) are
functions of labels plus the in-memory global parameters (``κ`` and
table ``K``) — never of the tree itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Tuple


class Relation(IntEnum):
    """Structural relation of a node pair in document order terms."""

    SELF = 0
    ANCESTOR = 1  # first is an ancestor of second
    DESCENDANT = 2  # first is a descendant of second
    PRECEDING = 3  # first precedes second, no ancestry
    FOLLOWING = 4  # first follows second, no ancestry

    @property
    def precedes(self) -> bool:
        """True iff the first node comes strictly before the second in
        document order (ancestors precede their descendants)."""
        return self in (Relation.ANCESTOR, Relation.PRECEDING)

    def inverse(self) -> "Relation":
        """The relation with the pair swapped."""
        return _INVERSE[self]


_INVERSE = {
    Relation.SELF: Relation.SELF,
    Relation.ANCESTOR: Relation.DESCENDANT,
    Relation.DESCENDANT: Relation.ANCESTOR,
    Relation.PRECEDING: Relation.FOLLOWING,
    Relation.FOLLOWING: Relation.PRECEDING,
}


class Ruid2Label:
    """A 2-level rUID identifier — the triple of Definition 3.

    Immutable value object (labels are dictionary keys on the hottest
    paths, so the hash is computed once at construction).

    Attributes
    ----------
    global_index:
        Index of the UID-local area containing the node (for area
        roots: the index of the area they root).
    local_index:
        Index of the node inside that area; for an area root, its
        index *as a leaf of the upper area*.
    is_area_root:
        The root indicator ``r``.
    """

    __slots__ = ("global_index", "local_index", "is_area_root", "_hash")

    ROOT: "Ruid2Label" = None  # type: ignore[assignment]  # set below

    def __init__(self, global_index: int, local_index: int, is_area_root: bool):
        if global_index < 1 or local_index < 1:
            raise ValueError(
                f"rUID indices start at 1, got ({global_index}, {local_index})"
            )
        object.__setattr__(self, "global_index", global_index)
        object.__setattr__(self, "local_index", local_index)
        object.__setattr__(self, "is_area_root", is_area_root)
        object.__setattr__(
            self, "_hash", hash((global_index, local_index, is_area_root))
        )

    def __setattr__(self, name, value):
        raise AttributeError("Ruid2Label is immutable")

    def __eq__(self, other) -> bool:
        if not isinstance(other, Ruid2Label):
            return NotImplemented
        return (
            self.global_index == other.global_index
            and self.local_index == other.local_index
            and self.is_area_root == other.is_area_root
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"Ruid2Label(global_index={self.global_index}, "
            f"local_index={self.local_index}, is_area_root={self.is_area_root})"
        )

    @property
    def is_document_root(self) -> bool:
        """True for the root of the main XML tree, (1, 1, true)."""
        return self.is_area_root and self.global_index == 1

    def as_tuple(self) -> Tuple[int, int, bool]:
        return (self.global_index, self.local_index, self.is_area_root)

    def bits(self) -> int:
        """Storage bits: both integer components plus the indicator bit."""
        return (
            max(1, self.global_index.bit_length())
            + max(1, self.local_index.bit_length())
            + 1
        )

    def __str__(self) -> str:
        flag = "true" if self.is_area_root else "false"
        return f"({self.global_index}, {self.local_index}, {flag})"


Ruid2Label.ROOT = Ruid2Label(1, 1, True)


@dataclass(frozen=True, slots=True)
class MultiLabel:
    """A multilevel rUID identifier — Definition 4.

    ``{θ, (α_{l-1}, β_{l-1}), ..., (α_1, β_1)}``: ``theta`` is the
    original UID at the top level; ``components`` lists the
    (local index, root indicator) pairs from the level *below the top*
    down to level 1 (the original tree). A 2-level label therefore has
    one component; ``MultiLabel(theta=8, components=((5, True),))``
    prints as ``{8, (5, true)}``.
    """

    theta: int
    components: Tuple[Tuple[int, bool], ...]

    def __post_init__(self):
        if self.theta < 1:
            raise ValueError(f"top-level UID starts at 1, got {self.theta}")
        for alpha, _beta in self.components:
            if alpha < 1:
                raise ValueError(f"local indices start at 1, got {alpha}")

    @property
    def levels(self) -> int:
        """Number of rUID levels ``l`` (1 = plain UID)."""
        return len(self.components) + 1

    @property
    def alpha(self) -> int:
        """Bottom-level local index α₁ (the node's index in its area)."""
        if not self.components:
            raise ValueError("a 1-level label has no local component")
        return self.components[-1][0]

    @property
    def beta(self) -> bool:
        """Bottom-level root indicator β₁."""
        if not self.components:
            raise ValueError("a 1-level label has no local component")
        return self.components[-1][1]

    def upper(self) -> "MultiLabel":
        """The label with the bottom level stripped — identifies the
        node's UID-local area within the level-2 frame."""
        if not self.components:
            raise ValueError("cannot strip the top level")
        return MultiLabel(self.theta, self.components[:-1])

    def extend(self, alpha: int, beta: bool) -> "MultiLabel":
        """Append a bottom-level component."""
        return MultiLabel(self.theta, self.components + ((alpha, beta),))

    def bits(self) -> int:
        """Total storage bits across all components."""
        total = max(1, self.theta.bit_length())
        for alpha, _beta in self.components:
            total += max(1, alpha.bit_length()) + 1
        return total

    def __str__(self) -> str:
        parts = [str(self.theta)]
        for alpha, beta in self.components:
            parts.append(f"({alpha}, {'true' if beta else 'false'})")
        return "{" + ", ".join(parts) + "}"
