"""The global parameter table ``K`` (paper §2.1, Fig. 5).

``K`` has one row per UID-local area: *(global index, local index of
the area's root inside the upper area, local fan-out)*. Together with
the scalar ``κ`` it is the entire state needed to run ``rparent()`` and
the axis routines in main memory — the paper's key systems claim.

The table is kept sorted by global index; lookups are O(log |K|)
bisections, and the two secondary probes the axis routines need
(rows by *(global, local)* pair and rows by frame-parent) are answered
from the same sorted array.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import UnknownLabelError


@dataclass(frozen=True)
class KRow:
    """One row of table K."""

    global_index: int
    local_index: int  # index of the area root inside the upper area
    fan_out: int  # local fan-out k_i used to enumerate the area

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.global_index, self.local_index, self.fan_out)


class KTable:
    """Sorted, memory-resident table of :class:`KRow` entries."""

    def __init__(self, rows: Optional[List[KRow]] = None):
        self._rows: List[KRow] = sorted(rows or [], key=lambda r: r.global_index)
        self._globals: List[int] = [r.global_index for r in self._rows]
        self._pair_index_cache: Dict[int, Dict[Tuple[int, int], int]] = {}
        self._check_unique()

    def _check_unique(self) -> None:
        for a, b in zip(self._globals, self._globals[1:]):
            if a == b:
                raise ValueError(f"duplicate global index {a} in table K")

    # -- mutation (used by the build algorithm, Fig. 3 line 10) --------
    def add(self, row: KRow) -> None:
        """Insert a row, keeping the table sorted by global index."""
        position = bisect_left(self._globals, row.global_index)
        if position < len(self._globals) and self._globals[position] == row.global_index:
            raise ValueError(f"duplicate global index {row.global_index}")
        self._rows.insert(position, row)
        self._globals.insert(position, row.global_index)
        self._pair_index_cache.clear()

    # -- lookups --------------------------------------------------------
    def row(self, global_index: int) -> KRow:
        """The row for an area's global index."""
        position = bisect_left(self._globals, global_index)
        if position < len(self._globals) and self._globals[position] == global_index:
            return self._rows[position]
        raise UnknownLabelError(f"no area with global index {global_index}")

    def has_area(self, global_index: int) -> bool:
        position = bisect_left(self._globals, global_index)
        return position < len(self._globals) and self._globals[position] == global_index

    def fan_out(self, global_index: int) -> int:
        """Local fan-out of the area, floored at 1 so that the UID
        arithmetic stays well defined for single-node areas."""
        return max(1, self.row(global_index).fan_out)

    def local_of_root(self, global_index: int) -> int:
        """Local index of the area's root within the upper area."""
        return self.row(global_index).local_index

    def build_pair_index(self, kappa: int) -> Dict[Tuple[int, int], int]:
        """Materialise the (upper global, local) → child global map,
        deriving each area's frame parent arithmetically from κ.

        Cached per κ (the axis routines call this on every step);
        mutations invalidate the cache.
        """
        cached = self._pair_index_cache.get(kappa)
        if cached is not None:
            return cached
        pairs: Dict[Tuple[int, int], int] = {}
        for row in self._rows:
            if row.global_index == 1:
                continue  # the top area has no upper area
            upper = (row.global_index - 2) // max(1, kappa) + 1
            pairs[(upper, row.local_index)] = row.global_index
        self._pair_index_cache[kappa] = pairs
        return pairs

    def globals_in_range(self, low: int, high: int) -> List[int]:
        """Existing global indices within [low, high] — the frame
        children probe of ``rchildren`` (§3.5)."""
        start = bisect_left(self._globals, low)
        result: List[int] = []
        for index in range(start, len(self._globals)):
            value = self._globals[index]
            if value > high:
                break
            result.append(value)
        return result

    def rows(self) -> Iterator[KRow]:
        return iter(self._rows)

    def replace(self, row: KRow) -> None:
        """Replace the row with the same global index (fan-out updates
        after an area enlargement, §3.2)."""
        position = bisect_left(self._globals, row.global_index)
        if position >= len(self._globals) or self._globals[position] != row.global_index:
            raise UnknownLabelError(f"no area with global index {row.global_index}")
        self._rows[position] = row
        self._pair_index_cache.clear()

    def memory_bytes(self) -> int:
        """Rough size of the table if stored as three machine words per
        row — the paper's 'small-size global information' (§1)."""
        return len(self._rows) * 3 * 8

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[KRow]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return f"<KTable areas={len(self._rows)}>"
