"""The original UID numbering scheme (Lee et al. [7]; paper section 1).

An XML tree with maximal fan-out ``k`` is embedded into a complete
k-ary tree: every internal node is padded with *virtual* children up to
fan-out ``k``, and identifiers 1, 2, 3, ... are assigned level by
level, left to right (level order). The defining property is that the
parent identifier is computable arithmetically::

    parent(i) = (i - 2) // k + 1            # paper formula (1)

This module provides both the pure identifier arithmetic (usable
without any tree) and :class:`UidLabeling`, the materialised labeling
of a concrete tree.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    FanOutOverflowError,
    IdentifierOverflowError,
    NoParentError,
    NumberingError,
    UnknownLabelError,
)
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree

# ----------------------------------------------------------------------
# Pure k-ary UID arithmetic
# ----------------------------------------------------------------------


def _require_valid(identifier: int, fan_out: int) -> None:
    if identifier < 1:
        raise NumberingError(f"UID identifiers start at 1, got {identifier}")
    if fan_out < 1:
        raise NumberingError(f"UID fan-out must be >= 1, got {fan_out}")


def parent(identifier: int, fan_out: int) -> int:
    """Parent identifier per formula (1): ``(i - 2) // k + 1``.

    Raises :class:`NoParentError` for the root (identifier 1).
    """
    _require_valid(identifier, fan_out)
    if identifier == 1:
        raise NoParentError("the root (UID 1) has no parent")
    return (identifier - 2) // fan_out + 1


def children_range(identifier: int, fan_out: int) -> Tuple[int, int]:
    """Inclusive identifier range of the k children: ``[(i-1)k+2, ik+1]``."""
    _require_valid(identifier, fan_out)
    return (identifier - 1) * fan_out + 2, identifier * fan_out + 1


def child(identifier: int, fan_out: int, ordinal: int) -> int:
    """Identifier of the child at 0-based *ordinal* (may be virtual)."""
    _require_valid(identifier, fan_out)
    if not 0 <= ordinal < fan_out:
        raise NumberingError(f"child ordinal {ordinal} out of range 0..{fan_out - 1}")
    return (identifier - 1) * fan_out + 2 + ordinal


def child_ordinal(identifier: int, fan_out: int) -> int:
    """0-based position of *identifier* among its parent's children."""
    _require_valid(identifier, fan_out)
    if identifier == 1:
        raise NoParentError("the root (UID 1) has no child ordinal")
    return (identifier - 2) % fan_out


def level_of(identifier: int, fan_out: int) -> int:
    """1-based level of the identifier; the root is level 1.

    Level ``d`` holds identifiers ``S(d-1) < i <= S(d)`` where ``S(d)``
    counts nodes of the complete k-ary tree of height ``d``.
    """
    _require_valid(identifier, fan_out)
    level = 1
    total = 1
    width = 1
    while identifier > total:
        width *= fan_out
        total += width
        level += 1
    return level


def subtree_capacity(fan_out: int, height: int) -> int:
    """Number of slots in a complete k-ary tree with *height* levels.

    This is ``e`` in the paper's scalability argument (section 3.1):
    the number of nodes the original UID can enumerate at that height.
    """
    if height < 0:
        raise NumberingError("height must be >= 0")
    if fan_out < 1:
        raise NumberingError("fan-out must be >= 1")
    if fan_out == 1:
        return height
    return (fan_out**height - 1) // (fan_out - 1)


def max_identifier(fan_out: int, height: int) -> int:
    """Largest identifier a tree of *height* levels can receive."""
    return subtree_capacity(fan_out, height)


def ancestors(identifier: int, fan_out: int) -> Iterator[int]:
    """Yield proper ancestors bottom-up (parent first, root last)."""
    _require_valid(identifier, fan_out)
    current = identifier
    while current != 1:
        current = parent(current, fan_out)
        yield current


def is_ancestor(candidate: int, identifier: int, fan_out: int) -> bool:
    """True iff *candidate* is a proper ancestor of *identifier*."""
    _require_valid(candidate, fan_out)
    _require_valid(identifier, fan_out)
    if candidate >= identifier:
        return False
    current = identifier
    while current > candidate:
        current = parent(current, fan_out)
    return current == candidate


def document_compare(first: int, second: int, fan_out: int) -> int:
    """Compare two identifiers in document (preorder) order.

    Returns -1 / 0 / +1 as *first* precedes / equals / follows
    *second*. An ancestor precedes all of its descendants.
    """
    if first == second:
        return 0
    if is_ancestor(first, second, fan_out):
        return -1
    if is_ancestor(second, first, fan_out):
        return 1
    # Lift both to the level of the shallower, then climb together: at
    # equal levels, level-order identifiers increase left to right, so
    # the numeric order of the diverging ancestors decides (Lemma 2).
    a, b = first, second
    level_a, level_b = level_of(a, fan_out), level_of(b, fan_out)
    while level_a > level_b:
        a = parent(a, fan_out)
        level_a -= 1
    while level_b > level_a:
        b = parent(b, fan_out)
        level_b -= 1
    while parent(a, fan_out) != parent(b, fan_out):
        a = parent(a, fan_out)
        b = parent(b, fan_out)
    return -1 if a < b else 1


# ----------------------------------------------------------------------
# Materialised labeling of a concrete tree
# ----------------------------------------------------------------------


class UidLabeling:
    """Original-UID labels for every node of a tree.

    Parameters
    ----------
    tree:
        The document tree to label.
    fan_out:
        The ``k`` of the enumerating k-ary tree. Defaults to the tree's
        maximal fan-out (the paper's choice). Supplying a larger value
        leaves insertion headroom; a smaller value raises
        :class:`FanOutOverflowError`.
    bit_budget:
        Optional machine-integer budget (e.g. 32 or 64). When set, any
        identifier exceeding it raises
        :class:`~repro.errors.IdentifierOverflowError` — the failure
        the paper's §1 warns about ("additional purpose-specific
        libraries are necessary to deal with the oversized values").
        Python's native big integers would otherwise mask it.
    """

    scheme_name = "uid"

    def __init__(
        self,
        tree: XmlTree,
        fan_out: Optional[int] = None,
        bit_budget: Optional[int] = None,
    ):
        self.tree = tree
        needed = max(1, tree.max_fan_out())
        if fan_out is None:
            fan_out = needed
        elif fan_out < needed:
            raise FanOutOverflowError(
                f"fan-out {fan_out} is below the tree's maximal fan-out {needed}"
            )
        self.fan_out = fan_out
        self.bit_budget = bit_budget
        self._uid_by_node: Dict[int, int] = {}
        self._node_by_uid: Dict[int, XmlNode] = {}
        self._assign()

    def _assign(self) -> None:
        self._uid_by_node.clear()
        self._node_by_uid.clear()
        self._uid_by_node[self.tree.root.node_id] = 1
        self._node_by_uid[1] = self.tree.root
        budget = self.bit_budget
        for node in self.tree.levelorder():
            node_uid = self._uid_by_node[node.node_id]
            for ordinal, child_node in enumerate(node.children):
                child_uid = child(node_uid, self.fan_out, ordinal)
                if budget is not None and child_uid.bit_length() > budget:
                    raise IdentifierOverflowError(
                        f"identifier {child_uid} needs "
                        f"{child_uid.bit_length()} bits, budget is {budget}",
                        bits_required=child_uid.bit_length(),
                        bits_allowed=budget,
                    )
                self._uid_by_node[child_node.node_id] = child_uid
                self._node_by_uid[child_uid] = child_node

    def snapshot(self) -> Dict[int, int]:
        """node_id → UID copy, for update-scope diffing."""
        return dict(self._uid_by_node)

    def reassign(self, min_fan_out: int = 0) -> bool:
        """Re-enumerate after a tree mutation.

        The committed fan-out is *sticky*: it grows when the tree's
        maximal fan-out overflows it (triggering the whole-document
        renumbering the paper criticises) but never shrinks. Returns
        True iff an overflow occurred.
        """
        needed = max(1, self.tree.max_fan_out())
        overflow = needed > self.fan_out
        self.fan_out = max(self.fan_out, needed, min_fan_out)
        self._assign()
        return overflow

    # -- lookups -------------------------------------------------------
    def label_of(self, node: XmlNode) -> int:
        """UID of *node*."""
        try:
            return self._uid_by_node[node.node_id]
        except KeyError:
            raise UnknownLabelError(f"node {node!r} is not labeled") from None

    def node_of(self, identifier: int) -> XmlNode:
        """Node carrying *identifier*; virtual identifiers raise."""
        try:
            return self._node_by_uid[identifier]
        except KeyError:
            raise UnknownLabelError(f"UID {identifier} names no real node") from None

    def exists(self, identifier: int) -> bool:
        """True iff *identifier* names a real (non-virtual) node."""
        return identifier in self._node_by_uid

    def labels(self) -> Iterator[int]:
        """All real identifiers, in no particular order."""
        return iter(self._node_by_uid)

    def items(self) -> Iterator[Tuple[XmlNode, int]]:
        """(node, uid) pairs in document order."""
        for node in self.tree.preorder():
            yield node, self._uid_by_node[node.node_id]

    # -- arithmetic bound to this labeling's k --------------------------
    def parent_label(self, identifier: int) -> int:
        """Arithmetic parent (formula (1)); no tree access."""
        return parent(identifier, self.fan_out)

    def ancestor_labels(self, identifier: int) -> List[int]:
        """Proper ancestors bottom-up; pure arithmetic."""
        return list(ancestors(identifier, self.fan_out))

    def children_labels(self, identifier: int) -> List[int]:
        """*Real* children identifiers in document order."""
        low, high = children_range(identifier, self.fan_out)
        return [i for i in range(low, high + 1) if i in self._node_by_uid]

    def candidate_children(self, identifier: int) -> range:
        """All child slots, real or virtual."""
        low, high = children_range(identifier, self.fan_out)
        return range(low, high + 1)

    def is_ancestor(self, candidate: int, identifier: int) -> bool:
        return is_ancestor(candidate, identifier, self.fan_out)

    def document_compare(self, first: int, second: int) -> int:
        return document_compare(first, second, self.fan_out)

    def max_label(self) -> int:
        """Largest identifier actually assigned."""
        return max(self._node_by_uid)

    def label_bits(self, identifier: int) -> int:
        """Bits needed to store *identifier*."""
        return max(1, int(identifier).bit_length())

    def __len__(self) -> int:
        return len(self._node_by_uid)

    def __repr__(self) -> str:
        return f"<UidLabeling k={self.fan_out} nodes={len(self)} max={self.max_label()}>"
