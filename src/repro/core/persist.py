"""Persistence of the rUID global parameters — Fig. 3's final step.

The build algorithm ends with "Save κ and K". This module serialises
exactly that state (plus, optionally, a label directory mapping each
identifier to its element name), and :class:`GlobalParameters` is the
*label-only client* the paper envisions: a process that loads κ and K
into main memory and answers parent/ancestor/order/axis-candidate
queries without ever touching the document.

The wire format reuses the storage codec, so parameters can live in a
file, a catalog row, or a message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.axes import candidate_children, candidate_siblings
from repro.core.ktable import KRow, KTable
from repro.core.labels import Relation, Ruid2Label
from repro.core.order import Ruid2Order
from repro.core.ruid import Ruid2Labeling, rparent
from repro.errors import StorageError, UnknownLabelError

_MAGIC = "ruid2-params"
#: v1 blobs carried (magic, version, kappa, rows, directory); v2 adds
#: the replication epoch the parameters were dumped at.
_VERSION = 2


def dump_parameters(
    labeling: Ruid2Labeling, include_directory: bool = False, epoch: int = 0
) -> bytes:
    """Serialise κ and table K (and optionally the label→tag directory).

    *epoch* stamps the blob with the document's structural-change
    epoch, so a coordinator can tell a stale replica from a fresh one.
    """
    # Imported lazily: repro.storage imports this module (federation),
    # so a module-level import would be circular.
    from repro.storage.codec import encode_value

    rows = tuple(row.as_tuple() for row in labeling.ktable)
    directory: Tuple = ()
    if include_directory:
        directory = tuple(
            (label.global_index, label.local_index, label.is_area_root, node.tag)
            for node, label in labeling.items()
        )
    payload = (_MAGIC, _VERSION, labeling.kappa, rows, directory, epoch)
    return encode_value(payload)


def load_parameters(data: bytes) -> "GlobalParameters":
    """Deserialise into a :class:`GlobalParameters` client.

    Malformed or truncated input raises
    :class:`~repro.errors.StorageError` — never a bare struct/index
    error — so callers can treat any bad blob uniformly.
    """
    from repro.storage.codec import decode_value

    payload = decode_value(data)  # raises StorageError on garbage bytes
    if (
        not isinstance(payload, tuple)
        or len(payload) not in (5, 6)
        or payload[0] != _MAGIC
    ):
        raise StorageError("not a rUID global-parameter blob")
    version = payload[1]
    if version == 1 and len(payload) == 5:
        _magic, _version, kappa, rows, directory = payload
        epoch = 0
    elif version == _VERSION and len(payload) == 6:
        _magic, _version, kappa, rows, directory, epoch = payload
    else:
        raise StorageError(f"unsupported parameter version {version!r}")
    try:
        if not isinstance(kappa, int) or not isinstance(epoch, int):
            raise StorageError("kappa/epoch must be integers")
        table = KTable([KRow(*row) for row in rows])
        tags: Optional[Dict[Ruid2Label, str]] = None
        if directory:
            tags = {
                Ruid2Label(g, local, flag): tag
                for g, local, flag, tag in directory
            }
    except StorageError:
        raise
    except (TypeError, ValueError, IndexError) as exc:
        raise StorageError(f"malformed rUID parameter blob: {exc}") from None
    return GlobalParameters(kappa, table, tags, epoch=epoch)


@dataclass
class GlobalParameters:
    """κ + K loaded into main memory; the paper's query-time state.

    Everything this object answers is pure identifier arithmetic —
    no document, no storage.
    """

    kappa: int
    ktable: KTable
    tags: Optional[Dict[Ruid2Label, str]] = None
    #: structural-change epoch this replica was dumped at; a federation
    #: coordinator compares it against the document's current epoch to
    #: detect a stale synopsis/parameter replica
    epoch: int = 0

    def __post_init__(self):
        self._order = Ruid2Order(self.kappa, self.ktable)

    # -- structure ------------------------------------------------------
    def parent(self, label: Ruid2Label) -> Ruid2Label:
        """The Fig. 6 algorithm."""
        return rparent(label, self.kappa, self.ktable)

    def ancestors(self, label: Ruid2Label) -> List[Ruid2Label]:
        chain: List[Ruid2Label] = []
        current = label
        while not current.is_document_root:
            current = self.parent(current)
            chain.append(current)
        return chain

    def relation(self, first: Ruid2Label, second: Ruid2Label) -> Relation:
        return self._order.relation(first, second)

    def is_ancestor(self, candidate: Ruid2Label, label: Ruid2Label) -> bool:
        return self._order.relation(candidate, label) is Relation.ANCESTOR

    def compare(self, first: Ruid2Label, second: Ruid2Label) -> int:
        return self._order.compare(first, second)

    def sort(self, labels: List[Ruid2Label]) -> List[Ruid2Label]:
        return sorted(labels, key=self._order.sort_key)

    # -- axis candidates (§3.5 routines; may include virtual slots) ------
    def child_candidates(self, label: Ruid2Label) -> List[Ruid2Label]:
        return candidate_children(label, self.kappa, self.ktable)

    def sibling_candidates(
        self, label: Ruid2Label, preceding: bool
    ) -> List[Ruid2Label]:
        return candidate_siblings(label, self.kappa, self.ktable, preceding)

    # -- directory --------------------------------------------------------
    def tag_of(self, label: Ruid2Label) -> Optional[str]:
        """Element name, when the directory was shipped."""
        if self.tags is None:
            return None
        return self.tags.get(label)

    def labels_with_tag(self, tag: str) -> List[Ruid2Label]:
        """All identifiers carrying *tag* (directory required)."""
        if self.tags is None:
            raise StorageError("parameters were saved without a directory")
        return self.sort([label for label, t in self.tags.items() if t == tag])

    def memory_bytes(self) -> int:
        base = 8 + self.ktable.memory_bytes()
        if self.tags is not None:
            base += sum(24 + len(t) for t in self.tags.values())
        return base

    def __repr__(self) -> str:
        return (
            f"<GlobalParameters kappa={self.kappa} areas={len(self.ktable)} "
            f"directory={'yes' if self.tags is not None else 'no'}>"
        )


# ----------------------------------------------------------------------
# Multilevel parameters (Definition 4's per-level tables)
# ----------------------------------------------------------------------

_MAGIC_MULTI = "ruid-multi-params"


def dump_multilevel_parameters(labeling) -> bytes:
    """Serialise every stage's (κ, K) plus the inter-level area links.

    The link between stage *s* and *s+1* maps each stage-*s* area
    global index to the stage-*s+1* 2-level triple of its proxy — the
    multilevel analogue of "Save κ and K". One entry per area, so the
    whole blob stays a small multiple of the area count.
    """
    from repro.storage.codec import encode_value

    stages = []
    for stage in labeling.stages:
        core = stage.labeling
        stages.append(
            (core.kappa, tuple(row.as_tuple() for row in core.ktable))
        )
    links = []
    for index in range(len(labeling.stages) - 1):
        stage = labeling.stages[index]
        upper = labeling.stages[index + 1]
        link = tuple(
            (g, *upper.labeling.label_of(proxy).as_tuple())
            for g, proxy in stage.proxy_of_global.items()
        )
        links.append(link)
    payload = (_MAGIC_MULTI, _VERSION, tuple(stages), tuple(links))
    return encode_value(payload)


def load_multilevel_parameters(data: bytes) -> "MultilevelParameters":
    from repro.storage.codec import decode_value

    payload = decode_value(data)
    if (
        not isinstance(payload, tuple)
        or len(payload) != 4
        or payload[0] != _MAGIC_MULTI
    ):
        raise StorageError("not a multilevel rUID parameter blob")
    _magic, version, stages, links = payload
    if version not in (1, _VERSION):
        raise StorageError(f"unsupported parameter version {version!r}")
    try:
        stage_params = [
            (kappa, KTable([KRow(*row) for row in rows])) for kappa, rows in stages
        ]
        link_maps = [
            {entry[0]: (entry[1], entry[2], entry[3]) for entry in link}
            for link in links
        ]
    except (TypeError, ValueError, IndexError) as exc:
        raise StorageError(f"malformed multilevel parameter blob: {exc}") from None
    return MultilevelParameters(stage_params, link_maps)


class MultilevelParameters:
    """Per-level (κ, K) tables + area links, loaded into main memory.

    The multilevel analogue of :class:`GlobalParameters`: answers
    parent/ancestor/order queries over :class:`MultiLabel` identifiers
    without the document.
    """

    def __init__(
        self,
        stage_params: List[Tuple[int, KTable]],
        links_up: List[Dict[int, Tuple[int, int, bool]]],
    ):
        if not stage_params:
            raise StorageError("need at least one stage")
        if len(links_up) != len(stage_params) - 1:
            raise StorageError("stage/link count mismatch")
        self.stage_params = stage_params
        self._links_up = links_up
        self._links_down: List[Dict[Tuple[int, int, bool], int]] = [
            {triple: g for g, triple in link.items()} for link in links_up
        ]
        bottom_kappa, bottom_table = stage_params[0]
        self._bottom = GlobalParameters(bottom_kappa, bottom_table)

    @property
    def levels(self) -> int:
        return len(self.stage_params) + 1

    # -- label codecs -----------------------------------------------------
    def _decode_bottom(self, label) -> Ruid2Label:
        """Stage-1 2-level form of a MultiLabel, via link tables."""
        stage_count = len(self.stage_params)
        components = label.components
        if len(components) != stage_count:
            raise StorageError(
                f"label has {len(components)} components, expected {stage_count}"
            )
        global_index = label.theta
        for offset in range(stage_count - 1):
            alpha, beta = components[offset]
            key = (global_index, alpha, beta)
            link = self._links_down[stage_count - 2 - offset]
            try:
                global_index = link[key]
            except KeyError:
                raise UnknownLabelError(f"no area behind {key} at level") from None
        alpha, beta = components[-1]
        return Ruid2Label(global_index, alpha, beta)

    def _encode_bottom(self, two_level: Ruid2Label):
        """Inverse: re-wrap a stage-1 label into a MultiLabel."""
        from repro.core.labels import MultiLabel

        components: List[Tuple[int, bool]] = [
            (two_level.local_index, two_level.is_area_root)
        ]
        global_index = two_level.global_index
        for link in self._links_up:
            upper = link[global_index]
            components.append((upper[1], upper[2]))
            global_index = upper[0]
        return MultiLabel(global_index, tuple(reversed(components)))

    # -- queries ------------------------------------------------------------
    def parent(self, label):
        bottom = self._decode_bottom(label)
        return self._encode_bottom(self._bottom.parent(bottom))

    def ancestors(self, label) -> List:
        chain: List = []
        current = label
        while not self._decode_bottom(current).is_document_root:
            current = self.parent(current)
            chain.append(current)
        return chain

    def relation(self, first, second) -> Relation:
        return self._bottom.relation(
            self._decode_bottom(first), self._decode_bottom(second)
        )

    def is_ancestor(self, candidate, label) -> bool:
        return self.relation(candidate, label) is Relation.ANCESTOR

    def memory_bytes(self) -> int:
        total = 0
        for kappa, table in self.stage_params:
            total += 8 + table.memory_bytes()
        for link in self._links_up:
            total += len(link) * 32
        return total

    def __repr__(self) -> str:
        return (
            f"<MultilevelParameters levels={self.levels} "
            f"bottom_areas={len(self.stage_params[0][1])}>"
        )
