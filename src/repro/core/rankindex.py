"""Precomputed document-order rank index over a labeling.

The paper's point is that structural relationships are computable from
labels in memory; this module takes the next step the accelerator
literature (Grust's pre/post view, the ancestry-labeling line) takes:
*materialise* the document order once so that every later comparison is
a plain integer comparison instead of label arithmetic.

A :class:`RankIndex` maps every label to its preorder rank and to the
rank of the last node in its subtree. With those two integers,

* document order is ``rank[a] < rank[b]``;
* ancestry is the interval test ``rank[a] < rank[d] <= end[a]``;

both O(1), no ancestor-chain walks. The index is stamped with the
labeling *generation* that produced it: any structural update bumps
the generation, and stale indexes are discarded rather than consulted.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.scheme import Labeling


class RankIndex:
    """label → (preorder rank, subtree-end rank), one enumeration pass.

    ``rank`` and ``end`` are plain dicts so hot paths can grab them and
    use ``dict.__getitem__`` directly as a sort key.
    """

    __slots__ = ("rank", "end", "generation", "size")

    def __init__(
        self,
        rank: Dict[Hashable, int],
        end: Dict[Hashable, int],
        generation: int,
    ):
        self.rank = rank
        self.end = end
        self.generation = generation
        self.size = len(rank)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, labeling: "Labeling", generation: int) -> "RankIndex":
        """One DFS over the labeled tree assigning preorder ranks and
        subtree-end ranks to every label."""
        rank: Dict[Hashable, int] = {}
        end: Dict[Hashable, int] = {}
        label_of = labeling.label_of
        counter = 0
        # Stack entries: (node, None) to enter, (None, label) to exit.
        stack = [(labeling.tree.root, None)]
        while stack:
            node, exit_label = stack.pop()
            if node is None:
                end[exit_label] = counter - 1
                continue
            label = label_of(node)
            rank[label] = counter
            counter += 1
            stack.append((None, label))
            for child in reversed(node.children):
                stack.append((child, None))
        return cls(rank, end, generation)

    # ------------------------------------------------------------------
    def rank_of(self, label) -> Optional[int]:
        """Preorder rank, or None for a label this index does not know
        (stale label from before an update, synthetic test label, ...)."""
        return self.rank.get(label)

    def covers(self, upper, lower, self_or: bool = False) -> bool:
        """Interval ancestry test: is *upper* an ancestor(-or-self) of
        *lower*? Both labels must be present in the index."""
        r_u = self.rank[upper]
        r_l = self.rank[lower]
        if r_u == r_l:
            return self_or
        return r_u < r_l <= self.end[upper]

    def try_ranks(self, labels: Sequence) -> Optional[List[int]]:
        """Ranks for *labels*, or None if any label is unknown —
        callers fall back to comparator-based code in that case."""
        rank = self.rank
        out: List[int] = []
        for label in labels:
            r = rank.get(label)
            if r is None:
                return None
            out.append(r)
        return out

    def __contains__(self, label) -> bool:
        return label in self.rank

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"<RankIndex labels={self.size} generation={self.generation}>"
