"""The paper's contribution: UID and recursive-UID numbering schemes.

Public surface::

    from repro.core import (
        UidLabeling, Ruid2Labeling, MultilevelRuidLabeling,
        Ruid2Label, MultiLabel, Relation,
        UidScheme, Ruid2Scheme, MultiRuidScheme,
        AxisEngine, Ruid2Order, rparent,
    )
"""

from repro.core.axes import AxisEngine, candidate_children, candidate_siblings
from repro.core.document import LabeledDocument, reconstruct_fragment
from repro.core.frame import Area, Frame
from repro.core.ktable import KRow, KTable
from repro.core.labels import MultiLabel, Relation, Ruid2Label
from repro.core.multilevel import MultilevelRuidLabeling
from repro.core.order import Ruid2Order, uid_preceding, uid_relation
from repro.core.persist import (
    GlobalParameters,
    MultilevelParameters,
    dump_multilevel_parameters,
    dump_parameters,
    load_multilevel_parameters,
    load_parameters,
)
from repro.core.partition import (
    DepthStridePartitioner,
    ExplicitPartitioner,
    Partitioner,
    SingleAreaPartitioner,
    SizeCapPartitioner,
    lca_closure,
    partition_summary,
)
from repro.core.ruid import Ruid2Labeling, enumerate_ruid2, rparent
from repro.core.scheme import (
    Labeling,
    MultiRuidScheme,
    MultiRuidSchemeLabeling,
    NumberingScheme,
    Ruid2Scheme,
    Ruid2SchemeLabeling,
    UidScheme,
    UidSchemeLabeling,
)
from repro.core.uid import UidLabeling
from repro.core.update import (
    RelabelChange,
    RelabelReport,
    Ruid2Updater,
    UidUpdater,
    diff_snapshots,
)

__all__ = [
    "Area",
    "AxisEngine",
    "DepthStridePartitioner",
    "ExplicitPartitioner",
    "Frame",
    "GlobalParameters",
    "KRow",
    "KTable",
    "LabeledDocument",
    "Labeling",
    "MultiLabel",
    "MultiRuidScheme",
    "MultiRuidSchemeLabeling",
    "MultilevelParameters",
    "MultilevelRuidLabeling",
    "NumberingScheme",
    "Partitioner",
    "Relation",
    "RelabelChange",
    "RelabelReport",
    "Ruid2Label",
    "Ruid2Labeling",
    "Ruid2Order",
    "Ruid2Scheme",
    "Ruid2SchemeLabeling",
    "Ruid2Updater",
    "SingleAreaPartitioner",
    "SizeCapPartitioner",
    "UidLabeling",
    "UidScheme",
    "UidSchemeLabeling",
    "UidUpdater",
    "candidate_children",
    "candidate_siblings",
    "diff_snapshots",
    "dump_multilevel_parameters",
    "dump_parameters",
    "enumerate_ruid2",
    "lca_closure",
    "load_multilevel_parameters",
    "load_parameters",
    "partition_summary",
    "reconstruct_fragment",
    "rparent",
    "uid_preceding",
    "uid_relation",
]
