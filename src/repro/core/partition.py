"""Area-root selection strategies and the fan-out adjustment of §2.3.

A *partitioner* chooses the set of area-root nodes that induces the
frame (Definition 1). The paper leaves the choice open; the strategies
here cover the design space its discussion implies:

* :class:`SizeCapPartitioner` — bound every area's node count, so the
  relabel scope of an update is bounded (§3.2);
* :class:`DepthStridePartitioner` — cut at regular depths, giving a
  frame whose height is the tree height divided by the stride;
* :class:`ExplicitPartitioner` — a caller-provided root set (used for
  the paper's worked example, Fig. 4);
* :class:`SingleAreaPartitioner` — the degenerate partition {root}:
  the 2-level rUID then coincides with the original UID, a useful
  baseline and test oracle.

:func:`lca_closure` implements the §2.3 adjustment: closing the root
set under lowest common ancestors guarantees the frame fan-out never
exceeds the tree fan-out (the paper's "supplement additional area-root
nodes to reduce the value of κ").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Set

from repro.errors import PartitionError
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree


class Partitioner(ABC):
    """Strategy interface: select the area-root node ids for a tree."""

    #: whether :func:`lca_closure` is applied after selection
    adjust_fan_out: bool = True

    @abstractmethod
    def select_roots(self, tree: XmlTree) -> Set[int]:
        """Return the node ids of the chosen area roots.

        Implementations need not include the tree root; it is always
        added. The fan-out adjustment runs afterwards when
        :attr:`adjust_fan_out` is set.
        """

    def partition(self, tree: XmlTree) -> Set[int]:
        """Full pipeline: select, force the tree root, optionally adjust."""
        roots = set(self.select_roots(tree))
        roots.add(tree.root.node_id)
        if self.adjust_fan_out:
            roots = lca_closure(tree, roots)
        return roots


class SingleAreaPartitioner(Partitioner):
    """The degenerate partition: one area covering the whole tree."""

    adjust_fan_out = False

    def select_roots(self, tree: XmlTree) -> Set[int]:
        return {tree.root.node_id}


class ExplicitPartitioner(Partitioner):
    """Area roots supplied by the caller (as nodes or node ids)."""

    def __init__(self, roots: Iterable, adjust_fan_out: bool = False):
        self._root_ids = {
            r.node_id if isinstance(r, XmlNode) else int(r) for r in roots
        }
        self.adjust_fan_out = adjust_fan_out

    def select_roots(self, tree: XmlTree) -> Set[int]:
        return set(self._root_ids)


class DepthStridePartitioner(Partitioner):
    """Nodes at depth 0, s, 2s, ... become area roots.

    Leaves at cut depths still become (single-node-area) roots; the
    engine tolerates that, and it keeps the rule simple and regular.
    """

    def __init__(self, stride: int, adjust_fan_out: bool = True):
        if stride < 1:
            raise PartitionError(f"stride must be >= 1, got {stride}")
        self.stride = stride
        self.adjust_fan_out = adjust_fan_out

    def select_roots(self, tree: XmlTree) -> Set[int]:
        roots: Set[int] = set()
        frontier = [(tree.root, 0)]
        while frontier:
            node, depth = frontier.pop()
            if depth % self.stride == 0:
                roots.add(node.node_id)
            frontier.extend((child, depth + 1) for child in node.children)
        return roots


class SizeCapPartitioner(Partitioner):
    """Greedy top-down partition bounding each area's node count.

    Walking in document order, a node joins its parent's area unless
    that area has already reached *max_area_size* nodes, in which case
    the node opens a new area. Areas therefore never exceed
    ``max_area_size + (number of child-area boundary nodes)``; in
    practice the bound is tight enough that the relabel scope of §3.2
    is ``O(max_area_size)``.
    """

    def __init__(self, max_area_size: int, adjust_fan_out: bool = True):
        if max_area_size < 2:
            raise PartitionError(
                f"max_area_size must be >= 2, got {max_area_size}"
            )
        self.max_area_size = max_area_size
        self.adjust_fan_out = adjust_fan_out

    def select_roots(self, tree: XmlTree) -> Set[int]:
        roots: Set[int] = {tree.root.node_id}
        area_sizes: Dict[int, int] = {tree.root.node_id: 1}
        # node_id -> id of the area the node belongs to (as interior)
        area_of: Dict[int, int] = {tree.root.node_id: tree.root.node_id}
        stack = [(child, tree.root.node_id) for child in reversed(tree.root.children)]
        while stack:
            node, parent_area = stack.pop()
            if area_sizes[parent_area] >= self.max_area_size:
                roots.add(node.node_id)
                area_sizes[parent_area] += 1  # boundary leaf still occupies a slot
                area_sizes[node.node_id] = 1
                own_area = node.node_id
            else:
                area_sizes[parent_area] += 1
                own_area = parent_area
            area_of[node.node_id] = own_area
            for child in reversed(node.children):
                stack.append((child, own_area))
        return roots


def lca_closure(tree: XmlTree, root_ids: Set[int]) -> Set[int]:
    """Close *root_ids* under pairwise lowest common ancestors (§2.3).

    Property: if the root set is LCA-closed, every frame node's frame
    children lie in *distinct* child subtrees, hence the frame fan-out
    is bounded by the tree fan-out. It suffices to add the LCAs of
    nodes *adjacent in document order* (the classical result that the
    LCA-closure of a set equals the set plus adjacent-pair LCAs),
    iterated to a fixpoint — one round already suffices, a second pass
    is a cheap safety net that also validates.
    """
    by_id = {node.node_id: node for node in tree.preorder()}
    unknown = root_ids - set(by_id)
    if unknown:
        raise PartitionError(f"area roots not in tree: {sorted(unknown)}")
    order = tree.document_order_index()

    closed = set(root_ids)
    closed.add(tree.root.node_id)
    changed = True
    while changed:
        changed = False
        ordered = sorted(closed, key=lambda nid: order[nid])
        for first_id, second_id in zip(ordered, ordered[1:]):
            lca = tree.lowest_common_ancestor(by_id[first_id], by_id[second_id])
            if lca.node_id not in closed:
                closed.add(lca.node_id)
                changed = True
    return closed


def partition_summary(tree: XmlTree, root_ids: Set[int]) -> Dict[str, float]:
    """Descriptive statistics of a partition, for reports and ablations."""
    from repro.core.frame import Frame  # local import avoids a cycle

    frame = Frame(tree, root_ids)
    sizes = [area.size for area in frame.areas.values()]
    return {
        "areas": len(sizes),
        "kappa": max(1, frame.max_fan_out()),
        "mean_area_size": sum(sizes) / len(sizes),
        "max_area_size": max(sizes),
        "tree_max_fanout": max(1, tree.max_fan_out()),
    }
