"""The 2-level recursive UID (rUID) numbering scheme — paper §2.1–2.3.

Construction follows the paper's four steps (Fig. 3):

1. partition the tree into UID-local areas and build the frame over
   their roots;
2. enumerate the frame with a κ-ary UID → *global indices*;
3. enumerate each area with its own kᵢ-ary UID → *local indices*;
4. compose the triple identifiers of Definition 3 and record table K.

Once built, ``κ`` and ``K`` are the only state the identifier
arithmetic touches: :meth:`Ruid2Labeling.rparent` is the paper's Fig. 6
algorithm and never dereferences the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core import uid as uid_math
from repro.core.frame import Frame
from repro.core.ktable import KRow, KTable
from repro.core.labels import Ruid2Label
from repro.core.partition import Partitioner, SizeCapPartitioner
from repro.errors import NoParentError, UnknownLabelError
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree


@dataclass
class _Enumeration:
    """Everything one enumeration pass produces."""

    frame: Frame
    kappa: int
    ktable: KTable
    label_by_node: Dict[int, Ruid2Label] = field(default_factory=dict)
    node_by_label: Dict[Ruid2Label, XmlNode] = field(default_factory=dict)
    global_by_root: Dict[int, int] = field(default_factory=dict)  # area-root node_id -> g
    root_by_global: Dict[int, XmlNode] = field(default_factory=dict)
    local_fanout_used: Dict[int, int] = field(default_factory=dict)  # root node_id -> k_i


class StickyGlobalConflict(Exception):
    """Preserved global indices cannot be honoured (ordinal overflow or
    a frame edge moved); the caller must fall back to a fresh global
    enumeration."""


def enumerate_ruid2(
    tree: XmlTree,
    area_root_ids: Set[int],
    min_kappa: int = 1,
    min_local_fanouts: Optional[Dict[int, int]] = None,
    fixed_globals: Optional[Dict[int, int]] = None,
) -> _Enumeration:
    """Run the Fig. 3 build algorithm over a fixed partition.

    ``min_kappa`` and ``min_local_fanouts`` (keyed by area-root node
    id) let callers keep previously committed fan-outs *sticky* across
    incremental updates: fan-outs only ever grow, as shrinking them
    would gratuitously renumber untouched nodes (§3.2).

    ``fixed_globals`` (area-root node id → global index) pins surviving
    areas to their previous global indices, so deleting an area does
    not shift its following siblings — the paper's deletion semantics
    ("the nodes in the descendant areas are not affected because the
    frame F is unchanged", §3.2). New areas take the lowest free child
    ordinals; if a pinned index is inconsistent with the current frame
    (edge moved, or ordinals exceed κ), :class:`StickyGlobalConflict`
    is raised and the caller falls back to a fresh enumeration.
    """
    frame = Frame(tree, area_root_ids)
    kappa = max(1, frame.max_fan_out(), min_kappa)
    sticky = min_local_fanouts or {}
    result = _Enumeration(frame=frame, kappa=kappa, ktable=KTable())

    # -- global enumeration (Fig. 3, lines 1-3) ------------------------
    root = tree.root
    pinned = fixed_globals or {}
    if pinned.get(root.node_id, 1) != 1:
        raise StickyGlobalConflict("the document root must keep global 1")
    result.global_by_root[root.node_id] = 1
    result.root_by_global[1] = root
    for area_root in frame.frame_levelorder():
        g = result.global_by_root[area_root.node_id]
        children = frame.frame_children[area_root.node_id]
        if len(children) > kappa:
            raise StickyGlobalConflict("frame fan-out exceeds committed kappa")
        taken: Dict[int, XmlNode] = {}
        free: List[XmlNode] = []
        for child_root in children:
            wanted = pinned.get(child_root.node_id)
            if wanted is None:
                free.append(child_root)
                continue
            if uid_math.parent(wanted, kappa) != g:
                raise StickyGlobalConflict(
                    f"pinned global {wanted} no longer hangs under {g}"
                )
            ordinal = uid_math.child_ordinal(wanted, kappa)
            if ordinal in taken:
                raise StickyGlobalConflict(f"ordinal collision under {g}")
            taken[ordinal] = child_root
        next_ordinal = 0
        for child_root in children:
            if child_root.node_id in pinned:
                child_g = pinned[child_root.node_id]
            else:
                while next_ordinal in taken:
                    next_ordinal += 1
                if next_ordinal >= kappa:
                    raise StickyGlobalConflict("no free child ordinal left")
                taken[next_ordinal] = child_root
                child_g = uid_math.child(g, kappa, next_ordinal)
            result.global_by_root[child_root.node_id] = child_g
            result.root_by_global[child_g] = child_root

    # -- local enumerations (Fig. 3, lines 4-13) -----------------------
    # local index of each node *within its containing area*; area roots
    # are indexed here as leaves of the upper area (the tree root gets 1).
    local_in_upper: Dict[int, int] = {root.node_id: 1}
    for area_root in frame.frame_levelorder():
        area = frame.areas[area_root.node_id]
        k_local = max(1, area.local_fan_out(), sticky.get(area_root.node_id, 0))
        result.local_fanout_used[area_root.node_id] = k_local
        boundary = {n.node_id for n in area.child_area_roots}
        locals_here: Dict[int, int] = {area_root.node_id: 1}
        frontier: List[XmlNode] = [area_root]
        while frontier:
            next_frontier: List[XmlNode] = []
            for node in frontier:
                if node.node_id in boundary and node is not area_root:
                    continue  # leaf of this area; children live below
                node_local = locals_here[node.node_id]
                for ordinal, child_node in enumerate(node.children):
                    child_local = uid_math.child(node_local, k_local, ordinal)
                    locals_here[child_node.node_id] = child_local
                    next_frontier.append(child_node)
            frontier = next_frontier
        for node_id, local in locals_here.items():
            if node_id == area_root.node_id:
                continue  # its upper-area index is assigned by the upper pass
            local_in_upper[node_id] = local

    # -- identifier composition + table K (Fig. 3, lines 10, 14, e) ----
    for area_root in frame.frame_levelorder():
        g = result.global_by_root[area_root.node_id]
        result.ktable.add(
            KRow(
                global_index=g,
                local_index=local_in_upper[area_root.node_id],
                fan_out=result.local_fanout_used[area_root.node_id],
            )
        )
    for node in tree.preorder():
        if frame.is_area_root(node):
            label = Ruid2Label(
                result.global_by_root[node.node_id],
                local_in_upper[node.node_id],
                True,
            )
        else:
            containing_root_id = frame.containing_area[node.node_id]
            label = Ruid2Label(
                result.global_by_root[containing_root_id],
                local_in_upper[node.node_id],
                False,
            )
        result.label_by_node[node.node_id] = label
        result.node_by_label[label] = node
    return result


class Ruid2Labeling:
    """2-level rUID labels for every node of a tree.

    Parameters
    ----------
    tree:
        The document tree to label.
    partitioner:
        Strategy choosing the area roots; defaults to
        :class:`~repro.core.partition.SizeCapPartitioner` with a cap of
        64 nodes per area.
    min_kappa:
        Optional headroom for the frame fan-out κ.
    """

    scheme_name = "ruid2"

    def __init__(
        self,
        tree: XmlTree,
        partitioner: Optional[Partitioner] = None,
        min_kappa: int = 1,
    ):
        self.tree = tree
        self.partitioner = partitioner or SizeCapPartitioner(64)
        self._min_kappa = min_kappa
        self.area_root_ids: Set[int] = self.partitioner.partition(tree)
        self._sticky_local: Dict[int, int] = {}
        self._state = enumerate_ruid2(
            tree, self.area_root_ids, min_kappa=min_kappa
        )
        self._sticky_local = dict(self._state.local_fanout_used)
        #: enumeration generation: bumped whenever the label assignment
        #: may have changed (reenumerate/rebuild). Generation-stamped
        #: caches (rank index, rparent memo, axis/plan caches) key off it.
        self.generation = 0
        self._parent_memo: Dict[Ruid2Label, Ruid2Label] = {}

    # ------------------------------------------------------------------
    # Re-enumeration (used by incremental update, §3.2)
    # ------------------------------------------------------------------
    def reenumerate(self, keep_globals: bool = True) -> bool:
        """Re-run the build over the *current* partition.

        Committed fan-outs are sticky (they only grow), and — per the
        paper's §3.2 deletion semantics — surviving areas keep their
        global indices when possible. Returns True iff the pinning had
        to be abandoned (a whole-frame renumbering happened).
        """
        pinned: Optional[Dict[int, int]] = None
        if keep_globals:
            pinned = {
                rid: g
                for rid, g in self._state.global_by_root.items()
                if rid in self.area_root_ids
            }
        frame_renumbered = False
        try:
            self._state = enumerate_ruid2(
                self.tree,
                self.area_root_ids,
                min_kappa=max(self._min_kappa, self.kappa),
                min_local_fanouts=self._sticky_local,
                fixed_globals=pinned,
            )
        except StickyGlobalConflict:
            frame_renumbered = True
            self._state = enumerate_ruid2(
                self.tree,
                self.area_root_ids,
                min_kappa=max(self._min_kappa, self.kappa),
                min_local_fanouts=self._sticky_local,
            )
        for root_id, used in self._state.local_fanout_used.items():
            previous = self._sticky_local.get(root_id, 0)
            self._sticky_local[root_id] = max(previous, used)
        # Forget areas that no longer exist (deleted subtrees).
        live = set(self._state.local_fanout_used)
        self._sticky_local = {
            rid: k for rid, k in self._sticky_local.items() if rid in live
        }
        self._invalidate_memos()
        return frame_renumbered

    def _invalidate_memos(self) -> None:
        self.generation += 1
        self._parent_memo.clear()

    def snapshot(self) -> Dict[int, Ruid2Label]:
        """node_id → label copy, for update-scope diffing."""
        return dict(self._state.label_by_node)

    def local_fan_out_of(self, area_root_id: int) -> int:
        """The committed (sticky) local fan-out of an area."""
        return self._sticky_local[area_root_id]

    def rebuild(self) -> None:
        """Re-partition from scratch and re-enumerate (a full reorg)."""
        self.area_root_ids = self.partitioner.partition(self.tree)
        self._sticky_local = {}
        self._state = enumerate_ruid2(
            self.tree, self.area_root_ids, min_kappa=self._min_kappa
        )
        self._sticky_local = dict(self._state.local_fanout_used)
        self._invalidate_memos()

    # ------------------------------------------------------------------
    # Global parameters (the in-memory state, §2.1)
    # ------------------------------------------------------------------
    @property
    def kappa(self) -> int:
        """The frame fan-out κ."""
        return self._state.kappa

    @property
    def ktable(self) -> KTable:
        """The global parameter table K."""
        return self._state.ktable

    @property
    def frame(self) -> Frame:
        return self._state.frame

    def area_count(self) -> int:
        return len(self._state.ktable)

    # ------------------------------------------------------------------
    # Label lookups
    # ------------------------------------------------------------------
    def label_of(self, node: XmlNode) -> Ruid2Label:
        try:
            return self._state.label_by_node[node.node_id]
        except KeyError:
            raise UnknownLabelError(f"node {node!r} is not labeled") from None

    def node_of(self, label: Ruid2Label) -> XmlNode:
        try:
            return self._state.node_by_label[label]
        except KeyError:
            raise UnknownLabelError(f"label {label} names no real node") from None

    def exists(self, label: Ruid2Label) -> bool:
        return label in self._state.node_by_label

    def labels(self) -> Iterator[Ruid2Label]:
        return iter(self._state.node_by_label)

    def items(self) -> Iterator[Tuple[XmlNode, Ruid2Label]]:
        """(node, label) pairs in document order."""
        for node in self.tree.preorder():
            yield node, self._state.label_by_node[node.node_id]

    def area_root_node(self, global_index: int) -> XmlNode:
        try:
            return self._state.root_by_global[global_index]
        except KeyError:
            raise UnknownLabelError(f"no area with global index {global_index}") from None

    def global_of_area_root(self, node: XmlNode) -> int:
        try:
            return self._state.global_by_root[node.node_id]
        except KeyError:
            raise UnknownLabelError(f"{node!r} is not an area root") from None

    # ------------------------------------------------------------------
    # rparent — the paper's Fig. 6 algorithm (pure κ/K arithmetic)
    # ------------------------------------------------------------------
    def rparent(self, label: Ruid2Label) -> Ruid2Label:
        """Identifier of the parent node, computed entirely from κ and
        table K (Lemma 1). Raises :class:`NoParentError` at the root.

        Memoised per enumeration generation: the result is a pure
        function of (label, κ, K), and the memo is cleared whenever a
        re-enumeration can change κ or K."""
        memo = self._parent_memo
        parent = memo.get(label)
        if parent is None:
            parent = rparent(label, self.kappa, self.ktable)
            memo[label] = parent
        return parent

    def rancestors(self, label: Ruid2Label) -> List[Ruid2Label]:
        """Proper ancestors bottom-up (repetition of rparent, §3.5)."""
        result: List[Ruid2Label] = []
        current = label
        while not current.is_document_root:
            current = self.rparent(current)
            result.append(current)
        return result

    def is_ancestor(self, candidate: Ruid2Label, label: Ruid2Label) -> bool:
        """True iff *candidate* is a proper ancestor of *label*;
        determined via parent-chain arithmetic (§3.3)."""
        current = label
        while not current.is_document_root:
            current = self.rparent(current)
            if current == candidate:
                return True
        return False

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def label_bits(self, label: Ruid2Label) -> int:
        return label.bits()

    def max_label_bits(self) -> int:
        return max(label.bits() for label in self.labels())

    def memory_bytes(self) -> int:
        """Size of the in-memory global parameters (κ + K)."""
        return 8 + self.ktable.memory_bytes()

    def __len__(self) -> int:
        return len(self._state.label_by_node)

    def __repr__(self) -> str:
        return (
            f"<Ruid2Labeling nodes={len(self)} areas={self.area_count()} "
            f"kappa={self.kappa}>"
        )


def rparent(label: Ruid2Label, kappa: int, ktable: KTable) -> Ruid2Label:
    """The stand-alone Fig. 6 algorithm.

    Exposed at module level so that callers holding only the global
    parameters — e.g. a query processor that loaded κ and K but not the
    document — can run it, which is precisely the deployment the paper
    argues for (§2.2, "without any disk I/O").
    """
    if label.is_document_root:
        raise NoParentError("the document root (1, 1, true) has no parent")
    if label.is_area_root:
        g = uid_math.parent(label.global_index, kappa)
    else:
        g = label.global_index
    k_j = ktable.fan_out(g)
    local = (label.local_index - 2) // k_j + 1
    if local == 1:
        return Ruid2Label(g, ktable.local_of_root(g), True)
    return Ruid2Label(g, local, False)
