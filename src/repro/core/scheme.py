"""Uniform numbering-scheme interface.

Experiments sweep several schemes (original UID, 2-level and multilevel
rUID, Dewey, pre/post, region, ...) over the same workloads. This
module defines the two abstractions they share:

* :class:`Labeling` — a built assignment of labels to one tree, with
  the operations every experiment needs (lookup, parent computation,
  structural relation, bit accounting, structural update);
* :class:`NumberingScheme` — the factory that builds a labeling.

Adapters for the paper's schemes (UID, rUID) live here; the comparison
schemes implement the same ABCs in :mod:`repro.baselines`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Generic, Iterator, Optional, TypeVar

from repro.core.axes import AxisEngine
from repro.core.columnar import ColumnarIndex
from repro.core.labels import Relation, Ruid2Label
from repro.core.multilevel import MultilevelRuidLabeling
from repro.core.order import Ruid2Order, uid_relation
from repro.core.partition import Partitioner, SizeCapPartitioner
from repro.core.rankindex import RankIndex
from repro.core.ruid import Ruid2Labeling
from repro.core.uid import UidLabeling
from repro.core.update import RelabelReport, Ruid2Updater, UidUpdater
from repro.errors import NumberingError
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree

LabelT = TypeVar("LabelT")


class Labeling(ABC, Generic[LabelT]):
    """A materialised label assignment over one tree."""

    #: short identifier used in report tables
    scheme_name: str = "abstract"
    #: True when computing a parent requires an auxiliary index or the
    #: tree itself (pre/post has this defect; UID/rUID/Dewey do not)
    parent_needs_index: bool = False

    def __init__(self, tree: XmlTree):
        self.tree = tree
        self._generation = 0
        self._rank_index: Optional[RankIndex] = None
        self._columnar_index: Optional[ColumnarIndex] = None

    # -- cache generations ----------------------------------------------
    @property
    def generation(self) -> int:
        """Monotonic counter of structural states. Every mutation that
        can change labels (insert/delete/reenumerate/rebuild) advances
        it; derived caches (rank index, axis memos, compiled plans) are
        stamped with the generation they were built from and must be
        discarded on mismatch."""
        return self._generation

    def bump_generation(self) -> None:
        """Invalidate every generation-stamped cache."""
        self._generation += 1
        self._rank_index = None
        self._columnar_index = None

    def rank_index(self) -> RankIndex:
        """The document-order rank index for the current generation.

        Built lazily, once per generation; a label's preorder rank and
        subtree-end rank turn document-order sorts and ancestry tests
        into integer comparisons (the query fast path)."""
        index = self._rank_index
        generation = self.generation
        if index is None or index.generation != generation:
            index = RankIndex.build(self, generation)
            self._rank_index = index
        return index

    def columnar_index(self) -> ColumnarIndex:
        """Flat-array structure columns for the current generation.

        Built lazily in one DFS and cached alongside the rank index;
        stores and evaluators serve descendant slices, sibling-chain
        children, and per-tag candidate arrays straight from its
        buffers instead of walking the object tree."""
        index = self._columnar_index
        generation = self.generation
        if index is None or index.generation != generation:
            index = ColumnarIndex.build(self, generation)
            self._columnar_index = index
        return index

    def doc_rank(self) -> Dict:
        """label → preorder rank for the current generation (the raw
        dict, suitable as a ``sorted`` key via ``__getitem__``)."""
        return self.rank_index().rank

    # -- lookups --------------------------------------------------------
    @abstractmethod
    def label_of(self, node: XmlNode) -> LabelT:
        """The label assigned to *node*."""

    @abstractmethod
    def node_of(self, label: LabelT) -> XmlNode:
        """The node carrying *label* (raises UnknownLabelError)."""

    def labels(self) -> Iterator[LabelT]:
        """All labels, in document order."""
        return (self.label_of(node) for node in self.tree.preorder())

    # -- structure from labels -------------------------------------------
    @abstractmethod
    def parent_label(self, label: LabelT) -> LabelT:
        """Parent's label (raises NoParentError at the document root)."""

    @abstractmethod
    def relation(self, first: LabelT, second: LabelT) -> Relation:
        """Structural relation of two labels."""

    def is_ancestor(self, candidate: LabelT, label: LabelT) -> bool:
        return self.relation(candidate, label) is Relation.ANCESTOR

    def doc_compare(self, first: LabelT, second: LabelT) -> int:
        relation = self.relation(first, second)
        if relation is Relation.SELF:
            return 0
        return -1 if relation.precedes else 1

    # -- measurement -------------------------------------------------------
    @abstractmethod
    def label_bits(self, label: LabelT) -> int:
        """Storage bits for one label."""

    def max_label_bits(self) -> int:
        return max(self.label_bits(label) for label in self.labels())

    def total_label_bits(self) -> int:
        return sum(self.label_bits(label) for label in self.labels())

    def memory_bytes(self) -> int:
        """Bytes of auxiliary main-memory state (κ+K for rUID; 0 if none)."""
        return 0

    # -- update -------------------------------------------------------------
    @abstractmethod
    def snapshot(self) -> Dict[int, LabelT]:
        """node_id → label copy."""

    @abstractmethod
    def insert(self, parent: XmlNode, position: int, node: XmlNode) -> RelabelReport:
        """Insert and relabel; returns exact accounting."""

    @abstractmethod
    def delete(self, node: XmlNode) -> RelabelReport:
        """Delete the subtree and relabel; returns exact accounting."""


class NumberingScheme(ABC):
    """Factory: builds a :class:`Labeling` over a tree."""

    name: str = "abstract"

    @abstractmethod
    def build(self, tree: XmlTree) -> Labeling:
        """Label every node of *tree*."""

    def __repr__(self) -> str:
        return f"<NumberingScheme {self.name}>"


# ----------------------------------------------------------------------
# Adapters for the paper's schemes
# ----------------------------------------------------------------------


class UidSchemeLabeling(Labeling[int]):
    """Original UID through the uniform interface."""

    scheme_name = "uid"
    parent_needs_index = False

    def __init__(self, tree: XmlTree, fan_out: Optional[int] = None):
        super().__init__(tree)
        self.core = UidLabeling(tree, fan_out=fan_out)
        self._updater = UidUpdater(self.core)

    def label_of(self, node: XmlNode) -> int:
        return self.core.label_of(node)

    def node_of(self, label: int) -> XmlNode:
        return self.core.node_of(label)

    def parent_label(self, label: int) -> int:
        return self.core.parent_label(label)

    def relation(self, first: int, second: int) -> Relation:
        return uid_relation(first, second, self.core.fan_out)

    def label_bits(self, label: int) -> int:
        return self.core.label_bits(label)

    def snapshot(self) -> Dict[int, int]:
        return self.core.snapshot()

    def insert(self, parent: XmlNode, position: int, node: XmlNode) -> RelabelReport:
        report = self._updater.insert(parent, position, node)
        self.bump_generation()
        return report

    def delete(self, node: XmlNode) -> RelabelReport:
        report = self._updater.delete(node)
        self.bump_generation()
        return report


class Ruid2SchemeLabeling(Labeling[Ruid2Label]):
    """2-level rUID through the uniform interface."""

    scheme_name = "ruid2"
    parent_needs_index = False

    def __init__(
        self,
        tree: XmlTree,
        partitioner: Optional[Partitioner] = None,
        split_threshold: Optional[int] = None,
    ):
        super().__init__(tree)
        self.core = Ruid2Labeling(tree, partitioner=partitioner)
        self._updater = Ruid2Updater(self.core, split_threshold=split_threshold)
        self._order: Optional[Ruid2Order] = None
        self._axes: Optional[AxisEngine] = None

    @classmethod
    def from_core(
        cls, core: Ruid2Labeling, updater: Optional[Ruid2Updater] = None
    ) -> "Ruid2SchemeLabeling":
        """Wrap an existing core labeling (sharing its state) instead
        of building a fresh one — used by :class:`LabeledDocument` so
        queries and updates operate on one labeling."""
        adapter = cls.__new__(cls)
        Labeling.__init__(adapter, core.tree)
        adapter.core = core
        adapter._updater = updater or Ruid2Updater(core)
        adapter._order = None
        adapter._axes = None
        return adapter

    @property
    def generation(self) -> int:
        """Track the core labeling's generation: callers may mutate the
        shared core directly (``LabeledDocument`` does), and every such
        mutation re-enumerates — bumping the core counter — so derived
        caches invalidate regardless of which handle performed the
        update."""
        return self.core.generation

    def _order_oracle(self) -> Ruid2Order:
        # κ/K change on overflow; rebuild the oracle lazily per state.
        oracle = self._order
        if (
            oracle is None
            or oracle.kappa != self.core.kappa
            or oracle.ktable is not self.core.ktable
        ):
            oracle = Ruid2Order(self.core.kappa, self.core.ktable)
            self._order = oracle
        return oracle

    @property
    def axes(self) -> AxisEngine:
        """Axis routines bound to the current labeling state."""
        engine = self._axes
        if engine is None or engine.labeling.ktable is not self.core.ktable:
            engine = AxisEngine(self.core)
            self._axes = engine
        return engine

    def label_of(self, node: XmlNode) -> Ruid2Label:
        return self.core.label_of(node)

    def node_of(self, label: Ruid2Label) -> XmlNode:
        return self.core.node_of(label)

    def parent_label(self, label: Ruid2Label) -> Ruid2Label:
        return self.core.rparent(label)

    def relation(self, first: Ruid2Label, second: Ruid2Label) -> Relation:
        return self._order_oracle().relation(first, second)

    def label_bits(self, label: Ruid2Label) -> int:
        return label.bits()

    def memory_bytes(self) -> int:
        return self.core.memory_bytes()

    def snapshot(self) -> Dict[int, Ruid2Label]:
        return self.core.snapshot()

    def insert(self, parent: XmlNode, position: int, node: XmlNode) -> RelabelReport:
        report = self._updater.insert(parent, position, node)
        self._order = None
        self._axes = None
        return report

    def delete(self, node: XmlNode) -> RelabelReport:
        report = self._updater.delete(node)
        self._order = None
        self._axes = None
        return report


class MultiRuidSchemeLabeling(Labeling):
    """Multilevel rUID through the uniform interface.

    Structural updates are not defined by the paper for the multilevel
    form and are not supported here; experiment E5 sweeps the 2-level
    scheme (which is where §3.2's argument lives).
    """

    scheme_name = "ruid-multi"
    parent_needs_index = False

    def __init__(self, tree: XmlTree, levels: int = 3, partitioners=None):
        super().__init__(tree)
        self.core = MultilevelRuidLabeling(tree, levels=levels, partitioners=partitioners)

    def label_of(self, node: XmlNode):
        return self.core.label_of(node)

    def node_of(self, label) -> XmlNode:
        return self.core.node_of(label)

    def parent_label(self, label):
        return self.core.rparent(label)

    def relation(self, first, second) -> Relation:
        return self.core.relation(first, second)

    def label_bits(self, label) -> int:
        return label.bits()

    def snapshot(self) -> Dict[int, object]:
        return {node.node_id: self.core.label_of(node) for node in self.tree.preorder()}

    def insert(self, parent: XmlNode, position: int, node: XmlNode) -> RelabelReport:
        raise NumberingError(
            "multilevel rUID updates are undefined in the paper; use the "
            "2-level scheme for update experiments"
        )

    def delete(self, node: XmlNode) -> RelabelReport:
        raise NumberingError(
            "multilevel rUID updates are undefined in the paper; use the "
            "2-level scheme for update experiments"
        )


class UidScheme(NumberingScheme):
    """Factory for the original UID."""

    name = "uid"

    def __init__(self, fan_out: Optional[int] = None):
        self.fan_out = fan_out

    def build(self, tree: XmlTree) -> UidSchemeLabeling:
        return UidSchemeLabeling(tree, fan_out=self.fan_out)


class Ruid2Scheme(NumberingScheme):
    """Factory for the 2-level rUID."""

    name = "ruid2"

    def __init__(
        self,
        partitioner: Optional[Partitioner] = None,
        max_area_size: int = 64,
        split_threshold: Optional[int] = None,
    ):
        self.partitioner = partitioner or SizeCapPartitioner(max_area_size)
        self.split_threshold = split_threshold

    def build(self, tree: XmlTree) -> Ruid2SchemeLabeling:
        return Ruid2SchemeLabeling(
            tree, partitioner=self.partitioner, split_threshold=self.split_threshold
        )


class MultiRuidScheme(NumberingScheme):
    """Factory for the multilevel rUID."""

    name = "ruid-multi"

    def __init__(self, levels: int = 3, partitioners=None):
        self.levels = levels
        self.partitioners = partitioners

    def build(self, tree: XmlTree) -> MultiRuidSchemeLabeling:
        return MultiRuidSchemeLabeling(
            tree, levels=self.levels, partitioners=self.partitioners
        )
