"""Document-order determination from identifiers (paper §3.4, Lemmas 2–3).

Everything in this module is *label arithmetic*: given κ and table K,
the full structural relation (self / ancestor / descendant / preceding /
following) of any two nodes is decided without touching the tree. This
is the property Lemma 3 establishes via the frame, generalising the
paper's Fig. 10 routine for the 1-level UID.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core import uid as uid_math
from repro.core.ktable import KTable
from repro.core.labels import Relation, Ruid2Label


def uid_relation(first: int, second: int, fan_out: int) -> Relation:
    """Structural relation of two identifiers in one k-ary UID tree."""
    if first == second:
        return Relation.SELF
    if uid_math.is_ancestor(first, second, fan_out):
        return Relation.ANCESTOR
    if uid_math.is_ancestor(second, first, fan_out):
        return Relation.DESCENDANT
    if uid_math.document_compare(first, second, fan_out) < 0:
        return Relation.PRECEDING
    return Relation.FOLLOWING


def uid_preceding(first: int, second: int, fan_out: int) -> Optional[int]:
    """The paper's Fig. 10 routine, verbatim: which of two 1-level UIDs
    precedes the other?

    Returns the preceding identifier, or ``None`` when the nodes are in
    an ancestor–descendant relationship (the routine's ``null``).
    """
    # 1-2. Compute the sorted ancestor sets (self included so the LCA
    #      test below covers the ancestor case, as the routine intends).
    chain_first = [first, *uid_math.ancestors(first, fan_out)]
    chain_second = [second, *uid_math.ancestors(second, fan_out)]
    ancestors_first = set(chain_first)
    # 3. Lowest common ancestor: first hit walking up from `second`.
    lca = next(node for node in chain_second if node in ancestors_first)
    # 4-5. Ancestor-descendant pairs have no preceding order.
    if lca == first or lca == second:
        return None
    # 7. Children of the LCA on each path.
    child_first = chain_first[chain_first.index(lca) - 1]
    child_second = chain_second[chain_second.index(lca) - 1]
    # 8. Compare the UIDs of the children (same level ⇒ numeric order).
    return first if child_first < child_second else second


class Ruid2Order:
    """Document-order oracle over 2-level rUID labels.

    Holds only the global parameters (κ, K); all queries are in-memory
    arithmetic. The area chain of a label is recovered through κ-ary
    parent arithmetic on global indices, and the within-area decision
    is the projection argument of Lemma 2.
    """

    def __init__(self, kappa: int, ktable: KTable):
        self.kappa = max(1, kappa)
        self.ktable = ktable

    # ------------------------------------------------------------------
    def area_chain(self, label: Ruid2Label) -> List[int]:
        """Global indices from the label's innermost area up to area 1.

        For an area root the innermost area is the area it *roots*.
        """
        chain = [label.global_index]
        current = label.global_index
        while current != 1:
            current = uid_math.parent(current, self.kappa)
            chain.append(current)
        return chain

    def position_in(self, label: Ruid2Label) -> int:
        """The node's local position inside its innermost area."""
        return 1 if label.is_area_root else label.local_index

    def relation(self, first: Ruid2Label, second: Ruid2Label) -> Relation:
        """Full structural relation of two labels (Lemmas 2–3)."""
        if first == second:
            return Relation.SELF

        chain_first = self.area_chain(first)[::-1]  # top-down
        chain_second = self.area_chain(second)[::-1]
        shared = 0
        limit = min(len(chain_first), len(chain_second))
        while shared < limit and chain_first[shared] == chain_second[shared]:
            shared += 1
        # Both chains start at area 1, so shared >= 1.
        common_area = chain_first[shared - 1]

        position_first = self._branch_position(first, chain_first, shared)
        position_second = self._branch_position(second, chain_second, shared)
        fan_out = self.ktable.fan_out(common_area)
        relation = uid_relation(position_first, position_second, fan_out)

        if relation is Relation.SELF:
            # The branch positions coincide: one node is the area root
            # through which the other's chain continues.
            return (
                Relation.ANCESTOR
                if len(chain_first) < len(chain_second)
                else Relation.DESCENDANT
            )
        return relation

    def _branch_position(
        self, label: Ruid2Label, chain_top_down: List[int], shared: int
    ) -> int:
        """Projection of the node onto the last common area (Lemma 2):
        either the node's own position (its chain ends there) or the
        position of the sub-area root its chain descends through."""
        if len(chain_top_down) == shared:
            return self.position_in(label)
        descending_area = chain_top_down[shared]
        return self.ktable.local_of_root(descending_area)

    # -- conveniences ----------------------------------------------------
    def is_ancestor(self, candidate: Ruid2Label, label: Ruid2Label) -> bool:
        return self.relation(candidate, label) is Relation.ANCESTOR

    def compare(self, first: Ruid2Label, second: Ruid2Label) -> int:
        """-1/0/+1 document-order comparison (ancestors come first)."""
        relation = self.relation(first, second)
        if relation is Relation.SELF:
            return 0
        return -1 if relation.precedes else 1

    def sort_key(self, label: Ruid2Label):
        """A total-order key consistent with document order.

        Materialises the (area-position) path top-down; lexicographic
        tuple comparison then equals document order, with ancestors
        first (shorter paths are prefixes of their descendants').
        """
        chain = self.area_chain(label)[::-1]
        key: Tuple[int, ...] = ()
        for index, area in enumerate(chain[1:], start=1):
            key += self._uid_path_key(
                self.ktable.local_of_root(area),
                self.ktable.fan_out(chain[index - 1]),
            )
        key += self._uid_path_key(
            self.position_in(label), self.ktable.fan_out(chain[-1])
        )
        return key

    @staticmethod
    def _uid_path_key(identifier: int, fan_out: int) -> Tuple[int, ...]:
        """Root-to-node child-ordinal path of a UID — a Dewey-style key
        whose lexicographic order equals document order within an area."""
        path: List[int] = []
        current = identifier
        while current != 1:
            path.append(uid_math.child_ordinal(current, fan_out))
            current = uid_math.parent(current, fan_out)
        return tuple(reversed(path))
