"""Frames and UID-local areas (paper Definitions 1 and 2).

Given a tree ``T`` and a set of *area-root* nodes (always containing
the root of ``T``):

* the **frame** ``F`` is the tree over the area roots where the parent
  of an area root is its nearest proper ancestor that is also an area
  root (Definition 1);
* the **UID-local area** of an area root ``n`` is the induced subtree
  rooted at ``n`` whose downward paths stop at the first area root
  encountered (those boundary roots are *leaves* of the area) or at a
  leaf of ``T`` (Definition 2).

Two areas intersect only at a shared boundary node, which is the root
of the lower area — exactly the covering property the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.errors import PartitionError
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree


@dataclass
class Area:
    """One UID-local area.

    Attributes
    ----------
    root:
        The area-root node.
    nodes:
        All nodes of the area in document order, including ``root`` and
        including the roots of child areas (as leaves of this area).
    child_area_roots:
        Roots of the areas directly below this one, in document order.
    """

    root: XmlNode
    nodes: List[XmlNode] = field(default_factory=list)
    child_area_roots: List[XmlNode] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.nodes)

    def local_fan_out(self) -> int:
        """Maximal fan-out used when enumerating this area.

        Children of the area's *leaf* nodes (child-area roots and tree
        leaves) belong to lower areas and do not count.
        """
        boundary = {n.node_id for n in self.child_area_roots}
        best = 0
        for node in self.nodes:
            if node.node_id in boundary and node is not self.root:
                continue  # leaf of this area; its children are elsewhere
            if node.fan_out > best:
                best = node.fan_out
        return best

    def __repr__(self) -> str:
        return f"<Area root={self.root.tag!r} size={self.size} children={len(self.child_area_roots)}>"


class Frame:
    """The frame ``F`` over a set of area roots, plus the area map.

    Construction validates Definition 1/2: the tree root must be an
    area root and every area root must belong to the tree.
    """

    def __init__(self, tree: XmlTree, area_root_ids: Set[int]):
        self.tree = tree
        if tree.root.node_id not in area_root_ids:
            raise PartitionError("the tree root must be an area root")
        self.area_root_ids = set(area_root_ids)
        #: area-root node_id -> Area
        self.areas: Dict[int, Area] = {}
        #: area-root node_id -> parent area-root node_id (frame edge)
        self.frame_parent: Dict[int, Optional[int]] = {}
        #: area-root node_id -> list of child area-root nodes, doc order
        self.frame_children: Dict[int, List[XmlNode]] = {}
        #: any node_id -> node_id of the root of the area that *contains*
        #: it as an interior/leaf node. For an area root this is the
        #: *upper* area (the tree root maps to itself).
        self.containing_area: Dict[int, int] = {}
        self._node_by_id: Dict[int, XmlNode] = {}
        self._build()

    def _build(self) -> None:
        tree_ids = {node.node_id for node in self.tree.preorder()}
        missing = self.area_root_ids - tree_ids
        if missing:
            raise PartitionError(f"area roots not in tree: {sorted(missing)}")

        for rid in self.area_root_ids:
            self.frame_children[rid] = []

        root = self.tree.root
        self._node_by_id[root.node_id] = root
        self.frame_parent[root.node_id] = None
        self.containing_area[root.node_id] = root.node_id
        self.areas[root.node_id] = Area(root=root, nodes=[root])

        # One preorder pass: track the current enclosing area.
        stack: List[tuple] = [
            (child, root.node_id) for child in reversed(root.children)
        ]
        while stack:
            node, enclosing = stack.pop()
            self._node_by_id[node.node_id] = node
            area = self.areas[enclosing]
            area.nodes.append(node)
            self.containing_area[node.node_id] = enclosing
            if node.node_id in self.area_root_ids:
                # Boundary: leaf of the enclosing area, root of a new one.
                area.child_area_roots.append(node)
                self.frame_parent[node.node_id] = enclosing
                self.frame_children[enclosing].append(node)
                self.areas[node.node_id] = Area(root=node, nodes=[node])
                next_enclosing = node.node_id
            else:
                next_enclosing = enclosing
            for child in reversed(node.children):
                stack.append((child, next_enclosing))

    # ------------------------------------------------------------------
    # Frame-as-a-tree accessors
    # ------------------------------------------------------------------
    @property
    def root_area(self) -> Area:
        return self.areas[self.tree.root.node_id]

    def area_of_root(self, node: XmlNode) -> Area:
        """The area rooted at *node* (node must be an area root)."""
        try:
            return self.areas[node.node_id]
        except KeyError:
            raise PartitionError(f"{node!r} is not an area root") from None

    def area_containing(self, node: XmlNode) -> Area:
        """The area that contains *node* as an interior or leaf node.

        For an area root (other than the tree root) this is the *upper*
        area; use :meth:`area_of_root` for the area it roots.
        """
        return self.areas[self.containing_area[node.node_id]]

    def is_area_root(self, node: XmlNode) -> bool:
        return node.node_id in self.area_root_ids

    def max_fan_out(self) -> int:
        """κ before any minimum is applied: the frame's maximal fan-out."""
        return max(
            (len(children) for children in self.frame_children.values()), default=0
        )

    def frame_preorder(self) -> Iterator[XmlNode]:
        """Area roots in frame document order (which equals their
        document order in ``T``)."""
        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self.frame_children[node.node_id]))

    def frame_levelorder(self) -> Iterator[XmlNode]:
        """Area roots level by level in the frame — the UID visit order
        for global enumeration."""
        frontier = [self.tree.root]
        while frontier:
            next_frontier: List[XmlNode] = []
            for node in frontier:
                yield node
                next_frontier.extend(self.frame_children[node.node_id])
            frontier = next_frontier

    def area_count(self) -> int:
        return len(self.areas)

    def node(self, node_id: int) -> XmlNode:
        return self._node_by_id[node_id]

    def validate(self) -> None:
        """Check the covering property: every tree node is in exactly
        one area as interior, plus area roots appearing as a leaf of
        the upper area; intersections are single frame nodes."""
        seen: Dict[int, int] = {}
        for area in self.areas.values():
            for node in area.nodes:
                seen[node.node_id] = seen.get(node.node_id, 0) + 1
        for node in self.tree.preorder():
            count = seen.get(node.node_id, 0)
            expected = 2 if (
                node.node_id in self.area_root_ids and node is not self.tree.root
            ) else 1
            if count != expected:
                raise PartitionError(
                    f"node {node.tag!r} appears in {count} areas, expected {expected}"
                )

    def __repr__(self) -> str:
        return f"<Frame areas={self.area_count()} kappa={self.max_fan_out()}>"
