"""Structural update with exact relabel accounting — paper §3.2.

The paper's robustness argument is about *scope*: how many identifiers
must change when a node is inserted or a subtree deleted. The updaters
here perform the operation and return a :class:`RelabelReport` listing
every identifier that changed, so experiment E5 counts ground truth
rather than estimates.

Semantics implemented:

* **Original UID** — insertion shifts the right siblings (and hence
  renumbers their entire subtrees); when the parent's fan-out exceeds
  the committed ``k``, the whole document is renumbered with a larger
  ``k`` (the paper's Fig. 1 discussion). Deletion is cascading and the
  remaining right siblings shift left.
* **2-level rUID** — the partition is kept fixed; only the UID-local
  area receiving the update is re-enumerated. An overflow of the
  area's local fan-out renumbers that area alone (and updates its row
  of K); global indices never change on insertion because the frame is
  untouched. Deleting a subtree that contains area roots removes those
  frame nodes, shifting the global indices of following sibling areas
  (the frame is itself UID-enumerated).

Committed fan-outs are sticky in both schemes: they grow on overflow
and never shrink, because shrinking would gratuitously renumber nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, List, Optional, Set, TypeVar

from repro.core.ruid import Ruid2Labeling
from repro.core.uid import UidLabeling
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree

LabelT = TypeVar("LabelT")


@dataclass
class RelabelChange(Generic[LabelT]):
    """One identifier rewrite caused by a structural update."""

    node_id: int
    old_label: LabelT
    new_label: LabelT


@dataclass
class RelabelReport(Generic[LabelT]):
    """Exact accounting of one structural update."""

    scheme: str
    operation: str  # "insert" | "delete"
    changed: List[RelabelChange[LabelT]] = field(default_factory=list)
    inserted_count: int = 0
    deleted_count: int = 0
    overflow: bool = False
    surviving_nodes: int = 0
    areas_touched: int = 0  # rUID only; 0 where not applicable
    kappa_changed: bool = False
    frame_renumbered: bool = False  # rUID only: global indices reshuffled

    @property
    def relabeled_count(self) -> int:
        """Number of pre-existing nodes whose identifier changed."""
        return len(self.changed)

    @property
    def relabeled_fraction(self) -> float:
        """Relabeled share of the surviving document (0..1)."""
        if not self.surviving_nodes:
            return 0.0
        return self.relabeled_count / self.surviving_nodes

    @property
    def full_renumber(self) -> bool:
        """True when (almost) the whole document was renumbered: every
        surviving non-root node changed identifier."""
        return self.relabeled_count >= max(0, self.surviving_nodes - 1)

    def summary(self) -> str:
        return (
            f"{self.scheme} {self.operation}: relabeled {self.relabeled_count}"
            f"/{self.surviving_nodes} nodes"
            f"{' (overflow)' if self.overflow else ''}"
            f"{' [FULL RENUMBER]' if self.full_renumber else ''}"
        )


def diff_snapshots(
    before: Dict[int, LabelT],
    after: Dict[int, LabelT],
) -> List[RelabelChange[LabelT]]:
    """Changes between two node_id→label snapshots, ignoring nodes that
    appear only on one side (insertions/deletions are counted apart)."""
    changes: List[RelabelChange[LabelT]] = []
    for node_id, old_label in before.items():
        new_label = after.get(node_id)
        if new_label is not None and new_label != old_label:
            changes.append(RelabelChange(node_id, old_label, new_label))
    return changes


class UidUpdater:
    """Insert/delete against an original-UID labeling."""

    def __init__(self, labeling: UidLabeling):
        self.labeling = labeling
        self.tree: XmlTree = labeling.tree

    def insert(
        self, parent: XmlNode, position: int, node: XmlNode
    ) -> RelabelReport[int]:
        before = self.labeling.snapshot()
        self.tree.insert_node(parent, position, node)
        overflow = self.labeling.reassign()
        after = self.labeling.snapshot()
        new_ids = {n.node_id for n in node.iter_subtree()}
        return RelabelReport(
            scheme=self.labeling.scheme_name,
            operation="insert",
            changed=diff_snapshots(before, after),
            inserted_count=len(new_ids),
            overflow=overflow,
            surviving_nodes=len(before),
        )

    def delete(self, node: XmlNode) -> RelabelReport[int]:
        before = self.labeling.snapshot()
        removed = self.tree.delete_subtree(node)
        self.labeling.reassign()
        after = self.labeling.snapshot()
        return RelabelReport(
            scheme=self.labeling.scheme_name,
            operation="delete",
            changed=diff_snapshots(before, after),
            deleted_count=len(removed),
            surviving_nodes=len(before) - len(removed),
        )


class Ruid2Updater:
    """Insert/delete against a 2-level rUID labeling.

    The partition is preserved across updates; new nodes simply join
    the area of their insertion point, and deleted area roots leave the
    frame. (A separate maintenance policy may re-partition when areas
    grow too large — see :meth:`maybe_split_area`.)
    """

    def __init__(self, labeling: Ruid2Labeling, split_threshold: Optional[int] = None):
        self.labeling = labeling
        self.tree: XmlTree = labeling.tree
        #: when set, an area growing beyond this node count gets split
        #: by promoting the update point's subtree to a new area.
        self.split_threshold = split_threshold

    def insert(
        self, parent: XmlNode, position: int, node: XmlNode
    ) -> RelabelReport:
        before = self.labeling.snapshot()
        sticky_before = {
            rid: self.labeling.local_fan_out_of(rid)
            for rid in self.labeling.area_root_ids
        }
        kappa_before = self.labeling.kappa
        self.tree.insert_node(parent, position, node)
        self.maybe_split_area(parent)
        frame_renumbered = self.labeling.reenumerate()
        after = self.labeling.snapshot()
        changed = diff_snapshots(before, after)
        overflow = any(
            self.labeling.local_fan_out_of(rid) > k
            for rid, k in sticky_before.items()
        )
        new_ids = {n.node_id for n in node.iter_subtree()}
        return RelabelReport(
            scheme=self.labeling.scheme_name,
            operation="insert",
            changed=changed,
            inserted_count=len(new_ids),
            overflow=overflow,
            surviving_nodes=len(before),
            areas_touched=_count_areas(changed, before, after),
            kappa_changed=self.labeling.kappa != kappa_before,
            frame_renumbered=frame_renumbered,
        )

    def delete(self, node: XmlNode) -> RelabelReport:
        before = self.labeling.snapshot()
        kappa_before = self.labeling.kappa
        removed = self.tree.delete_subtree(node)
        removed_ids = {n.node_id for n in removed}
        self.labeling.area_root_ids -= removed_ids
        frame_renumbered = self.labeling.reenumerate()
        after = self.labeling.snapshot()
        changed = diff_snapshots(before, after)
        return RelabelReport(
            scheme=self.labeling.scheme_name,
            operation="delete",
            changed=changed,
            deleted_count=len(removed),
            surviving_nodes=len(before) - len(removed),
            areas_touched=_count_areas(changed, before, after),
            kappa_changed=self.labeling.kappa != kappa_before,
            frame_renumbered=frame_renumbered,
        )

    def maybe_split_area(self, insertion_parent: XmlNode) -> bool:
        """Split the insertion area when it exceeds the threshold, by
        promoting the insertion parent to an area root. Returns True if
        a split happened. (Splitting relabels within the old area only
        — the frame gains a leaf, which does not move existing global
        indices because new frame children enumerate after existing
        ones only if inserted last; we conservatively only split at
        parents whose promotion appends a new frame leaf.)"""
        if self.split_threshold is None:
            return False
        if insertion_parent.node_id in self.labeling.area_root_ids:
            return False
        if insertion_parent is self.tree.root:
            return False
        area = self.labeling.frame.area_containing(insertion_parent)
        if area.size < self.split_threshold:
            return False
        # Promoting a node that has no area-root descendants within the
        # area appends a leaf to the frame, keeping global indices of
        # existing areas stable unless κ overflows.
        has_root_below = any(
            descendant.node_id in self.labeling.area_root_ids
            for descendant in insertion_parent.descendants()
        )
        if has_root_below:
            return False
        self.labeling.area_root_ids.add(insertion_parent.node_id)
        return True


def _count_areas(changed, before, after) -> int:
    """Distinct (new) global indices among the changed labels; 0 when
    labels are not rUID triples."""
    areas: Set[int] = set()
    for change in changed:
        new = change.new_label
        if hasattr(new, "global_index"):
            areas.add(new.global_index)
        else:
            return 0
    return len(areas)
