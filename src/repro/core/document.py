"""High-level document facade and fragment reconstruction.

:class:`LabeledDocument` bundles a tree, its rUID labeling, the axis
engine and the updater behind one object — the shape a downstream
application actually uses.

:func:`reconstruct_fragment` implements the application §3.3 sketches:
"fast reconstruction of a portion of an XML document from a set of
elements ... respecting the ancestor-descendant order existing in the
source data". Given any set of labels, the ancestor skeleton is
recovered purely by ``rparent`` arithmetic — the tree is consulted
only to copy node content.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.core.axes import AxisEngine
from repro.core.labels import Ruid2Label
from repro.core.partition import Partitioner
from repro.core.ruid import Ruid2Labeling
from repro.core.update import RelabelReport, Ruid2Updater
from repro.errors import QueryError
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree


def _as_store(source: Any):
    """Coerce *source* to a NodeStore: pass stores through, wrap any
    labeling (scheme adapter or bare core) in a MemoryNodeStore."""
    from repro.store.base import NodeStore
    from repro.store.memory import MemoryNodeStore

    if isinstance(source, NodeStore):
        return source
    return MemoryNodeStore(source)


def reconstruct_fragment(
    source: Any,
    labels: Iterable[Any],
    include_descendants: bool = False,
) -> XmlTree:
    """Rebuild a document fragment from a set of identifiers.

    The returned tree contains the selected nodes plus every ancestor
    needed to connect them, rooted at the document root, in source
    document order. Ancestors are discovered by parent-label chains
    (no tree navigation); node content (tag, attributes, text) is
    copied from the store's records.

    Parameters
    ----------
    source:
        A built labeling of the source document (any scheme, core or
        adapter shape) or a :class:`~repro.store.base.NodeStore` —
        fragments reconstruct identically from memory, paged, and
        snapshot stores.
    labels:
        The selected identifiers (e.g. a query result).
    include_descendants:
        Also copy the full subtrees below each selected node.

    Raises
    ------
    UnknownLabelError
        If any label names no real node.
    QueryError
        If *labels* is empty — there is no fragment to reconstruct.
    """
    store = _as_store(source)
    selected = list(labels)
    if not selected:
        raise QueryError("cannot reconstruct a fragment from an empty selection")
    for label in selected:
        store.rank_of(label)  # validate early

    closure: Dict[Any, None] = {}
    for label in selected:
        chain = [label]
        current = store.parent_of(label)
        while current is not None:
            chain.append(current)
            current = store.parent_of(current)
        for entry in chain:
            closure.setdefault(entry, None)

    if include_descendants:
        for label in selected:
            for descendant in store.descendant_labels(label):
                closure.setdefault(descendant, None)

    ordered = sorted(closure, key=store.rank_of)

    clones: Dict[Any, XmlNode] = {}
    root_clone: Optional[XmlNode] = None
    for label in ordered:
        node = store.node_for(label)
        clone = XmlNode(
            node.tag, node.kind, attributes=node.attributes, text=node.text
        )
        clones[label] = clone
        parent = store.parent_of(label)
        if parent is None:
            root_clone = clone
        else:
            clones[parent].append_child(clone)
    assert root_clone is not None  # the closure always contains the root
    return XmlTree(root_clone)


class LabeledDocument:
    """A document plus its rUID labeling, ready for use.

    Combines querying (via the scheme-aware XPath engine), label
    arithmetic, structural updates with relabel accounting, and
    fragment reconstruction.
    """

    def __init__(
        self,
        tree: XmlTree,
        partitioner: Optional[Partitioner] = None,
        split_threshold: Optional[int] = None,
    ):
        self.tree = tree
        self.labeling = Ruid2Labeling(tree, partitioner=partitioner)
        self.updater = Ruid2Updater(self.labeling, split_threshold=split_threshold)
        self._engine = None  # lazy; import cycle with repro.query otherwise
        self._axes: Optional[AxisEngine] = None

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    def label_of(self, node: XmlNode) -> Ruid2Label:
        return self.labeling.label_of(node)

    def node_of(self, label: Ruid2Label) -> XmlNode:
        return self.labeling.node_of(label)

    def parent_label(self, label: Ruid2Label) -> Ruid2Label:
        return self.labeling.rparent(label)

    @property
    def kappa(self) -> int:
        return self.labeling.kappa

    @property
    def ktable(self):
        return self.labeling.ktable

    @property
    def axes(self) -> AxisEngine:
        engine = self._axes
        if engine is None or engine.labeling.ktable is not self.labeling.ktable:
            engine = AxisEngine(self.labeling)
            self._axes = engine
        return engine

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def select(self, xpath: str, strategy: str = "ruid") -> List[XmlNode]:
        """Evaluate an XPath expression against the document."""
        from repro.core.scheme import Ruid2SchemeLabeling
        from repro.query.engine import XPathEngine

        if self._engine is None:
            # Bind an adapter onto this document's existing core
            # labeling so the engine and updates share one state.
            adapter = Ruid2SchemeLabeling.from_core(self.labeling, self.updater)
            self._engine = XPathEngine(self.tree, labeling=adapter)
        return self._engine.select(xpath, strategy)

    def select_labels(self, xpath: str) -> List[Ruid2Label]:
        """Query and return identifiers instead of nodes."""
        return [self.labeling.label_of(node) for node in self.select(xpath)]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, parent: XmlNode, position: int, node: XmlNode) -> RelabelReport:
        report = self.updater.insert(parent, position, node)
        self._invalidate()
        return report

    def delete(self, node: XmlNode) -> RelabelReport:
        report = self.updater.delete(node)
        self._invalidate()
        return report

    def _invalidate(self) -> None:
        self._axes = None
        if self._engine is not None:
            adapter = self._engine._labeling
            adapter._order = None
            adapter._axes = None
            self._engine._evaluators.clear()

    # ------------------------------------------------------------------
    # Fragments
    # ------------------------------------------------------------------
    def fragment(
        self,
        labels: Sequence[Ruid2Label],
        include_descendants: bool = False,
    ) -> XmlTree:
        """Reconstruct the fragment spanned by *labels* (§3.3)."""
        return reconstruct_fragment(
            self.labeling, labels, include_descendants=include_descendants
        )

    def fragment_for(self, xpath: str, include_descendants: bool = False) -> XmlTree:
        """Query, then reconstruct the spanning fragment."""
        return self.fragment(
            self.select_labels(xpath), include_descendants=include_descendants
        )

    def __repr__(self) -> str:
        return (
            f"<LabeledDocument nodes={self.tree.size()} "
            f"areas={self.labeling.area_count()} kappa={self.kappa}>"
        )
