"""Plain-text table rendering for benchmark harnesses.

Every bench prints the table it claims (DESIGN.md experiment index);
this module renders aligned ASCII and GitHub-markdown tables from
header + row data.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> str:
    """Render a GitHub-markdown table."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_format_cell(v) for v in row) + " |")
    return "\n".join(lines)


def rows_from_dicts(
    records: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None
) -> tuple:
    """(headers, rows) from a list of homogeneous dicts."""
    if not records:
        return tuple(columns or ()), ()
    headers = list(columns) if columns else list(records[0])
    rows = [tuple(record.get(column, "") for column in headers) for record in records]
    return tuple(headers), tuple(rows)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> None:
    print()
    print(format_table(headers, rows, title=title))
    print()
