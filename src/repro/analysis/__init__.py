"""Measurement utilities: identifier sizes, relabel scopes, reports."""

from repro.analysis.idsize import (
    BIT_SIZE_HEADERS,
    STANDARD_BUDGETS,
    BitSizeRow,
    capacity_grid,
    measure_bits,
    ruid_capacity_estimate,
    sweep_schemes,
    uid_capacity_height,
    uid_max_bits,
)
from repro.analysis.relabel import (
    RELABEL_HEADERS,
    RelabelSummary,
    run_workload_per_scheme,
    summarise_reports,
)
from repro.analysis.report import (
    format_markdown,
    format_table,
    print_table,
    rows_from_dicts,
)

__all__ = [
    "BIT_SIZE_HEADERS",
    "BitSizeRow",
    "RELABEL_HEADERS",
    "RelabelSummary",
    "STANDARD_BUDGETS",
    "capacity_grid",
    "format_markdown",
    "format_table",
    "measure_bits",
    "print_table",
    "rows_from_dicts",
    "ruid_capacity_estimate",
    "run_workload_per_scheme",
    "summarise_reports",
    "sweep_schemes",
    "uid_capacity_height",
    "uid_max_bits",
]
