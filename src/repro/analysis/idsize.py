"""Identifier-size analysis — experiments E4 and E9.

Quantifies the paper's §1/§3.1 claims:

* the original UID's identifier values grow like
  ``k ** depth`` (``k`` = maximal fan-out), overflowing any fixed
  integer width even for tiny documents with skewed shape;
* the 2-level rUID bounds both components by the *area-local*
  dimensions, and ``m``-level rUID enumerates ~``e ** m`` nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.core import uid as uid_math
from repro.core.scheme import Labeling, NumberingScheme
from repro.xmltree.tree import XmlTree

#: machine-integer budgets the paper's "maximal manageable integer
#: value" concern maps onto
STANDARD_BUDGETS = (32, 64, 128)


@dataclass
class BitSizeRow:
    """Identifier-size summary of one (tree, scheme) pair."""

    scheme: str
    nodes: int
    max_bits: int
    mean_bits: float
    total_bits: int
    aux_memory_bytes: int
    fits_32: bool
    fits_64: bool
    fits_128: bool

    def as_row(self) -> tuple:
        return (
            self.scheme,
            self.nodes,
            self.max_bits,
            round(self.mean_bits, 1),
            self.total_bits,
            self.aux_memory_bytes,
            self.fits_32,
            self.fits_64,
            self.fits_128,
        )


BIT_SIZE_HEADERS = (
    "scheme",
    "nodes",
    "max_bits",
    "mean_bits",
    "total_bits",
    "aux_bytes",
    "fits32",
    "fits64",
    "fits128",
)


def measure_bits(labeling: Labeling) -> BitSizeRow:
    """Bit statistics of one built labeling."""
    sizes = [labeling.label_bits(label) for label in labeling.labels()]
    max_bits = max(sizes)
    return BitSizeRow(
        scheme=labeling.scheme_name,
        nodes=len(sizes),
        max_bits=max_bits,
        mean_bits=sum(sizes) / len(sizes),
        total_bits=sum(sizes),
        aux_memory_bytes=labeling.memory_bytes(),
        fits_32=max_bits <= 32,
        fits_64=max_bits <= 64,
        fits_128=max_bits <= 128,
    )


def sweep_schemes(tree: XmlTree, schemes: Sequence[NumberingScheme]) -> List[BitSizeRow]:
    """Bit statistics of every scheme over one tree."""
    return [measure_bits(scheme.build(tree)) for scheme in schemes]


# ----------------------------------------------------------------------
# Enumeration capacity (E9): how large a document fits a bit budget?
# ----------------------------------------------------------------------


def uid_max_bits(fan_out: int, height: int) -> int:
    """Bits of the largest identifier UID assigns at (fan_out, height)."""
    return uid_math.max_identifier(max(1, fan_out), height).bit_length()


def uid_capacity_height(fan_out: int, bit_budget: int) -> int:
    """Deepest complete tree of *fan_out* whose UID ids fit the budget.

    This is the paper's 'e' bound per level: with ``m`` rUID levels the
    enumerable height multiplies by ~m (capacity ~ e^m in node count).
    """
    height = 0
    while uid_max_bits(fan_out, height + 1) <= bit_budget:
        height += 1
        if height > 100_000:  # fan_out 1 grows linearly; cap the walk
            break
    return height


def ruid_capacity_estimate(fan_out: int, bit_budget: int, levels: int) -> int:
    """Height enumerable by an m-level rUID under the same budget.

    Each level contributes a frame/area of the single-level height, so
    heights add (capacities multiply): ``m × capacity_height``.
    """
    return levels * uid_capacity_height(fan_out, bit_budget)


def capacity_grid(
    fan_outs: Iterable[int],
    bit_budget: int,
    levels: Sequence[int] = (1, 2, 3),
) -> List[Dict[str, object]]:
    """Rows of enumerable height per fan-out per level count (E9)."""
    rows: List[Dict[str, object]] = []
    for fan_out in fan_outs:
        row: Dict[str, object] = {"fan_out": fan_out, "budget_bits": bit_budget}
        for level_count in levels:
            row[f"height@m={level_count}"] = ruid_capacity_estimate(
                fan_out, bit_budget, level_count
            )
        rows.append(row)
    return rows
