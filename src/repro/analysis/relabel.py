"""Relabel-scope measurement — experiment E5 (paper §3.2).

Runs a reproducible update workload against each scheme over identical
tree copies and aggregates the exact per-operation relabel counts the
updaters report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.scheme import NumberingScheme
from repro.core.update import RelabelReport
from repro.generator.workload import UpdateOp, apply_workload
from repro.xmltree.tree import XmlTree


@dataclass
class RelabelSummary:
    """Aggregate relabel behaviour of one scheme over one workload."""

    scheme: str
    operations: int
    total_relabeled: int
    mean_relabeled: float
    max_relabeled: int
    overflow_events: int
    full_renumber_events: int
    mean_fraction: float

    def as_row(self) -> tuple:
        return (
            self.scheme,
            self.operations,
            self.total_relabeled,
            round(self.mean_relabeled, 2),
            self.max_relabeled,
            self.overflow_events,
            self.full_renumber_events,
            round(self.mean_fraction, 4),
        )


RELABEL_HEADERS = (
    "scheme",
    "ops",
    "total_relabeled",
    "mean",
    "max",
    "overflows",
    "full_renumbers",
    "mean_fraction",
)


def summarise_reports(scheme: str, reports: Sequence[RelabelReport]) -> RelabelSummary:
    counts = [report.relabeled_count for report in reports]
    fractions = [report.relabeled_fraction for report in reports]
    return RelabelSummary(
        scheme=scheme,
        operations=len(reports),
        total_relabeled=sum(counts),
        mean_relabeled=sum(counts) / len(counts) if counts else 0.0,
        max_relabeled=max(counts, default=0),
        overflow_events=sum(1 for r in reports if r.overflow),
        full_renumber_events=sum(1 for r in reports if r.full_renumber),
        mean_fraction=sum(fractions) / len(fractions) if fractions else 0.0,
    )


def run_workload_per_scheme(
    base_tree: XmlTree,
    schemes: Sequence[NumberingScheme],
    ops: Sequence[UpdateOp],
) -> List[RelabelSummary]:
    """Replay *ops* under every scheme, each on a fresh tree copy."""
    summaries: List[RelabelSummary] = []
    for scheme in schemes:
        tree = base_tree.copy()
        labeling = scheme.build(tree)
        reports = list(
            apply_workload(tree, ops, labeling.insert, labeling.delete)
        )
        summaries.append(summarise_reports(scheme.name, reports))
    return summaries
