"""E21 — the O(delta) write path (docs/CONCURRENCY.md).

Extends E16's readers-vs-writer story to the write path itself, in
three tables:

* **E21_writepath** — snapshot publish cost after a single-subtree
  edit, O(n) full rebuild vs O(delta) chained
  :class:`~repro.concurrent.delta.DeltaView`, across document sizes.
  The tentpole claim: on the largest corpus the delta publish is
  >= 5x faster than the full rebuild it replaces (in practice it is
  orders of magnitude — the delta cost tracks the edit, not the
  document).
* **E21_groupcommit** — concurrent disjoint-area writers under a WAL
  at group-commit batch sizes 1/2/4/8: logical commits vs physical
  syncs vs batch records. The gate: ``syncs < commits`` from batch
  size 4 up.
* **E21_area_writers** — the same writer fleet with and without
  area-scoped subtree locks: acquisitions, wait time, and per-area
  generation stamps from the ``concurrent.*`` metrics source.

Every table asserts agreement first: after the workload, the delta
chain's view is compared label-for-label against a fresh full
``StructuralView`` of the same generation.

Runs under pytest and as a standalone CI smoke::

    python benchmarks/bench_writepath.py --quick

``--quick`` runs small documents, writes ``E21_*_quick.txt`` tables
(the CI artifact), and asserts both gates.
"""

import argparse
import threading
import time

import pytest

from conftest import emit, emits_table
from repro.concurrent import ConcurrentDocument, StructuralView
from repro.generator import generate_xmark
from repro.storage.wal import Wal
from repro.xmltree.node import NodeKind, XmlNode

#: xmark scales for the publish-cost sweep (largest last)
SCALES = (0.1, 0.3, 0.8)
QUICK_SCALES = (0.05, 0.15)
BATCH_SIZES = (1, 2, 4, 8)
EDITS_PER_DOC = 24
WRITER_THREADS = 4
EDITS_PER_WRITER = 8


def _assert_chain_agrees(doc):
    """The delta chain answers label-for-label like a fresh rebuild."""
    reference = StructuralView.from_labeling(doc.labeling)
    with doc.pin() as snap:
        view = snap.view
        assert view.generation == reference.generation
        assert view.size() == reference.size()
        assert [view.label_at(r) for r in range(view.size())] == [
            reference.label_at(r) for r in range(reference.size())
        ], "delta chain diverged from full rebuild"


def _edit_targets(tree, count):
    """Cycle over top-level subtrees: each edit touches one subtree."""
    tops = [n for n in tree.root.children if n.kind == NodeKind.ELEMENT]
    return [tops[i % len(tops)] for i in range(count)]


def _run_edits(doc, edits):
    for parent in _edit_targets(doc.tree, edits):
        doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))


# ----------------------------------------------------------------------
# E21_writepath: full-rebuild vs delta publish cost
# ----------------------------------------------------------------------
def run_publish_sweep(scales, sink=emit, experiment="E21_writepath",
                      edits=EDITS_PER_DOC):
    rows = []
    speedups = {}
    for scale in scales:
        tree_full = generate_xmark(scale=scale, seed=2101)
        tree_delta = generate_xmark(scale=scale, seed=2101)
        nodes = sum(1 for _ in tree_full.preorder())

        # chain_limit=0: every publish is the old O(n) rebuild
        doc_full = ConcurrentDocument(tree_full, scheme="ruid2",
                                      delta_chain_limit=0)
        with doc_full.pin():
            pass
        _run_edits(doc_full, edits)
        full_hist, _unused = doc_full.build_histograms()
        # drop nothing: the first-pin build is the same O(n) work the
        # publish path repeats, so the mean is representative
        full_ns = full_hist.mean

        doc_delta = ConcurrentDocument(tree_delta, scheme="ruid2",
                                       delta_chain_limit=edits + 1)
        with doc_delta.pin():
            pass
        _run_edits(doc_delta, edits)
        _unused2, delta_hist = doc_delta.build_histograms()
        delta_ns = delta_hist.mean
        assert delta_hist.count == edits, "an edit fell off the delta path"
        _assert_chain_agrees(doc_delta)

        speedup = full_ns / delta_ns if delta_ns else float("inf")
        speedups[scale] = speedup
        stats = doc_delta.stats_snapshot()
        rows.append(
            (
                scale,
                nodes,
                edits,
                round(full_ns / 1e3, 1),
                round(delta_ns / 1e3, 1),
                round(speedup, 1),
                int(stats["delta_chain_depth"]),
                "yes",
            )
        )
    sink(
        experiment,
        ("scale", "nodes", "edits", "full_publish_us", "delta_publish_us",
         "speedup", "chain_depth", "identical"),
        rows,
        "E21: snapshot publish cost per single-subtree edit, "
        "O(n) rebuild vs O(delta) chained view",
    )
    return rows, speedups


@emits_table
def test_e21_publish_sweep():
    _rows, speedups = run_publish_sweep(SCALES[:2])
    largest = SCALES[1]
    assert speedups[largest] >= 5.0, (
        f"delta publish only {speedups[largest]:.1f}x faster on the "
        f"largest corpus (need >= 5x)"
    )


# ----------------------------------------------------------------------
# E21_groupcommit: concurrent writers, one sync per batch
# ----------------------------------------------------------------------
def _writer_fleet(doc, threads=WRITER_THREADS, edits=EDITS_PER_WRITER):
    """N threads each editing its own top-level subtree."""
    tops = [n for n in doc.tree.root.children if n.kind == NodeKind.ELEMENT]
    assert len(tops) >= threads, "corpus too small for the writer fleet"

    def write_loop(parent):
        for _ in range(edits):
            doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))

    fleet = [
        threading.Thread(target=write_loop, args=(tops[i],))
        for i in range(threads)
    ]
    start = time.perf_counter()
    for t in fleet:
        t.start()
    for t in fleet:
        t.join(60.0)
    return time.perf_counter() - start


def run_group_commit_sweep(scale=0.15, sink=emit, experiment="E21_groupcommit",
                           batch_sizes=BATCH_SIZES):
    rows = []
    sync_ratio = {}
    for batch in batch_sizes:
        tree = generate_xmark(scale=scale, seed=2102)
        wal = Wal(group_commit_size=batch)
        doc = ConcurrentDocument(tree, scheme="ruid2", wal=wal,
                                 delta_chain_limit=64)
        doc.enable_area_locks(shard_count=WRITER_THREADS * 2)
        with doc.pin():
            pass
        elapsed = _writer_fleet(doc)
        wal.flush_commits()
        _assert_chain_agrees(doc)
        stats = wal.wal_stats
        sync_ratio[batch] = stats.syncs / stats.logical_commits
        rows.append(
            (
                batch,
                WRITER_THREADS,
                stats.logical_commits,
                stats.syncs,
                stats.batch_records,
                stats.max_batch,
                round(stats.syncs / stats.logical_commits, 2),
                round(elapsed * 1e3, 1),
                "yes",
            )
        )
    sink(
        experiment,
        ("batch", "writers", "commits", "syncs", "batch_records",
         "max_batch", "syncs_per_commit", "fleet_ms", "identical"),
        rows,
        f"E21: WAL group commit under {WRITER_THREADS} disjoint-area "
        f"writers ({EDITS_PER_WRITER} edits each)",
    )
    return rows, sync_ratio


@emits_table
def test_e21_group_commit_sweep():
    _rows, sync_ratio = run_group_commit_sweep()
    assert sync_ratio[1] == 1.0, "classic mode must sync per commit"
    for batch in (4, 8):
        assert sync_ratio[batch] < 1.0, (
            f"batch={batch}: syncs not below commits "
            f"(ratio {sync_ratio[batch]:.2f})"
        )


# ----------------------------------------------------------------------
# E21_area_writers: area locks vs the single global gate
# ----------------------------------------------------------------------
def run_area_writer_table(scale=0.15, sink=emit, experiment="E21_area_writers"):
    rows = []
    for mode in ("global", "area"):
        tree = generate_xmark(scale=scale, seed=2103)
        doc = ConcurrentDocument(tree, scheme="ruid2", delta_chain_limit=64)
        if mode == "area":
            doc.enable_area_locks(shard_count=WRITER_THREADS * 2)
        with doc.pin():
            pass
        elapsed = _writer_fleet(doc)
        _assert_chain_agrees(doc)
        stats = doc.stats_snapshot()
        rows.append(
            (
                mode,
                WRITER_THREADS,
                WRITER_THREADS * EDITS_PER_WRITER,
                round(elapsed * 1e3, 1),
                round(stats["writer_wait_ns"] / 1e6, 2),
                int(stats.get("area_lock_acquisitions", 0)),
                round(stats.get("area_lock_wait_ns", 0) / 1e6, 2),
                int(stats.get("area_generations_stamped", 0)),
                int(stats["snapshot_builds_delta"]),
                "yes",
            )
        )
    sink(
        experiment,
        ("mode", "writers", "edits", "fleet_ms", "rw_wait_ms",
         "area_acqs", "area_wait_ms", "areas_stamped", "delta_builds",
         "identical"),
        rows,
        "E21: writer fleet, global write gate vs area-scoped locks",
    )
    return rows


@emits_table
def test_e21_area_writer_table():
    rows = run_area_writer_table()
    by_mode = {row[0]: row for row in rows}
    # area mode actually locked areas and stamped generations
    assert by_mode["area"][5] > 0
    assert by_mode["area"][7] > 0
    # both modes published every edit as a delta
    assert by_mode["global"][8] == WRITER_THREADS * EDITS_PER_WRITER
    assert by_mode["area"][8] == WRITER_THREADS * EDITS_PER_WRITER


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small documents; writes E21_*_quick.txt (the CI artifact)",
    )
    args = parser.parse_args()
    suffix = "_quick" if args.quick else ""
    scales = QUICK_SCALES if args.quick else SCALES
    scale = 0.08 if args.quick else 0.15

    _rows, speedups = run_publish_sweep(
        scales, experiment=f"E21_writepath{suffix}",
        edits=12 if args.quick else EDITS_PER_DOC,
    )
    _rows2, sync_ratio = run_group_commit_sweep(
        scale=scale, experiment=f"E21_groupcommit{suffix}"
    )
    run_area_writer_table(scale=scale, experiment=f"E21_area_writers{suffix}")

    largest = scales[-1]
    assert speedups[largest] >= 5.0, (
        f"delta publish only {speedups[largest]:.1f}x faster on the "
        f"largest corpus (need >= 5x)"
    )
    assert sync_ratio[1] == 1.0
    for batch in (4, 8):
        assert sync_ratio[batch] < 1.0, (
            f"batch={batch}: wal_syncs not below commits"
        )
    print("\nok")


if __name__ == "__main__":
    main()
