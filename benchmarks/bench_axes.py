"""E7 — XPath axis generation from identifiers (paper §3.4–3.5).

Times the rUID axis routines against navigational DOM walking for each
axis, and tabulates the candidate-vs-filtered ablation (the paper's
routines generate identifier candidates which may be virtual; the
engine filters them against the existence index).
"""

import time

import pytest

from conftest import emit, emits_table
from repro.core import AxisEngine, Ruid2Labeling, SizeCapPartitioner
from repro.core.axes import candidate_children, candidate_siblings
from repro.query.evaluator import NavigationalEvaluator

_AXES = (
    "parent",
    "ancestor",
    "child",
    "descendant",
    "preceding-sibling",
    "following-sibling",
    "preceding",
    "following",
)


@pytest.fixture(scope="module")
def labeling(xmark_bench_tree):
    return Ruid2Labeling(xmark_bench_tree, partitioner=SizeCapPartitioner(24))


@pytest.fixture(scope="module")
def engine(labeling):
    engine = AxisEngine(labeling)
    engine.labels_in_area(1)  # warm the per-area index
    return engine


@pytest.fixture(scope="module")
def sample_nodes(xmark_bench_tree):
    nodes = xmark_bench_tree.nodes()
    return nodes[:: max(1, len(nodes) // 60)]


@pytest.mark.parametrize("axis", _AXES)
def test_ruid_axis(benchmark, labeling, engine, sample_nodes, axis):
    labels = [labeling.label_of(node) for node in sample_nodes]

    def run():
        for label in labels:
            engine.axis(label, axis)

    benchmark(run)


@pytest.mark.parametrize("axis", _AXES)
def test_navigational_axis(benchmark, xmark_bench_tree, sample_nodes, axis):
    evaluator = NavigationalEvaluator(xmark_bench_tree)
    evaluator.doc_order()  # warm, like the engine's index

    def run():
        for node in sample_nodes:
            evaluator.axis_nodes(node, axis)

    benchmark(run)


@emits_table
def test_e7_table(labeling, engine, sample_nodes, xmark_bench_tree):
    """Side-by-side per-axis timing + result sizes."""
    evaluator = NavigationalEvaluator(xmark_bench_tree)
    evaluator.doc_order()
    labels = [labeling.label_of(node) for node in sample_nodes]
    rows = []
    for axis in _AXES:
        start = time.perf_counter()
        total_ruid = sum(len(engine.axis(label, axis)) for label in labels)
        ruid_time = time.perf_counter() - start
        start = time.perf_counter()
        total_nav = sum(
            len(evaluator.axis_nodes(node, axis)) for node in sample_nodes
        )
        nav_time = time.perf_counter() - start
        assert total_ruid == total_nav  # correctness cross-check
        rows.append(
            (
                axis,
                total_ruid,
                round(ruid_time * 1e3, 2),
                round(nav_time * 1e3, 2),
                round(nav_time / ruid_time, 2) if ruid_time else float("inf"),
            )
        )
    emit(
        "E7_axes",
        ("axis", "result_nodes", "ruid_ms", "nav_ms", "nav/ruid"),
        rows,
        "E7: axis generation, 60 context nodes on ~2k-node document",
    )


@emits_table
def test_e7_candidate_ablation(labeling, sample_nodes):
    """Candidates generated vs real nodes kept, per routine."""
    total_candidates = 0
    total_real = 0
    sibling_candidates = 0
    sibling_real = 0
    for node in sample_nodes:
        label = labeling.label_of(node)
        children = candidate_children(label, labeling.kappa, labeling.ktable)
        total_candidates += len(children)
        total_real += sum(1 for c in children if labeling.exists(c))
        for preceding in (True, False):
            sibs = candidate_siblings(label, labeling.kappa, labeling.ktable, preceding)
            sibling_candidates += len(sibs)
            sibling_real += sum(1 for s in sibs if labeling.exists(s))
    rows = [
        ("rchildren", total_candidates, total_real,
         round(total_real / total_candidates, 3) if total_candidates else 1.0),
        ("rsiblings", sibling_candidates, sibling_real,
         round(sibling_real / sibling_candidates, 3) if sibling_candidates else 1.0),
    ]
    emit(
        "E7_candidates",
        ("routine", "candidates", "real", "hit_rate"),
        rows,
        "E7 ablation: candidate identifiers vs real nodes (virtual-slot waste)",
    )
