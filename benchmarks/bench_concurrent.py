"""E16 — concurrent access layer (docs/CONCURRENCY.md).

Three tables:

* **E16_concurrent** — batch-query throughput vs thread count over one
  pinned snapshot. Pure-CPU evaluation is GIL-bound, so this table is
  the *honest* row: on a stock interpreter it shows threading costs a
  little rather than helps. Zero result divergence from the
  single-threaded run is asserted either way.
* **E16_fanout** — the same thread sweep where it genuinely pays:
  fanning tag lookups across federation sites whose (simulated)
  message latency dominates. Sleeps release the GIL, so the per-site
  waits overlap and throughput scales with threads until the site
  count caps it.
* **E16_readers_writer** — N snapshot readers against the single
  writer replaying an update workload: reader/writer wait time,
  snapshot pins, builds and reclaims from the ``concurrent.*`` metrics
  source.

Runs under pytest and as a standalone CI smoke::

    python benchmarks/bench_concurrent.py --quick

``--quick`` asserts the E16_fanout gate: batch throughput at 4 threads
>= 2x the single-threaded run, with node-for-node identical results.
"""

import argparse
import threading
import time

import pytest

from conftest import emit, emits_table
from repro.analysis import format_table
from repro.concurrent import ConcurrentDocument, ParallelQueryExecutor
from repro.core import Ruid2Labeling, SizeCapPartitioner
from repro.generator import (
    UpdateWorkloadConfig,
    XMARK_QUERIES,
    generate_update_workload,
    generate_xmark,
)
from repro.storage import FederatedDocument

THREAD_SWEEP = (1, 2, 4, 8)
FANOUT_TAGS = ("item", "person", "name", "price", "keyword", "bidder",
               "quantity", "description", "listitem", "incategory", "seller", "city")


def _print_only(experiment, headers, rows, title):
    print()
    print(format_table(headers, rows, title=title))


@pytest.fixture(scope="module")
def xmark_doc(xmark_bench_tree):
    return ConcurrentDocument(xmark_bench_tree, scheme="ruid2")


def _ids(results):
    return [[n.node_id for n in result] for result in results]


# ----------------------------------------------------------------------
# E16_concurrent: local batch sweep (GIL-bound, honest numbers)
# ----------------------------------------------------------------------
def run_local_sweep(doc, queries, sink=emit, repeats=3):
    executor = ParallelQueryExecutor(doc)
    with doc.pin() as snap:
        baseline = _ids(executor.select_batch(queries, threads=1, snapshot=snap))
        rows = []
        base_qps = None
        for threads in THREAD_SWEEP:
            executor.select_batch(queries, threads=threads, snapshot=snap)  # warm
            start = time.perf_counter()
            for _ in range(repeats):
                results = executor.select_batch(queries, threads=threads, snapshot=snap)
            elapsed = (time.perf_counter() - start) / repeats
            assert _ids(results) == baseline, "parallel run diverged"
            qps = len(queries) / elapsed
            if base_qps is None:
                base_qps = qps
            rows.append(
                (threads, len(queries), round(elapsed * 1e3, 2),
                 round(qps, 1), round(qps / base_qps, 2), "yes")
            )
    sink(
        "E16_concurrent",
        ("threads", "queries", "batch_ms", "queries_per_s", "scaling", "identical"),
        rows,
        f"E16: snapshot batch queries vs threads, pure CPU / GIL-bound "
        f"({repeats}-run mean)",
    )
    return rows


@emits_table
def test_e16_local_sweep(xmark_doc):
    rows = run_local_sweep(xmark_doc, XMARK_QUERIES)
    # no divergence at any thread count (asserted inside) and the
    # sweep covers the whole ladder
    assert [row[0] for row in rows] == list(THREAD_SWEEP)


# ----------------------------------------------------------------------
# E16_fanout: federated tag search, latency-dominated
# ----------------------------------------------------------------------
def run_fanout_sweep(tree, sink=emit, site_latency=0.004, repeats=3):
    labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(24))
    federated = FederatedDocument(
        labeling, site_count=4, site_latency=site_latency
    )
    doc = ConcurrentDocument(tree, scheme="ruid2")
    executor = ParallelQueryExecutor(doc)
    baseline = executor.federated_find_tags(federated, FANOUT_TAGS, threads=1)
    rows = []
    base_qps = None
    for threads in THREAD_SWEEP:
        start = time.perf_counter()
        for _ in range(repeats):
            fanned = executor.federated_find_tags(
                federated, FANOUT_TAGS, threads=threads
            )
        elapsed = (time.perf_counter() - start) / repeats
        assert fanned == baseline, "fan-out diverged from serial lookups"
        qps = len(FANOUT_TAGS) / elapsed
        if base_qps is None:
            base_qps = qps
        rows.append(
            (threads, len(FANOUT_TAGS), round(site_latency * 1e3, 1),
             round(elapsed * 1e3, 1), round(qps, 1),
             round(qps / base_qps, 2), "yes")
        )
    sink(
        "E16_fanout",
        ("threads", "tags", "site_ms", "batch_ms", "lookups_per_s",
         "scaling", "identical"),
        rows,
        f"E16: federated tag search fan-out, {site_latency * 1e3:.0f}ms "
        f"simulated site latency ({repeats}-run mean)",
    )
    return rows


@emits_table
def test_e16_fanout_sweep(xmark_bench_tree):
    rows = run_fanout_sweep(xmark_bench_tree)
    scaling = {row[0]: row[5] for row in rows}
    # the tentpole claim: latency-bound fan-out scales >= 2x from 1 to
    # 4 threads (sleep overlap; identical results asserted inside)
    assert scaling[4] >= 2.0, f"1->4 threads scaled only {scaling[4]}x"


# ----------------------------------------------------------------------
# E16_readers_writer: contention profile
# ----------------------------------------------------------------------
def run_readers_writer(tree_factory, sink=emit, reader_counts=(1, 2, 4, 8),
                       operations=20):
    rows = []
    for readers in reader_counts:
        tree = tree_factory()
        doc = ConcurrentDocument(tree, scheme="ruid2")
        ops = generate_update_workload(
            tree, UpdateWorkloadConfig(operations=operations), seed=7
        )
        stop = threading.Event()
        reads = [0] * readers

        def read_loop(slot):
            while not stop.is_set():
                with doc.pin() as snap:
                    snap.select_ids("//item")
                reads[slot] += 1

        threads = [
            threading.Thread(target=read_loop, args=(i,)) for i in range(readers)
        ]
        for t in threads:
            t.start()
        from repro.generator import apply_workload

        start = time.perf_counter()
        for _report in apply_workload(
            tree, ops, doc.insert, doc.delete
        ):
            pass
        writer_s = time.perf_counter() - start
        stop.set()
        for t in threads:
            t.join(30.0)
        stats = doc.stats_snapshot()
        rows.append(
            (
                readers,
                operations,
                round(writer_s * 1e3, 1),
                round(stats["writer_wait_ns"] / 1e6, 2),
                round(stats["reader_wait_ns"] / 1e6, 2),
                int(stats["snapshot_pins"]),
                int(stats["snapshot_builds"]),
                int(stats["snapshots_reclaimed"]),
                sum(reads),
            )
        )
    sink(
        "E16_readers_writer",
        ("readers", "ops", "writer_ms", "writer_wait_ms", "reader_wait_ms",
         "pins", "builds", "reclaimed", "reads"),
        rows,
        f"E16: {operations}-op update workload against snapshot readers",
    )
    return rows


@emits_table
def test_e16_readers_writer():
    rows = run_readers_writer(lambda: generate_xmark(scale=0.15, seed=2002))
    for readers, ops, *_rest, pins, builds, reclaimed, reads in [
        (r[0], r[1], *r[2:]) for r in rows
    ]:
        assert reads > 0 and pins >= reads
        # every superseded generation was reclaimed; only the live one remains
        assert reclaimed == builds - 1 or builds == 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small documents only (CI smoke; does not overwrite results)",
    )
    args = parser.parse_args()
    sink = _print_only if args.quick else emit
    tree = generate_xmark(scale=0.1 if args.quick else 0.3, seed=2002)
    doc = ConcurrentDocument(tree, scheme="ruid2")

    run_local_sweep(doc, XMARK_QUERIES, sink=sink)
    fanout_rows = run_fanout_sweep(tree, sink=sink)
    run_readers_writer(
        lambda: generate_xmark(scale=0.08 if args.quick else 0.15, seed=2002),
        sink=sink,
        operations=10 if args.quick else 20,
    )
    if args.quick:
        scaling = {row[0]: row[5] for row in fanout_rows}
        # CI gate: latency-bound batch fan-out >= 2x from 1 to 4 threads,
        # zero divergence (identical results asserted in the sweeps)
        assert scaling[4] >= 2.0, (
            f"fan-out scaled only {scaling[4]}x from 1 to 4 threads"
        )
    print("\nok")


if __name__ == "__main__":
    main()
