"""Substrate microbenchmarks: pager, B+-tree, heap file, tables.

Not tied to a single paper experiment; these pin the performance
characteristics of the storage engine all the I/O-sensitive
experiments (E6, E8, E12) stand on, and tabulate the buffer-pool
behaviour that turns index probes into disk reads.
"""

import pytest

from conftest import emit, emits_table
from repro.storage import (
    BPlusTree,
    Column,
    HeapFile,
    Pager,
    Schema,
    Table,
    encode_key,
    encode_value,
)

_N = 3000


@pytest.fixture(scope="module")
def loaded_tree():
    pager = Pager(page_size=1024, pool_pages=64)
    tree = BPlusTree(pager)
    for key in range(_N):
        tree.insert(encode_key(key), encode_value(key))
    return tree, pager


def test_btree_insert(benchmark):
    def run():
        tree = BPlusTree(Pager(page_size=1024, pool_pages=64))
        for key in range(1000):
            tree.insert(encode_key(key), encode_value(key))

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_btree_point_lookup(benchmark, loaded_tree):
    tree, _pager = loaded_tree
    keys = [encode_key(k) for k in range(0, _N, 7)]

    def run():
        for key in keys:
            tree.get(key)

    benchmark(run)


def test_btree_range_scan(benchmark, loaded_tree):
    tree, _pager = loaded_tree
    low, high = encode_key(500), encode_key(2500)
    benchmark(lambda: sum(1 for _ in tree.range(low, high)))


def test_heapfile_insert_scan(benchmark):
    def run():
        heap = HeapFile(Pager(page_size=1024, pool_pages=16))
        for index in range(1000):
            heap.insert(f"record-{index:05d}".encode())
        return sum(1 for _ in heap.scan())

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_table_insert_with_index(benchmark):
    def run():
        table = Table(
            "t",
            Schema([Column("id", "int"), Column("tag", "str")]),
            Pager(page_size=1024, pool_pages=32),
            primary_key=["id"],
        )
        table.create_index("by_tag", ["tag"])
        for index in range(500):
            table.insert((index, f"tag{index % 17}"))

    benchmark.pedantic(run, rounds=3, iterations=1)


@emits_table
def test_buffer_pool_table():
    """Hit ratio and physical I/O vs pool size for a fixed workload."""
    rows = []
    for pool_pages in (2, 8, 32, 128):
        pager = Pager(page_size=1024, pool_pages=pool_pages)
        tree = BPlusTree(pager)
        for key in range(_N):
            tree.insert(encode_key(key), encode_value(key))
        pager.stats.reset()
        for key in range(0, _N, 3):
            tree.get(encode_key(key))
        stats = pager.stats
        rows.append(
            (
                pool_pages,
                stats.buffer_hits,
                stats.buffer_misses,
                round(stats.hit_ratio, 3),
                stats.disk_reads,
            )
        )
    emit(
        "substrate_bufferpool",
        ("pool_pages", "hits", "misses", "hit_ratio", "disk_reads"),
        rows,
        "substrate: buffer-pool behaviour, 1000 point lookups on a 3k-key B+-tree",
    )
    # bigger pools must not hit less
    ratios = [row[3] for row in rows]
    assert ratios == sorted(ratios)
