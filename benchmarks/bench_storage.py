"""Substrate microbenchmarks: pager, B+-tree, heap file, tables.

Not tied to a single paper experiment; these pin the performance
characteristics of the storage engine all the I/O-sensitive
experiments (E6, E8, E12) stand on, and tabulate the buffer-pool
behaviour that turns index probes into disk reads.

E17 (``test_node_store_table`` / ``python benchmarks/bench_storage.py``)
compares the NodeStore deployments on the same query workload: the
all-in-RAM MemoryNodeStore, PagedNodeStore through buffer pools of 8,
64 and 512 pages (queries/s and the page hit-rate each pool size
sustains), and SqliteNodeStore re-attached fresh per pass to a
previously shredded database file (queries/s plus the SQL statements
issued). ``--quick`` runs the CI smoke: a small document, one pool
size, and node-for-node agreement assertions between the memory,
paged and sqlite answers.
"""

import argparse
import os
import tempfile
import time

import pytest

from conftest import emit, emits_table
from repro.core.scheme import Ruid2Scheme
from repro.generator import XMARK_QUERIES, generate_xmark
from repro.query.engine import XPathEngine
from repro.storage import (
    BPlusTree,
    Column,
    HeapFile,
    Pager,
    Schema,
    Table,
    encode_key,
    encode_value,
)
from repro.storage.database import XmlDatabase, label_key
from repro.store import MemoryNodeStore, PagedNodeStore, SqliteNodeStore

_N = 3000


@pytest.fixture(scope="module")
def loaded_tree():
    pager = Pager(page_size=1024, pool_pages=64)
    tree = BPlusTree(pager)
    for key in range(_N):
        tree.insert(encode_key(key), encode_value(key))
    return tree, pager


def test_btree_insert(benchmark):
    def run():
        tree = BPlusTree(Pager(page_size=1024, pool_pages=64))
        for key in range(1000):
            tree.insert(encode_key(key), encode_value(key))

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_btree_point_lookup(benchmark, loaded_tree):
    tree, _pager = loaded_tree
    keys = [encode_key(k) for k in range(0, _N, 7)]

    def run():
        for key in keys:
            tree.get(key)

    benchmark(run)


def test_btree_range_scan(benchmark, loaded_tree):
    tree, _pager = loaded_tree
    low, high = encode_key(500), encode_key(2500)
    benchmark(lambda: sum(1 for _ in tree.range(low, high)))


def test_heapfile_insert_scan(benchmark):
    def run():
        heap = HeapFile(Pager(page_size=1024, pool_pages=16))
        for index in range(1000):
            heap.insert(f"record-{index:05d}".encode())
        return sum(1 for _ in heap.scan())

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_table_insert_with_index(benchmark):
    def run():
        table = Table(
            "t",
            Schema([Column("id", "int"), Column("tag", "str")]),
            Pager(page_size=1024, pool_pages=32),
            primary_key=["id"],
        )
        table.create_index("by_tag", ["tag"])
        for index in range(500):
            table.insert((index, f"tag{index % 17}"))

    benchmark.pedantic(run, rounds=3, iterations=1)


@emits_table
def test_buffer_pool_table():
    """Hit ratio and physical I/O vs pool size for a fixed workload."""
    rows = []
    for pool_pages in (2, 8, 32, 128):
        pager = Pager(page_size=1024, pool_pages=pool_pages)
        tree = BPlusTree(pager)
        for key in range(_N):
            tree.insert(encode_key(key), encode_value(key))
        pager.stats.reset()
        for key in range(0, _N, 3):
            tree.get(encode_key(key))
        stats = pager.stats
        rows.append(
            (
                pool_pages,
                stats.buffer_hits,
                stats.buffer_misses,
                round(stats.hit_ratio, 3),
                stats.disk_reads,
            )
        )
    emit(
        "substrate_bufferpool",
        ("pool_pages", "hits", "misses", "hit_ratio", "disk_reads"),
        rows,
        "substrate: buffer-pool behaviour, 1000 point lookups on a 3k-key B+-tree",
    )
    # bigger pools must not hit less
    ratios = [row[3] for row in rows]
    assert ratios == sorted(ratios)


# ----------------------------------------------------------------------
# E17: memory vs paged vs sqlite NodeStore on one query workload
# ----------------------------------------------------------------------
E17_HEADERS = (
    "backend",
    "pool_pages",
    "queries_per_s",
    "hit_rate",
    "page_misses",
    "sql_queries",
)

#: element-result queries (attribute results have no stored label and
#: would measure transient-node synthesis instead of store access)
E17_QUERIES = tuple(q for q in XMARK_QUERIES if "@" not in q)


def _result_keys(store, labeling, nodes):
    """Flattened-label identities for cross-backend agreement checks."""
    keys = []
    for node in nodes:
        try:
            keys.append(label_key(store.label_for(node)))
        except Exception:
            try:  # memory stores hand back live nodes: go through the scheme
                keys.append(label_key(labeling.label_of(node)))
            except Exception:  # transient attribute node
                keys.append(("attr", node.tag, node.text))
    return keys


def _time_queries(engine, queries, repeats):
    """(queries/s) for *repeats* passes of the query set."""
    start = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            engine.select(query, "store")
    elapsed = time.perf_counter() - start
    return (repeats * len(queries)) / elapsed if elapsed else float("inf")


def run_node_store_table(tree, pool_sizes=(8, 64, 512), repeats=3, sink=emit):
    """Memory vs paged vs sqlite queries/s, with the per-backend I/O
    column that backend actually pays: page hit-rates for the buffer
    pool, SQL statements for the accel table.

    Each paged/sqlite pass attaches a *fresh* store to the shredded
    document, so Python-side caches start cold and every pass pays real
    buffer-pool (or SQL round-trip) traffic — the I/O columns reflect
    the backend, not a dict.
    """
    labeling = Ruid2Scheme().build(tree)
    rows = []

    memory = MemoryNodeStore(labeling)
    engine = XPathEngine(None, store=memory)
    engine.select(E17_QUERIES[0], "store")  # build candidates once
    rows.append(
        (
            "memory",
            "-",
            round(_time_queries(engine, E17_QUERIES, repeats), 1),
            "-",
            "-",
            "-",
        )
    )

    for pool_pages in pool_sizes:
        database = XmlDatabase(page_size=1024, pool_pages=pool_pages)
        document = database.store_document("doc", tree, labeling)
        PagedNodeStore(document)  # shred once; timed passes re-attach
        before = database.io_snapshot()
        start = time.perf_counter()
        ran = 0
        for _ in range(repeats):
            store = PagedNodeStore(document)
            paged_engine = XPathEngine(None, store=store)
            for query in E17_QUERIES:
                paged_engine.select(query, "store")
                ran += 1
        elapsed = time.perf_counter() - start
        delta = database.io_delta(before)
        hits, misses = delta["buffer_hits"], delta["buffer_misses"]
        rows.append(
            (
                "paged",
                pool_pages,
                round(ran / elapsed, 1) if elapsed else float("inf"),
                round(hits / (hits + misses), 3) if hits + misses else "-",
                misses,
                "-",
            )
        )

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "doc.db")
        SqliteNodeStore.shred("doc", labeling, path=path).close()
        start = time.perf_counter()
        ran = 0
        sql_queries = 0
        for _ in range(repeats):
            store = SqliteNodeStore.attach("doc", path=path)
            sqlite_engine = XPathEngine(None, store=store)
            for query in E17_QUERIES:
                sqlite_engine.select(query, "store")
                ran += 1
            sql_queries += store.stats.sql_queries
            store.close()
        elapsed = time.perf_counter() - start
        rows.append(
            (
                "sqlite",
                "-",
                round(ran / elapsed, 1) if elapsed else float("inf"),
                "-",
                "-",
                sql_queries,
            )
        )
    sink(
        "e17_node_store",
        E17_HEADERS,
        rows,
        f"E17: NodeStore backends, {len(E17_QUERIES)} queries x {repeats} "
        f"passes on {tree.size()} nodes",
    )
    return rows


@emits_table
def test_node_store_table():
    tree = generate_xmark(scale=0.2, seed=2002)
    rows = run_node_store_table(tree, repeats=2)
    # more pool must never mean a worse hit-rate
    rates = [row[3] for row in rows if row[0] == "paged"]
    assert rates == sorted(rates)


def _print_only(experiment, headers, rows, title):
    from repro.analysis import format_table

    print()
    print(format_table(headers, rows, title=title))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small document, one pool size, plus a "
        "node-for-node agreement check (does not overwrite results)",
    )
    args = parser.parse_args()
    if args.quick:
        tree = generate_xmark(scale=0.05, seed=2002)
        run_node_store_table(tree, pool_sizes=(8,), repeats=1, sink=_print_only)
        # agreement gate: paged answers == memory answers, node for node
        labeling = Ruid2Scheme().build(tree)
        memory_engine = XPathEngine(None, store=MemoryNodeStore(labeling))
        database = XmlDatabase(page_size=1024, pool_pages=8)
        store = PagedNodeStore(database.store_document("doc", tree, labeling))
        paged_engine = XPathEngine(None, store=store)
        sqlite_store = SqliteNodeStore.shred("doc", labeling)
        sqlite_engine = XPathEngine(None, store=sqlite_store)
        # sqlite labels are preorder ranks; translate back to scheme
        # labels so all three backends compare in the same key space
        rank_label = {
            rank: label for label, rank in labeling.rank_index().rank.items()
        }
        for query in E17_QUERIES:
            want = _result_keys(
                memory_engine.store, labeling, memory_engine.select(query, "store")
            )
            got = _result_keys(store, labeling, paged_engine.select(query, "store"))
            assert got == want, f"paged diverged from memory on {query}"
            got = []
            for node in sqlite_engine.select(query, "store"):
                try:
                    got.append(label_key(rank_label[sqlite_store.label_for(node)]))
                except Exception:
                    got.append(("attr", node.tag, node.text))
            assert got == want, f"sqlite diverged from memory on {query}"
        print(f"quick: paged == sqlite == memory on {len(E17_QUERIES)} queries")
        return
    tree = generate_xmark(scale=0.3, seed=2002)
    run_node_store_table(tree)


if __name__ == "__main__":
    main()
