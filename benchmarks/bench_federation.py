"""E12 extension — federated deployment message costs (§4).

Measures the network-message cost of structural operations when the
document's UID-local areas are scattered across sites and only (κ, K)
is replicated at the coordinator.
"""

import pytest

from conftest import emit, emits_table
from repro.core import Ruid2Labeling, SizeCapPartitioner
from repro.storage import FederatedDocument


@pytest.fixture(scope="module")
def federation(xmark_bench_tree):
    labeling = Ruid2Labeling(xmark_bench_tree, partitioner=SizeCapPartitioner(16))
    return FederatedDocument(labeling, site_count=4), labeling


@emits_table
def test_federation_message_table(federation):
    fed, labeling = federation
    tree = labeling.tree
    deep_nodes = sorted(tree.preorder(), key=lambda n: -n.depth)[:50]

    fed.reset_messages()
    for node in deep_nodes:
        fed.fetch(labeling.label_of(node))
    fetch_messages = fed.total_messages()

    fed.reset_messages()
    for node in deep_nodes:
        fed.fetch_parent(labeling.label_of(node))
    parent_messages = fed.total_messages()

    fed.reset_messages()
    root_label = labeling.label_of(tree.root)
    for node in deep_nodes:
        fed.ancestry_check(root_label, labeling.label_of(node))
    ancestry_messages = fed.total_messages()

    tag_rows = []
    for tag in ("person", "bidder", "city"):
        fed.reset_messages()
        _, routed = fed.find_tag(tag, routed=True)
        fed.reset_messages()
        _, broadcast = fed.find_tag(tag, routed=False)
        tag_rows.append((f"find //{tag}", routed, broadcast))

    rows = [
        ("fetch x50", fetch_messages, fetch_messages),
        ("fetch_parent x50", parent_messages, parent_messages),
        ("ancestry_check x50", ancestry_messages, ancestry_messages),
    ] + [(op, routed, broadcast) for op, routed, broadcast in tag_rows]
    emit(
        "E12_federation",
        ("operation", "messages (routed)", "messages (broadcast)"),
        rows,
        "E12 extension: network messages, 4 sites, coordinator holds only (kappa, K)",
    )
    assert parent_messages == 50  # arithmetic is free, fetch costs 1
    assert ancestry_messages == 0


@pytest.mark.parametrize("site_count", [2, 8])
def test_federation_build(benchmark, xmark_bench_tree, site_count):
    labeling = Ruid2Labeling(xmark_bench_tree, partitioner=SizeCapPartitioner(16))
    benchmark.pedantic(
        lambda: FederatedDocument(labeling, site_count=site_count),
        rounds=3,
        iterations=1,
    )
