"""E12 extension — federated deployment message costs (§4).

Measures the network-message cost of structural operations when the
document's UID-local areas are scattered across sites and only (κ, K)
is replicated at the coordinator.
"""

import pytest

from conftest import emit, emits_table
from repro.core import Ruid2Labeling, SizeCapPartitioner
from repro.errors import SiteUnavailableError
from repro.storage import FederatedDocument


@pytest.fixture(scope="module")
def federation(xmark_bench_tree):
    labeling = Ruid2Labeling(xmark_bench_tree, partitioner=SizeCapPartitioner(16))
    return FederatedDocument(labeling, site_count=4), labeling


@emits_table
def test_federation_message_table(federation):
    fed, labeling = federation
    tree = labeling.tree
    deep_nodes = sorted(tree.preorder(), key=lambda n: -n.depth)[:50]

    fed.reset_messages()
    for node in deep_nodes:
        fed.fetch(labeling.label_of(node))
    fetch_messages = fed.total_messages()

    fed.reset_messages()
    for node in deep_nodes:
        fed.fetch_parent(labeling.label_of(node))
    parent_messages = fed.total_messages()

    fed.reset_messages()
    root_label = labeling.label_of(tree.root)
    for node in deep_nodes:
        fed.ancestry_check(root_label, labeling.label_of(node))
    ancestry_messages = fed.total_messages()

    tag_rows = []
    for tag in ("person", "bidder", "city"):
        fed.reset_messages()
        _, routed = fed.find_tag(tag, routed=True)
        fed.reset_messages()
        _, broadcast = fed.find_tag(tag, routed=False)
        tag_rows.append((f"find //{tag}", routed, broadcast))

    rows = [
        ("fetch x50", fetch_messages, fetch_messages),
        ("fetch_parent x50", parent_messages, parent_messages),
        ("ancestry_check x50", ancestry_messages, ancestry_messages),
    ] + [(op, routed, broadcast) for op, routed, broadcast in tag_rows]
    emit(
        "E12_federation",
        ("operation", "messages (routed)", "messages (broadcast)"),
        rows,
        "E12 extension: network messages, 4 sites, coordinator holds only (kappa, K)",
    )
    assert parent_messages == 50  # arithmetic is free, fetch costs 1
    assert ancestry_messages == 0


@emits_table
def test_federation_availability_table(federation):
    """Degraded-mode cost: replication factor x sites down, 4 sites.

    Reads fall over along each area's replica chain; the table shows
    what an outage costs in failed messages/retries and when rf is too
    low to survive it at all.
    """
    _, labeling = federation
    # one probe per UID-local area, so every replica chain is exercised
    probes_by_area = {}
    for label in labeling.snapshot().values():
        probes_by_area.setdefault(label.global_index, label)
    probes = list(probes_by_area.values())

    rows = []
    for rf in (1, 2, 3):
        for down in (0, 1, 2):
            fed = FederatedDocument(labeling, site_count=4, replication_factor=rf)
            for index in range(down):
                fed.take_site_down(f"site{index}")
            try:
                for label in probes:
                    fed.fetch(label)
                fed.find_tag("city", routed=True)
                snapshot = fed.stats_snapshot()
                rows.append(
                    (
                        rf,
                        down,
                        int(snapshot["messages"]),
                        int(snapshot["messages_failed"]),
                        int(snapshot["retries"]),
                        int(snapshot["failovers"]),
                    )
                )
            except SiteUnavailableError:
                rows.append((rf, down, "-", "-", "-", "unavailable"))
    emit(
        "E13_availability",
        ("rf", "sites down", "messages", "failed", "retries", "failovers"),
        rows,
        "E13: availability under outages — one fetch per area + find //city, "
        "4 sites",
    )
    # rf=1 cannot survive an outage; rf>=2 survives one, rf>=3 two
    outcomes = {(rf, down): row[-1] for rf, down, *row in rows}
    assert outcomes[(1, 1)] == "unavailable"
    assert isinstance(outcomes[(2, 1)], int)
    assert isinstance(outcomes[(3, 2)], int)


@pytest.mark.parametrize("site_count", [2, 8])
def test_federation_build(benchmark, xmark_bench_tree, site_count):
    labeling = Ruid2Labeling(xmark_bench_tree, partitioner=SizeCapPartitioner(16))
    benchmark.pedantic(
        lambda: FederatedDocument(labeling, site_count=site_count),
        rounds=3,
        iterations=1,
    )
