"""E4 — identifier-size growth (paper §1, §3.1).

Regenerates the identifier-explosion argument: on shape-adversarial
documents the original UID's identifiers overflow 64-bit integers even
when the document is tiny, because values grow like ``k ** depth``;
the 2-level rUID bounds both components by area-local dimensions, and
additional levels shrink the top frame further. Dewey/region/pre-post
are included for context.

Also runs the multilevel ablation (m = 1, 2, 3) and the area-size
ablation DESIGN.md calls out.
"""

import pytest

from conftest import emit, emits_table
from repro.analysis import BIT_SIZE_HEADERS, measure_bits, sweep_schemes
from repro.baselines import all_schemes
from repro.core import MultiRuidScheme, Ruid2Scheme, SizeCapPartitioner, UidScheme
from repro.generator import (
    generate_dblp,
    generate_treebank,
    generate_xmark,
    shape_catalog,
    skewed_tree,
)


@pytest.fixture(scope="module")
def corpus(xmark_bench_tree, dblp_bench_tree):
    documents = {"xmark": xmark_bench_tree, "dblp": dblp_bench_tree}
    documents.update(shape_catalog(400))
    documents["skewed-hard"] = skewed_tree(depth=50, heavy_fan_out=120)
    documents["treebank"] = generate_treebank(sentences=30, max_depth=16, seed=2002)
    return documents


@emits_table
def test_e4_bits_table(corpus):
    rows = []
    for doc_name, tree in sorted(corpus.items()):
        for measurement in sweep_schemes(tree, all_schemes()):
            rows.append((doc_name,) + measurement.as_row())
    emit(
        "E4_idsize",
        ("doc",) + BIT_SIZE_HEADERS,
        rows,
        "E4: identifier bit sizes per document shape per scheme",
    )
    # the paper's headline: UID overflows 64 bits on the hard shape,
    # rUID does not
    hard = {
        row[1]: row for row in rows if row[0] == "skewed-hard"
    }
    assert hard["uid"][3] > 64  # max_bits
    assert hard["ruid2"][3] <= 64
    assert hard["ruid-multi"][3] <= 64


@emits_table
def test_e4_multilevel_ablation(corpus):
    """Bits vs level count m ∈ {1 (UID), 2, 3} on each document."""
    rows = []
    for doc_name, tree in sorted(corpus.items()):
        variants = [
            ("m=1 (uid)", UidScheme()),
            ("m=2", MultiRuidScheme(levels=2, partitioners=SizeCapPartitioner(16))),
            ("m=3", MultiRuidScheme(levels=3, partitioners=SizeCapPartitioner(16))),
        ]
        for label, scheme in variants:
            measurement = measure_bits(scheme.build(tree))
            rows.append((doc_name, label, measurement.max_bits,
                         round(measurement.mean_bits, 1)))
    emit(
        "E4_levels",
        ("doc", "levels", "max_bits", "mean_bits"),
        rows,
        "E4 ablation: rUID level count vs identifier width",
    )


@emits_table
def test_e4_area_size_ablation(xmark_bench_tree):
    """Bits and auxiliary-memory trade-off vs area-size budget."""
    rows = []
    for cap in (4, 8, 16, 32, 64, 128):
        labeling = Ruid2Scheme(max_area_size=cap).build(xmark_bench_tree)
        measurement = measure_bits(labeling)
        rows.append(
            (
                cap,
                labeling.core.area_count(),
                labeling.core.kappa,
                measurement.max_bits,
                round(measurement.mean_bits, 1),
                measurement.aux_memory_bytes,
            )
        )
    emit(
        "E4_area_size",
        ("area_cap", "areas", "kappa", "max_bits", "mean_bits", "K_bytes"),
        rows,
        "E4 ablation: area-size budget vs identifier width vs table-K size",
    )


@pytest.mark.parametrize("scheme_name", ["uid", "ruid2", "dewey"])
def test_bits_measurement_speed(benchmark, xmark_bench_tree, scheme_name):
    from repro.baselines import get_scheme

    labeling = get_scheme(scheme_name).build(xmark_bench_tree)
    benchmark(lambda: labeling.max_label_bits())
