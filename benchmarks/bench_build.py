"""E10 + E11 — labeling construction and partition ablation.

E10 measures the Fig. 3 build algorithm's throughput against the other
schemes' assignments. E11 verifies and quantifies the §2.3 fan-out
adjustment: the LCA-closure promotion bounds the frame fan-out κ by
the tree fan-out, at the cost of extra (usually few) areas.
"""

import random
import time

import pytest

from conftest import emit, emits_table
from repro.baselines import get_scheme, scheme_names
from repro.core import Frame, lca_closure, partition_summary
from repro.core.partition import DepthStridePartitioner, SizeCapPartitioner
from repro.generator import random_document


@pytest.mark.parametrize("scheme_name", scheme_names())
def test_build_throughput(benchmark, xmark_bench_tree, scheme_name):
    scheme = get_scheme(scheme_name)
    benchmark.pedantic(
        lambda: scheme.build(xmark_bench_tree), rounds=3, iterations=1
    )


@emits_table
def test_e10_build_table(xmark_bench_tree):
    rows = []
    for scheme_name in scheme_names():
        scheme = get_scheme(scheme_name)
        start = time.perf_counter()
        labeling = scheme.build(xmark_bench_tree)
        elapsed = time.perf_counter() - start
        nodes = xmark_bench_tree.size()
        rows.append(
            (
                scheme_name,
                nodes,
                round(elapsed * 1e3, 1),
                int(nodes / elapsed),
                labeling.memory_bytes(),
            )
        )
    emit(
        "E10_build",
        ("scheme", "nodes", "build_ms", "nodes_per_s", "aux_bytes"),
        rows,
        "E10: labeling construction throughput (~2k-node document)",
    )


@emits_table
def test_e10_partition_ablation(xmark_bench_tree):
    """Partition strategy × budget → areas, κ, K size, area stats."""
    rows = []
    strategies = [
        ("size-cap", SizeCapPartitioner, (8, 16, 32, 64)),
        ("depth-stride", DepthStridePartitioner, (2, 3, 4)),
    ]
    for label, factory, budgets in strategies:
        for budget in budgets:
            roots = factory(budget).partition(xmark_bench_tree)
            summary = partition_summary(xmark_bench_tree, roots)
            rows.append(
                (
                    label,
                    budget,
                    summary["areas"],
                    summary["kappa"],
                    round(summary["mean_area_size"], 1),
                    summary["max_area_size"],
                )
            )
    emit(
        "E10_partition",
        ("strategy", "budget", "areas", "kappa", "mean_area", "max_area"),
        rows,
        "E10 ablation: partition strategy vs frame/area shape",
    )


@emits_table
def test_e11_fanout_adjustment():
    """κ before/after LCA closure on adversarial random root sets."""
    rows = []
    for seed in range(6):
        tree = random_document(600, seed=200 + seed, fanout_kind="uniform", low=1, high=5)
        rng = random.Random(seed)
        nodes = tree.nodes()
        raw = {tree.root.node_id} | {
            nodes[rng.randrange(len(nodes))].node_id for _ in range(40)
        }
        kappa_before = Frame(tree, raw).max_fan_out()
        closed = lca_closure(tree, raw)
        kappa_after = Frame(tree, closed).max_fan_out()
        rows.append(
            (
                seed,
                tree.max_fan_out(),
                len(raw),
                kappa_before,
                len(closed),
                kappa_after,
            )
        )
        assert kappa_after <= max(1, tree.max_fan_out())
    emit(
        "E11_adjustment",
        ("seed", "tree_fanout", "roots_before", "kappa_before", "roots_after", "kappa_after"),
        rows,
        "E11: section 2.3 fan-out adjustment via LCA closure",
    )


@pytest.mark.parametrize("cap", [8, 64])
def test_partition_speed(benchmark, xmark_bench_tree, cap):
    partitioner = SizeCapPartitioner(cap)
    benchmark(lambda: partitioner.partition(xmark_bench_tree))
