"""E9 — enumeration capacity (paper §3.1, observation 1).

Regenerates the scalability claim: with ``m`` rUID levels one can
enumerate ~``e^m`` nodes (``e`` = single-level UID capacity), i.e. the
enumerable *height* at a fixed integer budget multiplies by ``m``.
Tabulated analytically over a fan-out grid and verified empirically on
recursion-heavy documents.
"""

import pytest

from conftest import emit, emits_table
from repro.analysis import capacity_grid, measure_bits, uid_capacity_height
from repro.core import MultiRuidScheme, Ruid2Scheme, SizeCapPartitioner, UidScheme
from repro.generator import path_tree, skewed_tree


@emits_table
def test_e9_capacity_grid():
    rows = []
    for budget in (32, 64):
        for row in capacity_grid((2, 4, 8, 16, 64), budget, levels=(1, 2, 3)):
            rows.append(
                (
                    row["budget_bits"],
                    row["fan_out"],
                    row["height@m=1"],
                    row["height@m=2"],
                    row["height@m=3"],
                )
            )
    emit(
        "E9_capacity",
        ("budget_bits", "fan_out", "height_m1", "height_m2", "height_m3"),
        rows,
        "E9: enumerable tree height per integer budget per rUID level count",
    )
    # sanity: heights multiply with levels
    for row in rows:
        assert row[3] == 2 * row[2]
        assert row[4] == 3 * row[2]


@emits_table
def test_e9_empirical_recursion():
    """Observation 1: deep recursive documents that UID cannot keep in
    64 bits fit comfortably under 2-level rUID."""
    rows = []
    for depth in (20, 40, 80):
        tree = skewed_tree(depth=depth, heavy_fan_out=50)
        uid_bits = measure_bits(UidScheme().build(tree)).max_bits
        ruid_bits = measure_bits(
            Ruid2Scheme(max_area_size=8).build(tree)
        ).max_bits
        multi_bits = measure_bits(
            MultiRuidScheme(levels=3, partitioners=SizeCapPartitioner(8)).build(tree)
        ).max_bits
        rows.append((depth, tree.size(), uid_bits, ruid_bits, multi_bits))
    emit(
        "E9_recursion",
        ("depth", "nodes", "uid_bits", "ruid2_bits", "ruid3_bits"),
        rows,
        "E9: skewed recursive docs (heavy fan-out 50) — max identifier bits",
    )
    # UID explodes super-linearly with depth; rUID stays flat-ish
    assert rows[-1][2] > 64
    assert rows[-1][3] <= 64


@pytest.mark.parametrize("depth", [100, 400])
def test_deep_path_labeling_speed(benchmark, depth):
    """Build cost on pure recursion (fan-out 1 chains)."""
    tree = path_tree(depth)
    benchmark(lambda: Ruid2Scheme(max_area_size=16).build(tree.copy()))


def test_capacity_height_helper_speed(benchmark):
    benchmark(lambda: [uid_capacity_height(k, 64) for k in (2, 8, 64, 1024)])
