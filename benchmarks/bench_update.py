"""E1 + E5 — structural-update robustness (paper Fig. 1, §3.2).

E1 replays the paper's Fig. 1 insertion and pins the exact relabel set.
E5 generalises it: a seeded insert/delete workload is replayed under
every updatable scheme over identical copies of the document, and the
exact relabel scopes are tabulated. The expected shape (§3.2): rUID's
scope is bounded by the area size — "reduced by a magnitude of two" —
while UID relabels right-sibling subtrees and renumbers the whole
document on fan-out overflow, and pre/post-style schemes shift about
half the document per update.
"""

import pytest

from conftest import emit, emits_table
from repro.analysis import RELABEL_HEADERS, run_workload_per_scheme
from repro.baselines import get_scheme
from repro.core import UidLabeling, UidUpdater
from repro.generator import (
    UpdateWorkloadConfig,
    fig1_tree,
    generate_update_workload,
)
from repro.xmltree import element

_UPDATE_SCHEMES = [
    ("uid", {}),
    ("ruid2", {"max_area_size": 16}),
    ("ruid2", {"max_area_size": 64}),
    ("dewey", {}),
    ("ordpath", {}),
    ("prepost", {}),
    ("region", {"gap": 8}),
    ("posdepth", {}),
]


@emits_table
def test_e1_fig1_replay():
    """The paper's exact worked example."""
    tree = fig1_tree()
    labeling = UidLabeling(tree, fan_out=3)
    report = UidUpdater(labeling).insert(tree.root, 1, element("new"))
    moves = {c.old_label: c.new_label for c in report.changed}
    assert moves == {3: 4, 8: 11, 9: 12, 23: 32, 26: 35, 27: 36}
    emit(
        "E1_fig1",
        ("old_uid", "new_uid"),
        sorted(moves.items()),
        "E1: Fig. 1 insertion between nodes 2 and 3 (k=3) — relabeled identifiers",
    )


@pytest.fixture(scope="module")
def workload(xmark_bench_tree):
    return generate_update_workload(
        xmark_bench_tree,
        UpdateWorkloadConfig(operations=120, insert_fraction=0.8),
        seed=5,
    )


@emits_table
def test_e5_relabel_scope_table(xmark_bench_tree, workload):
    schemes = []
    labels = []
    for name, options in _UPDATE_SCHEMES:
        scheme = get_scheme(name, **options)
        # distinguish the two rUID area budgets in the table
        if name == "ruid2":
            scheme.name = f"ruid2/a{options['max_area_size']}"
        schemes.append(scheme)
        labels.append(scheme.name)
    summaries = run_workload_per_scheme(xmark_bench_tree, schemes, workload)
    emit(
        "E5_relabel",
        RELABEL_HEADERS,
        [s.as_row() for s in summaries],
        "E5: relabel scope, 120 ops (80% inserts) on ~2k-node XMark-like doc",
    )
    by_name = {s.scheme: s for s in summaries}
    # the paper's ordering must hold
    assert by_name["ruid2/a16"].mean_relabeled <= by_name["uid"].mean_relabeled
    assert by_name["ruid2/a16"].mean_relabeled < by_name["prepost"].mean_relabeled
    # smaller areas → smaller scope
    assert by_name["ruid2/a16"].mean_relabeled <= by_name["ruid2/a64"].mean_relabeled * 1.5


@pytest.mark.parametrize(
    "scheme_name,options",
    [("uid", {}), ("ruid2", {"max_area_size": 16}), ("dewey", {}), ("prepost", {})],
)
def test_update_throughput(benchmark, xmark_bench_tree, workload, scheme_name, options):
    """Wall-clock cost of replaying the workload under each scheme."""
    from repro.generator import apply_workload

    def run():
        tree = xmark_bench_tree.copy()
        labeling = get_scheme(scheme_name, **options).build(tree)
        for _ in apply_workload(tree, workload, labeling.insert, labeling.delete):
            pass

    benchmark.pedantic(run, rounds=3, iterations=1)


@emits_table
def test_e5_delete_mode_ablation(xmark_bench_tree):
    """Frame-stable deletion (pinned globals, the §3.2 semantics) vs
    naive re-enumeration (frame ordinals re-packed): how many labels a
    subtree deletion touches under each policy."""
    from repro.core import Ruid2Labeling, SizeCapPartitioner, diff_snapshots

    rows = []
    for mode, keep in (("frame-stable", True), ("repack-frame", False)):
        tree = xmark_bench_tree.copy()
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(16))
        total = 0
        deletions = 0
        for _ in range(5):
            victim = max(
                (c for c in tree.root.children if c.fan_out),
                key=lambda c: c.subtree_size(),
                default=None,
            )
            if victim is None or victim.subtree_size() < 5:
                break
            before = labeling.snapshot()
            removed = tree.delete_subtree(victim)
            labeling.area_root_ids -= {n.node_id for n in removed}
            labeling.reenumerate(keep_globals=keep)
            total += len(diff_snapshots(before, labeling.snapshot()))
            deletions += 1
        rows.append((mode, deletions, total))
    emit(
        "E5_delete_modes",
        ("mode", "deletions", "labels_relabeled"),
        rows,
        "E5 ablation: deletion policy vs relabel scope (5 large subtree deletes)",
    )
    by_mode = {row[0]: row[2] for row in rows}
    assert by_mode["frame-stable"] <= by_mode["repack-frame"]


@emits_table
def test_e5_change_management(xmark_bench_tree):
    """Replay a realistic document-evolution edit script (computed by
    the structural differ, the related-work [8] use case) through each
    scheme and total the relabel cost."""
    import random

    from repro.analysis import summarise_reports
    from repro.xmltree import NodeKind, XmlNode, apply_through_labeling, diff_trees

    old_master = xmark_bench_tree.copy()
    evolved = xmark_bench_tree.copy()
    rng = random.Random(99)
    for step in range(40):
        nodes = evolved.nodes()
        node = nodes[rng.randrange(len(nodes))]
        if rng.random() < 0.7 or node is evolved.root:
            evolved.insert_node(
                node,
                rng.randint(0, node.fan_out),
                XmlNode(f"rev{step}", NodeKind.ELEMENT),
            )
        elif node.subtree_size() < 12:
            evolved.delete_subtree(node)
    ops = diff_trees(old_master, evolved)

    rows = []
    for name, options in (
        ("uid", {}),
        ("ruid2", {"max_area_size": 16}),
        ("dewey", {}),
        ("ordpath", {}),
        ("prepost", {}),
    ):
        working = old_master.copy()
        labeling = get_scheme(name, **options).build(working)
        reports = apply_through_labeling(labeling, ops)
        summary = summarise_reports(name, reports)
        rows.append(
            (
                name,
                len(ops),
                summary.total_relabeled,
                round(summary.mean_relabeled, 2),
                summary.max_relabeled,
            )
        )
    emit(
        "E5_change_mgmt",
        ("scheme", "script_ops", "total_relabeled", "mean", "max"),
        rows,
        "E5 extension: diff-script replay (40 revisions of the auction doc)",
    )
    by_name = {row[0]: row for row in rows}
    assert by_name["ruid2"][2] <= by_name["prepost"][2]


@emits_table
def test_e5_depth_sweep(xmark_bench_tree):
    """Ablation: relabel scope vs insertion depth ("the nearer to the
    root ... the larger the scope", §1)."""
    rows = []
    for bias in ("shallow", "uniform", "deep"):
        ops = generate_update_workload(
            xmark_bench_tree,
            UpdateWorkloadConfig(operations=60, insert_fraction=1.0, depth_bias=bias),
            seed=6,
        )
        summaries = run_workload_per_scheme(
            xmark_bench_tree,
            [get_scheme("uid"), get_scheme("ruid2", max_area_size=16)],
            ops,
        )
        for summary in summaries:
            rows.append((bias, summary.scheme, round(summary.mean_relabeled, 2),
                         summary.max_relabeled))
    emit(
        "E5_depth_sweep",
        ("depth_bias", "scheme", "mean_relabeled", "max_relabeled"),
        rows,
        "E5 ablation: insertion depth vs relabel scope (60 inserts)",
    )
