"""E18: availability under read-path chaos, and what resilience costs.

The serving path's robustness claim is behavioural, not just
functional: under injected faults the resilient store must convert
infrastructure failure into **correct answers** (retry + fallback) or
**typed errors** (fail fast), never wrong answers, while keeping tail
latency bounded. This bench measures that claim as a table — per
fault rate: availability (fraction of queries answered correctly),
typed-failure fraction, retry/fallback volume, and p99 latency — for
the guarded store with and without its memory fallback.

``--quick`` is the CI SLO gate:

* zero wrong answers in every mode (the chaos invariant);
* 100% availability with the fallback armed at a 30% transient rate;
* every failure without the fallback is a typed ``ReproError``;
* an expired deadline cancels with ``QueryTimeout`` (no runaway work);
* a saturated admission controller sheds with typed ``Overloaded``.
"""

import argparse
import time

from conftest import emit, emits_table
from repro.baselines.registry import get_scheme
from repro.errors import Overloaded, QueryTimeout, ReproError
from repro.generator import XMARK_QUERIES, generate_xmark
from repro.query.parser import parse_xpath
from repro.resilience import (
    AdmissionController,
    BackoffPolicy,
    CircuitBreaker,
    Deadline,
    ResilientNodeStore,
)
from repro.storage.database import XmlDatabase, label_key
from repro.storage.faults import FaultInjector
from repro.store import MemoryNodeStore, PagedNodeStore, StoreEvaluator

NO_SLEEP = lambda seconds: None  # noqa: E731

#: (fault schedule label, transient rate, with fallback?)
SCENARIOS = (
    ("healthy", 0.0, True),
    ("transient 10%", 0.1, True),
    ("transient 30%", 0.3, True),
    ("transient 30%, no fallback", 0.3, False),
)


def _build(tree, labeling, seed, with_fallback):
    faults = FaultInjector(seed=seed)
    database = XmlDatabase(page_size=1024, pool_pages=8, faults=faults)
    document = database.store_document("doc", tree, labeling)
    primary = PagedNodeStore(document)
    resilient = ResilientNodeStore(
        primary,
        fallback=MemoryNodeStore(labeling) if with_fallback else None,
        breaker=CircuitBreaker(
            "paged-reads",
            failure_threshold=5,
            backoff=BackoffPolicy(base=0.01, cap=0.1, jitter="none"),
        ),
        sleep=NO_SLEEP,
    )
    database.pager.flush()
    database.pager._pool.clear()
    return resilient, faults, database


def _result_labels(store, nodes):
    return [store.label_for(node) for node in nodes]


def _baselines(tree, labeling, queries):
    memory = MemoryNodeStore(labeling)
    evaluator = StoreEvaluator(memory)
    return {
        query: [
            label_key(lb)
            for lb in _result_labels(memory, evaluator.select(parse_xpath(query)))
        ]
        for query in queries
    }


def run_availability_table(tree, queries, repeats=3, sink=emit):
    labeling = get_scheme("ruid2").build(tree)
    want = _baselines(tree, labeling, queries)
    rows = []
    for name, rate, with_fallback in SCENARIOS:
        correct = typed = wrong = 0
        latencies = []
        resilient, faults, database = _build(tree, labeling, 2002, with_fallback)
        if rate:
            faults.arm_read_faults(transient_rate=rate, sleep=NO_SLEEP)
        evaluator = StoreEvaluator(resilient)
        for _ in range(repeats):
            for query in queries:
                database.pager.flush()
                database.pager._pool.clear()
                resilient.breaker.reset()
                start = time.perf_counter_ns()
                try:
                    result = evaluator.select(parse_xpath(query))
                except ReproError:
                    typed += 1
                    latencies.append(time.perf_counter_ns() - start)
                    continue
                latencies.append(time.perf_counter_ns() - start)
                got = _result_labels(resilient, result)
                if got == want[query]:
                    correct += 1
                else:
                    wrong += 1
        total = correct + typed + wrong
        counters = resilient.as_dict()
        latencies.sort()
        p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
        rows.append(
            (
                name,
                f"{100.0 * correct / total:.1f}%",
                f"{100.0 * typed / total:.1f}%",
                wrong,
                int(counters["retries"]),
                int(counters["fallback_calls"]),
                round(p99 / 1e6, 2),
            )
        )
        assert wrong == 0, f"chaos produced wrong answers under {name!r}"
    sink(
        "E18_resilience",
        ("scenario", "available", "typed err", "wrong", "retries",
         "fallback", "p99 ms"),
        rows,
        "E18: availability under read-path chaos (correct-or-typed)",
    )
    return rows


@emits_table
def test_resilience_table(xmark_bench_tree):
    run_availability_table(xmark_bench_tree, XMARK_QUERIES)


def _print_only(experiment, headers, rows, title):
    from repro.analysis import format_table

    print()
    print(format_table(headers, rows, title=title))


class _TickingClock:
    """Advances a fixed step per read: timeouts depend on work done,
    not host speed."""

    def __init__(self, step_ms=1.0):
        self.now_ns = 0
        self.step_ns = int(step_ms * 1e6)

    def __call__(self):
        self.now_ns += self.step_ns
        return self.now_ns


def _gate_deadline(tree):
    """An already-expired budget must cancel, typed, with work counted."""
    from repro.query.engine import XPathEngine

    engine = XPathEngine(tree)
    deadline = Deadline(1, clock=_TickingClock(), check_interval=1)
    try:
        engine.select("//item", deadline=deadline)
    except QueryTimeout as exc:
        assert exc.steps >= 1
        assert engine.stats.error_counts().get("QueryTimeout") == 1
        return
    raise AssertionError("expired deadline did not cancel the query")


def _gate_admission():
    """Beyond tokens + queue the controller sheds typed, immediately."""
    controller = AdmissionController(
        max_concurrent=1, max_queue=0, queue_timeout_s=0.05
    )
    with controller.admit():
        try:
            with controller.admit():
                pass
        except Overloaded:
            return
    raise AssertionError("saturated admission controller did not shed")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI SLO gate: small document, one repeat, plus deadline "
        "and admission behaviour checks (does not overwrite results)",
    )
    args = parser.parse_args()
    if args.quick:
        tree = generate_xmark(scale=0.05, seed=2002)
        rows = run_availability_table(
            tree, XMARK_QUERIES[:6], repeats=1, sink=_print_only
        )
        # SLO: full availability while the fallback is armed
        for name, available, _typed, wrong, _r, _f, _p99 in rows[:3]:
            assert available == "100.0%", f"availability SLO missed: {name}"
            assert wrong == 0
        _gate_deadline(tree)
        _gate_admission()
        print("quick: SLO gate passed (correct-or-typed, cancel, shed)")
        return
    tree = generate_xmark(scale=0.3, seed=2002)
    run_availability_table(tree, XMARK_QUERIES)


if __name__ == "__main__":
    main()
