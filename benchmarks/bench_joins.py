"""E8 + E14 extension — structural joins over labels.

The structural join (ancestor ⋈ descendant on two node sets) is the
database operator numbering schemes exist for (Li–Moon [6], Zhang et
al. [11] in the paper's related work). This bench compares the
stack-tree sort-merge join against the nested-loop baseline, per
scheme, on the auction corpus.

The E14 tables measure the query fast path's join-side pieces:
rank-index merges vs comparator sorts inside the stack-tree join, and
the compiled-plan LRU cache cold vs warm. Runs under pytest and as a
standalone CI smoke::

    python benchmarks/bench_joins.py --quick
"""

import argparse
import time

import pytest

from conftest import emit, emits_table
from repro.analysis import format_table
from repro.baselines import get_scheme
from repro.core import Ruid2Scheme
from repro.generator import XMARK_QUERIES, generate_xmark
from repro.query import XPathEngine, nested_loop_join, stack_tree_join

_JOIN_SCHEMES = ("uid", "ruid2", "dewey", "prepost", "region")


def _print_only(experiment, headers, rows, title):
    print()
    print(format_table(headers, rows, title=title))


@pytest.fixture(scope="module")
def join_inputs(xmark_bench_tree):
    persons = xmark_bench_tree.find_by_tag("person")
    names = xmark_bench_tree.find_by_tag("name")
    return persons, names


@pytest.mark.parametrize("scheme_name", _JOIN_SCHEMES)
def test_stack_join(benchmark, xmark_bench_tree, join_inputs, scheme_name):
    labeling = get_scheme(scheme_name).build(xmark_bench_tree)
    persons, names = join_inputs
    a_labels = [labeling.label_of(n) for n in persons]
    d_labels = [labeling.label_of(n) for n in names]
    benchmark(lambda: stack_tree_join(labeling, a_labels, d_labels))


@pytest.mark.parametrize("scheme_name", ["ruid2", "region"])
def test_nested_join(benchmark, xmark_bench_tree, join_inputs, scheme_name):
    labeling = get_scheme(scheme_name).build(xmark_bench_tree)
    persons, names = join_inputs
    a_labels = [labeling.label_of(n) for n in persons]
    d_labels = [labeling.label_of(n) for n in names]
    benchmark.pedantic(
        lambda: nested_loop_join(labeling, a_labels, d_labels), rounds=3, iterations=1
    )


@emits_table
def test_join_table(xmark_bench_tree, join_inputs):
    persons, names = join_inputs
    rows = []
    for scheme_name in _JOIN_SCHEMES:
        labeling = get_scheme(scheme_name).build(xmark_bench_tree)
        a_labels = [labeling.label_of(n) for n in persons]
        d_labels = [labeling.label_of(n) for n in names]
        start = time.perf_counter()
        stack_pairs = stack_tree_join(labeling, a_labels, d_labels)
        stack_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        nested_pairs = nested_loop_join(labeling, a_labels, d_labels)
        nested_ms = (time.perf_counter() - start) * 1e3
        assert stack_pairs == nested_pairs
        rows.append(
            (
                scheme_name,
                len(a_labels),
                len(d_labels),
                len(stack_pairs),
                round(stack_ms, 2),
                round(nested_ms, 2),
            )
        )
    emit(
        "E8_joins",
        ("scheme", "|A|", "|D|", "pairs", "stack_ms", "nested_ms"),
        rows,
        "E8 extension: person ⋈ name structural join per scheme",
    )
    # the sort-merge join must beat the quadratic baseline everywhere
    assert all(row[4] < row[5] for row in rows)


def run_join_sort_table(tree, sink=emit, repeats=5):
    """Stack-tree join: comparator-sort path vs rank-index path."""
    persons = tree.find_by_tag("person")
    names = tree.find_by_tag("name")
    rows = []
    for scheme_name in _JOIN_SCHEMES:
        labeling = get_scheme(scheme_name).build(tree)
        a_labels = [labeling.label_of(n) for n in persons]
        d_labels = [labeling.label_of(n) for n in names]
        labeling.rank_index()  # build outside the timed region
        start = time.perf_counter()
        for _ in range(repeats):
            comparator_pairs = stack_tree_join(
                labeling, a_labels, d_labels, use_rank_index=False
            )
        comparator_ms = (time.perf_counter() - start) * 1e3 / repeats
        start = time.perf_counter()
        for _ in range(repeats):
            ranked_pairs = stack_tree_join(labeling, a_labels, d_labels)
        ranked_ms = (time.perf_counter() - start) * 1e3 / repeats
        assert ranked_pairs == comparator_pairs
        rows.append(
            (
                scheme_name,
                len(comparator_pairs),
                round(comparator_ms, 2),
                round(ranked_ms, 2),
                round(comparator_ms / ranked_ms, 1),
            )
        )
    sink(
        "E14_join_sort",
        ("scheme", "pairs", "comparator_ms", "rank_ms", "speedup"),
        rows,
        f"E14: stack-tree join, comparator sort vs rank index ({repeats}-run mean)",
    )
    return rows


def run_plan_cache_table(tree, sink=emit):
    """Compiled-plan LRU cache: cold parse vs warm lookup latency."""
    labeling = Ruid2Scheme(max_area_size=24).build(tree)
    engine = XPathEngine(tree, labeling=labeling)
    queries = list(XMARK_QUERIES)
    start = time.perf_counter()
    for query in queries:
        engine.compile(query)
    cold_us = (time.perf_counter() - start) * 1e6 / len(queries)
    warm_rounds = 50
    start = time.perf_counter()
    for _ in range(warm_rounds):
        for query in queries:
            engine.compile(query)
    warm_us = (time.perf_counter() - start) * 1e6 / (len(queries) * warm_rounds)
    stats = engine.stats
    rows = [
        (
            len(queries),
            round(cold_us, 1),
            round(warm_us, 2),
            round(cold_us / warm_us, 1),
            stats.plan_hits,
            stats.plan_misses,
            stats.plan_evictions,
        )
    ]
    sink(
        "E14_plan_cache",
        ("plans", "cold_us", "warm_us", "speedup", "hits", "misses", "evictions"),
        rows,
        "E14: compiled-plan LRU cache, per-query compile latency",
    )
    return rows


@emits_table
def test_e14_join_sort_table(xmark_bench_tree):
    rows = run_join_sort_table(xmark_bench_tree)
    # the rank-index merge must not lose to the comparator sort
    assert all(row[3] <= row[2] for row in rows)


@emits_table
def test_e14_plan_cache_table(xmark_bench_tree):
    rows = run_plan_cache_table(xmark_bench_tree)
    ((_plans, cold_us, warm_us, _s, hits, misses, evictions),) = rows
    assert warm_us < cold_us
    assert misses == len(XMARK_QUERIES) and evictions == 0
    assert hits == 50 * len(XMARK_QUERIES)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small documents only (CI smoke; does not overwrite results)",
    )
    args = parser.parse_args()
    # smoke mode prints but must not clobber the checked-in tables
    sink = _print_only if args.quick else emit
    scale = 0.1 if args.quick else 0.3
    tree = generate_xmark(scale=scale, seed=2002)
    join_rows = run_join_sort_table(tree, sink=sink)
    for scheme_name, _pairs, comparator_ms, rank_ms, _speedup in join_rows:
        assert rank_ms <= comparator_ms, (
            f"{scheme_name}: rank-index join {rank_ms}ms slower "
            f"than comparator {comparator_ms}ms"
        )
    plan_rows = run_plan_cache_table(tree, sink=sink)
    assert plan_rows[0][2] < plan_rows[0][1], "warm plan lookup slower than cold parse"
    print("\nok")


if __name__ == "__main__":
    main()
