"""E8 extension — structural joins over labels.

The structural join (ancestor ⋈ descendant on two node sets) is the
database operator numbering schemes exist for (Li–Moon [6], Zhang et
al. [11] in the paper's related work). This bench compares the
stack-tree sort-merge join against the nested-loop baseline, per
scheme, on the auction corpus.
"""

import time

import pytest

from conftest import emit, emits_table
from repro.baselines import get_scheme
from repro.query import nested_loop_join, stack_tree_join

_JOIN_SCHEMES = ("uid", "ruid2", "dewey", "prepost", "region")


@pytest.fixture(scope="module")
def join_inputs(xmark_bench_tree):
    persons = xmark_bench_tree.find_by_tag("person")
    names = xmark_bench_tree.find_by_tag("name")
    return persons, names


@pytest.mark.parametrize("scheme_name", _JOIN_SCHEMES)
def test_stack_join(benchmark, xmark_bench_tree, join_inputs, scheme_name):
    labeling = get_scheme(scheme_name).build(xmark_bench_tree)
    persons, names = join_inputs
    a_labels = [labeling.label_of(n) for n in persons]
    d_labels = [labeling.label_of(n) for n in names]
    benchmark(lambda: stack_tree_join(labeling, a_labels, d_labels))


@pytest.mark.parametrize("scheme_name", ["ruid2", "region"])
def test_nested_join(benchmark, xmark_bench_tree, join_inputs, scheme_name):
    labeling = get_scheme(scheme_name).build(xmark_bench_tree)
    persons, names = join_inputs
    a_labels = [labeling.label_of(n) for n in persons]
    d_labels = [labeling.label_of(n) for n in names]
    benchmark.pedantic(
        lambda: nested_loop_join(labeling, a_labels, d_labels), rounds=3, iterations=1
    )


@emits_table
def test_join_table(xmark_bench_tree, join_inputs):
    persons, names = join_inputs
    rows = []
    for scheme_name in _JOIN_SCHEMES:
        labeling = get_scheme(scheme_name).build(xmark_bench_tree)
        a_labels = [labeling.label_of(n) for n in persons]
        d_labels = [labeling.label_of(n) for n in names]
        start = time.perf_counter()
        stack_pairs = stack_tree_join(labeling, a_labels, d_labels)
        stack_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        nested_pairs = nested_loop_join(labeling, a_labels, d_labels)
        nested_ms = (time.perf_counter() - start) * 1e3
        assert stack_pairs == nested_pairs
        rows.append(
            (
                scheme_name,
                len(a_labels),
                len(d_labels),
                len(stack_pairs),
                round(stack_ms, 2),
                round(nested_ms, 2),
            )
        )
    emit(
        "E8_joins",
        ("scheme", "|A|", "|D|", "pairs", "stack_ms", "nested_ms"),
        rows,
        "E8 extension: person ⋈ name structural join per scheme",
    )
    # the sort-merge join must beat the quadratic baseline everywhere
    assert all(row[4] < row[5] for row in rows)
