"""E19 — flat-array fast path: bit-packed labels and columnar stores.

Three tables:

* **E19a** — label footprint across all nine registry schemes on one
  corpus: mean label bits, auxiliary index bytes, and the columnar
  sidecar's bytes-per-node (the flat structure columns every store now
  serves reads from).
* **E19b** — per-axis query timings: the packed scheme through the
  batched columnar :class:`StoreEvaluator` vs the tuple-label path
  (prepost labels, per-node evaluation — the pre-columnar
  configuration) vs the navigational baseline, node-for-node agreement
  asserted on every query.
* **E19c** — interval joins: the stack-tree merge over machine-packed
  rank arrays vs the comparator fallback on the same inputs.

Runs under pytest and as a standalone CI smoke::

    python benchmarks/bench_packed.py --quick

The smoke gates on node-for-node agreement of the packed+columnar
batched evaluator against the navigational baseline, and on the
descendant axis beating the tuple-label path by >= 1.5x on the largest
corpus.
"""

import argparse
import time

from conftest import emit, emits_table
from repro.analysis import format_table
from repro.baselines import all_schemes, get_scheme
from repro.generator import generate_dblp, generate_xmark
from repro.query import XPathEngine
from repro.query.joins import stack_tree_join
from repro.store import MemoryNodeStore, StoreEvaluator

#: axis → queries, per corpus; predicate-free so the batched
#: set-at-a-time path handles every step
XMARK_AXIS_QUERIES = {
    "descendant": ["//item", "//person//name", "//open_auction//increase", "//*"],
    "ancestor": ["//bidder/ancestor::*", "//increase/ancestor::open_auction"],
    "child": ["/site/*", "//open_auction/bidder", "/site/people/person/name"],
}
DBLP_AXIS_QUERIES = {
    "descendant": ["//article", "//author", "//inproceedings//title", "//*"],
    "ancestor": ["//author/ancestor::*", "//title/ancestor::article"],
    "child": ["/dblp/*", "/dblp/article/title", "//article/author"],
}

#: (upper tag, lower tag) join inputs per corpus
JOIN_TAGS = {"xmark": ("open_auction", "increase"), "dblp": ("article", "author")}


def _print_only(experiment, headers, rows, title):
    print()
    print(format_table(headers, rows, title=title))


def _time(fn, repeats=3):
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) * 1e3 / repeats


def run_label_size_table(tree, sink=emit):
    """E19a: per-scheme label bits and flat-column bytes-per-node."""
    rows = []
    for scheme in all_schemes():
        labeling = scheme.build(tree)
        nodes = tree.nodes()
        sample = nodes[:: max(1, len(nodes) // 2000)]
        bits = [labeling.label_bits(labeling.label_of(n)) for n in sample]
        columnar = labeling.columnar_index()
        rows.append(
            (
                scheme.name,
                round(sum(bits) / len(bits), 1),
                max(bits),
                labeling.memory_bytes(),
                round(columnar.bytes_per_node(), 1),
            )
        )
    sink(
        "E19a_labels",
        ("scheme", "avg_bits", "max_bits", "aux_bytes", "col_bytes/node"),
        rows,
        "E19a: label footprint and columnar sidecar, all registry schemes",
    )
    return rows


def run_axis_table(corpora, sink=emit, repeats=3):
    """E19b: packed+columnar batched vs tuple-label per-node vs
    navigational, per axis family. Agreement asserted node-for-node."""
    rows = []
    for corpus, tree, axis_queries in corpora:
        packed = get_scheme("packed").build(tree)
        engine = XPathEngine(tree, labeling=packed)
        packed_eval = StoreEvaluator(MemoryNodeStore(packed))
        tuple_eval = StoreEvaluator(
            MemoryNodeStore(get_scheme("prepost").build(tree)), batched=False
        )
        nav = engine.evaluator("navigational")
        for axis, queries in axis_queries.items():
            compiled = [engine.compile(q) for q in queries]
            for evaluator in (packed_eval, tuple_eval, nav):  # warm caches
                for expr in compiled:
                    evaluator.select(expr)
            for expr, query in zip(compiled, queries):  # node-for-node
                expected = [n.node_id for n in nav.select(expr)]
                assert [
                    n.node_id for n in packed_eval.select(expr)
                ] == expected, (corpus, query)
                assert [
                    n.node_id for n in tuple_eval.select(expr)
                ] == expected, (corpus, query)

            def run_all(evaluator, compiled=compiled):
                for expr in compiled:
                    evaluator.select(expr)

            packed_ms = _time(lambda: run_all(packed_eval), repeats)
            tuple_ms = _time(lambda: run_all(tuple_eval), repeats)
            nav_ms = _time(lambda: run_all(nav), repeats)
            rows.append(
                (
                    corpus,
                    axis,
                    len(queries),
                    round(packed_ms, 2),
                    round(tuple_ms, 2),
                    round(nav_ms, 2),
                    round(tuple_ms / packed_ms, 1),
                )
            )
    sink(
        "E19b_axes",
        ("corpus", "axis", "queries", "packed_ms", "tuple_ms", "nav_ms", "speedup"),
        rows,
        f"E19b: packed+columnar vs tuple-label per-node ({repeats}-run mean)",
    )
    return rows


def run_join_table(corpora, sink=emit, repeats=3):
    """E19c: stack-tree interval join, rank-array merge vs comparator."""
    rows = []
    for corpus, tree, _queries in corpora:
        upper_tag, lower_tag = JOIN_TAGS[corpus]
        labeling = get_scheme("packed").build(tree)
        uppers = [
            labeling.label_of(n) for n in tree.preorder() if n.tag == upper_tag
        ]
        lowers = [
            labeling.label_of(n) for n in tree.preorder() if n.tag == lower_tag
        ]
        ranked_pairs = stack_tree_join(labeling, uppers, lowers)
        compare_pairs = stack_tree_join(
            labeling, uppers, lowers, use_rank_index=False
        )
        assert ranked_pairs == compare_pairs
        ranked_ms = _time(lambda: stack_tree_join(labeling, uppers, lowers), repeats)
        compare_ms = _time(
            lambda: stack_tree_join(labeling, uppers, lowers, use_rank_index=False),
            repeats,
        )
        rows.append(
            (
                corpus,
                f"{upper_tag}//{lower_tag}",
                len(uppers),
                len(lowers),
                len(ranked_pairs),
                round(ranked_ms, 2),
                round(compare_ms, 2),
                round(compare_ms / ranked_ms, 1),
            )
        )
    sink(
        "E19c_joins",
        ("corpus", "join", "|A|", "|D|", "pairs", "ranked_ms", "cmp_ms", "speedup"),
        rows,
        f"E19c: stack-tree join, rank-array merge vs comparator ({repeats}-run mean)",
    )
    return rows


def _corpora(quick: bool):
    if quick:
        return (
            ("xmark", generate_xmark(scale=0.1, seed=1902), XMARK_AXIS_QUERIES),
            ("dblp", generate_dblp(entries=150, seed=1902), DBLP_AXIS_QUERIES),
        )
    return (
        ("xmark", generate_xmark(scale=0.3, seed=1902), XMARK_AXIS_QUERIES),
        ("dblp", generate_dblp(entries=600, seed=1902), DBLP_AXIS_QUERIES),
    )


def _gate(axis_rows):
    """The CI claim: descendant axis >= 1.5x over the tuple-label path
    on the largest corpus (the first, xmark), faster on every corpus."""
    by_corpus_axis = {(r[0], r[1]): r for r in axis_rows}
    packed_ms, tuple_ms = by_corpus_axis[("xmark", "descendant")][3:5]
    speedup = tuple_ms / packed_ms
    assert speedup >= 1.5, (
        f"descendant axis only {speedup:.2f}x over the tuple-label path"
    )
    for (corpus, axis), row in by_corpus_axis.items():
        if axis in ("descendant", "ancestor"):
            assert row[3] <= row[4], (
                f"{corpus}/{axis}: packed {row[3]}ms slower than tuple {row[4]}ms"
            )


@emits_table
def test_e19_packed_tables(xmark_bench_tree, dblp_bench_tree):
    corpora = (
        ("xmark", xmark_bench_tree, XMARK_AXIS_QUERIES),
        ("dblp", dblp_bench_tree, DBLP_AXIS_QUERIES),
    )
    run_label_size_table(xmark_bench_tree)
    axis_rows = run_axis_table(corpora)
    run_join_table(corpora)
    _gate(axis_rows)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small documents only (CI smoke; does not overwrite results)",
    )
    args = parser.parse_args()
    sink = _print_only if args.quick else emit
    corpora = _corpora(args.quick)
    run_label_size_table(corpora[0][1], sink=sink)
    axis_rows = run_axis_table(corpora, sink=sink)
    join_rows = run_join_table(corpora, sink=sink)
    _gate(axis_rows)
    # the ranked merge must not lose to the comparator path (only
    # gated when the measurement is long enough to mean anything)
    for row in join_rows:
        if row[6] >= 0.2:
            assert row[5] <= row[6], (
                f"{row[0]}: ranked join slower than comparator"
            )
    print("\nok")


if __name__ == "__main__":
    main()
