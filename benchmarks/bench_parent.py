"""E6 — parent computation cost (paper §2.2, §3.3, observation 2).

Regenerates the comparison behind "even though the function to find the
parent node's identifier ... is more complicated than the one in the
original UID, since the computation occurs mostly in main memory, the
distinction is not significant":

* per-operation timing of ``parent(label)`` for every scheme;
* index probes charged by the schemes that cannot compute parents
  arithmetically (pre/post, region, position/depth);
* storage I/O of a parent *fetch* through the database, per scheme.
"""

import pytest

from conftest import emit, emits_table
from repro.baselines import get_scheme, scheme_names
from repro.storage import XmlDatabase

_SCHEMES = [name for name in scheme_names()]


@pytest.fixture(scope="module")
def labelings(xmark_bench_tree):
    return {
        name: get_scheme(name).build(xmark_bench_tree) for name in _SCHEMES
    }


@pytest.fixture(scope="module")
def parent_targets(xmark_bench_tree):
    """A fixed sample of non-root nodes, deepest-heavy."""
    nodes = [n for n in xmark_bench_tree.preorder() if n.parent is not None]
    nodes.sort(key=lambda n: -n.depth)
    return nodes[: min(400, len(nodes))]


@pytest.mark.parametrize("scheme_name", _SCHEMES)
def test_parent_step(benchmark, labelings, parent_targets, scheme_name):
    """Time one batch of parent computations under each scheme."""
    labeling = labelings[scheme_name]
    labels = [labeling.label_of(node) for node in parent_targets]

    def run():
        for label in labels:
            labeling.parent_label(label)

    benchmark(run)


@pytest.mark.parametrize("scheme_name", ["uid", "ruid2", "dewey"])
def test_ancestor_chain(benchmark, labelings, parent_targets, scheme_name):
    """Full root-ward walks — the rancestor() repetition of §3.5."""
    labeling = labelings[scheme_name]
    labels = [labeling.label_of(node) for node in parent_targets[:100]]
    from repro.errors import NoParentError

    def run():
        for label in labels:
            current = label
            while True:
                try:
                    current = labeling.parent_label(current)
                except NoParentError:
                    break

    benchmark(run)


@emits_table
def test_e6_table(labelings, parent_targets, xmark_bench_tree):
    """The E6 summary table: probes + storage I/O per parent lookup."""
    import time

    rows = []
    for name, labeling in labelings.items():
        labels = [labeling.label_of(node) for node in parent_targets]
        start = time.perf_counter()
        for label in labels:
            labeling.parent_label(label)
        elapsed = time.perf_counter() - start
        probes = getattr(labeling, "index_probes", 0)

        database = XmlDatabase(page_size=1024, pool_pages=8)
        document = database.store_document("d", xmark_bench_tree, labeling)
        snapshot = database.io_snapshot()
        for label in labels[:50]:
            document.fetch_parent(label)
        delta = database.io_delta(snapshot)
        rows.append(
            (
                name,
                not labeling.parent_needs_index,
                round(elapsed * 1e6 / len(labels), 2),
                probes,
                delta["disk_reads"],
            )
        )
    emit(
        "E6_parent",
        ("scheme", "arithmetic", "us_per_parent", "index_probes", "fetch_disk_reads"),
        rows,
        "E6: parent computation (400 deep nodes; 50 stored parent fetches)",
    )
    by_name = dict((r[0], r) for r in rows)
    # The paper's claims: UID/rUID/Dewey need no index; the others do.
    assert by_name["uid"][3] == 0
    assert by_name["ruid2"][3] == 0
    assert by_name["prepost"][3] > 0
