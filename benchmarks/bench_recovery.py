"""E13 — crash-recovery cost of the WAL robustness layer.

Measures, per document size: the WAL's byte overhead relative to the
disk image, full-log replay time, and how a checkpoint bounds it.
Runs under pytest (``pytest benchmarks/bench_recovery.py``) and as a
standalone script for CI smoke::

    python benchmarks/bench_recovery.py --quick
"""

import argparse
import time

from conftest import emit, emits_table
from repro.analysis import format_table
from repro.core import Ruid2SchemeLabeling, SizeCapPartitioner
from repro.generator import generate_xmark
from repro.storage import XmlDatabase

PAGE_SIZE = 1024
POOL_PAGES = 64
SCALES = (0.05, 0.1, 0.2, 0.4)
QUICK_SCALES = (0.02, 0.05)


def _print_only(experiment, headers, rows, title):
    print()
    print(format_table(headers, rows, title=title))


def _build_durable(scale):
    tree = generate_xmark(scale=scale, seed=13)
    labeling = Ruid2SchemeLabeling(tree, partitioner=SizeCapPartitioner(16))
    database = XmlDatabase(
        page_size=PAGE_SIZE, pool_pages=POOL_PAGES, durable=True
    )
    database.store_document("doc", tree, labeling)
    return tree, database


def _recover_ms(wal):
    started = time.perf_counter()
    recovered = XmlDatabase.recover(wal, page_size=PAGE_SIZE, pool_pages=POOL_PAGES)
    elapsed = (time.perf_counter() - started) * 1000.0
    return recovered, elapsed


def run_recovery_table(scales, sink=emit):
    """WAL overhead + replay time as the document grows."""
    rows = []
    for scale in scales:
        tree, database = _build_durable(scale)
        disk_bytes = database.pager.disk_bytes()
        wal_bytes = database.wal.size_bytes()
        records = database.wal.record_count
        database.crash(tear_bytes=0)
        recovered, elapsed_ms = _recover_ms(database.wal)
        assert len(recovered.document("doc")) == tree.size()
        rows.append(
            (
                tree.size(),
                records,
                wal_bytes,
                f"{wal_bytes / disk_bytes:.2f}x",
                f"{elapsed_ms:.1f}",
            )
        )
    sink(
        "E13_recovery",
        ("nodes", "wal records", "wal bytes", "wal/disk", "recover (ms)"),
        rows,
        "E13: redo-log overhead and full-log replay time "
        f"(page {PAGE_SIZE}B, pool {POOL_PAGES})",
    )
    return rows


def run_checkpoint_table(scales, sink=emit):
    """Replay cost with and without a checkpoint before the crash."""
    rows = []
    for scale in scales:
        tree, database = _build_durable(scale)
        database.crash(tear_bytes=0)
        full_records = database.wal.record_count  # before replay truncates
        _, full_ms = _recover_ms(database.wal)

        tree, database = _build_durable(scale)
        database.checkpoint()
        database.crash(tear_bytes=0)
        truncated_records = database.wal.record_count
        recovered, truncated_ms = _recover_ms(database.wal)
        assert len(recovered.document("doc")) == tree.size()
        rows.append(
            (
                tree.size(),
                full_records,
                f"{full_ms:.1f}",
                truncated_records,
                f"{truncated_ms:.1f}",
            )
        )
    sink(
        "E13_checkpoint",
        (
            "nodes",
            "records (no ckpt)",
            "recover ms",
            "records (after ckpt)",
            "recover ms ",
        ),
        rows,
        "E13: checkpointing bounds recovery (log truncated to a base image)",
    )
    return rows


@emits_table
def test_recovery_table():
    run_recovery_table(SCALES)


@emits_table
def test_checkpoint_table():
    run_checkpoint_table(SCALES)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small documents only (CI smoke; does not overwrite results)",
    )
    args = parser.parse_args()
    # smoke mode prints but must not clobber the checked-in tables
    sink = _print_only if args.quick else emit
    scales = QUICK_SCALES if args.quick else SCALES
    run_recovery_table(scales, sink=sink)
    run_checkpoint_table(scales, sink=sink)
    print("\nok")


if __name__ == "__main__":
    main()
