"""E20: sharded serving under open-loop load (scatter-gather SLOs).

The tentpole claim of the serving tier is behavioural: a consistent-
hash sharded deployment answers XPath exactly like one site — under
concurrency, under injected site faults, under load shedding — while
keeping tail latency bounded. This bench drives the asyncio scatter-
gather executor with an **open-loop** Poisson arrival schedule (the
harness that does not slow down when the server does) and tables, per
scenario: delivered fraction, typed shed/unavailable fractions, wrong
answers (always zero), p50/p95/p99 latency, scatter messages, and
failovers.

``--quick`` is the CI SLO gate:

* **zero wrong answers** while 30% of scatter messages fail and a
  site flaps mid-run (every delivered answer is differentially
  checked against the single-site baseline);
* every undelivered request failed **typed** (shed or unavailable,
  bounded rates) — nothing untyped, nothing silent;
* p99 of delivered requests stays under the budget;
* the schedule and its unpaced outcomes are **deterministic** under a
  fixed seed (two fresh runs agree outcome-for-outcome).
"""

import argparse
import asyncio

from conftest import emit, emits_table
from repro.baselines.registry import get_scheme
from repro.concurrent import StructuralView
from repro.generator import XMARK_QUERIES, generate_xmark
from repro.query.engine import XPathEngine
from repro.resilience import AdmissionController
from repro.serving import (
    OpenLoopLoadGenerator,
    ScatterGatherExecutor,
    ShardedCluster,
    poisson_schedule,
    rank_block_shards,
)
from repro.serving.loadgen import _node_key
from repro.storage.faults import FaultInjector

#: (scenario, sites, rf, transient rate, flap a site mid-run?)
SCENARIOS = (
    ("1 site, healthy", 1, 1, 0.0, False),
    ("2 sites, healthy", 2, 1, 0.0, False),
    ("4 sites, healthy", 4, 1, 0.0, False),
    ("4 sites, 10% faults, rf=2", 4, 2, 0.1, False),
    ("4 sites, 30% faults, rf=2", 4, 2, 0.3, False),
    ("4 sites, 30% faults + flap, rf=2", 4, 2, 0.3, True),
)

#: SLO budget for the quick gate (generous: CI machines vary, the
#: point is catching pathological regressions, not 10% drift)
QUICK_P99_BUDGET_MS = 250.0
QUICK_SHED_BUDGET = 0.30


def build_stack(tree, sites, rf, seed=2002, paced=False):
    """(executor, cluster, expected result keys per query)."""
    labeling = get_scheme("ruid2").build(tree)
    view = StructuralView.from_labeling(labeling)
    faults = FaultInjector(seed=seed)
    cluster = ShardedCluster(
        site_count=sites,
        replication_factor=rf,
        site_latency_s=0.0002 if paced else 0.0,
        faults=faults,
        sleep=asyncio.sleep if paced else None,
    )
    size = len(view.ids_by_rank)
    cluster.add_document(
        "xmark", view, rank_block_shards("xmark", size, max(sites * 2, 4))
    )
    executor = ScatterGatherExecutor(
        cluster,
        admission=AdmissionController(
            max_concurrent=64, max_queue=128, queue_timeout_s=0.5
        ),
        max_rounds=8,
        breaker_threshold=50,
    )
    engine = XPathEngine(tree)
    # the differential anchor: every expected key set is the
    # *navigational* answer — the load run checks sharded results
    # against single-site ground truth, not against itself
    expected = {
        ("xmark", query): _node_key(
            engine.select(query, strategy="navigational")
        )
        for query in XMARK_QUERIES
    }
    for query in XMARK_QUERIES:
        got = _node_key(executor.select_sync("xmark", query))
        assert got == expected[("xmark", query)], (
            f"sharded baseline diverged on {query}"
        )
    return executor, cluster, expected


async def drive(executor, cluster, expected, arrivals, flap, deadline_ms):
    generator = OpenLoopLoadGenerator(
        executor, deadline_ms=deadline_ms, pace=True, expected=expected
    )
    if not flap:
        return await generator.run(arrivals)

    async def flapper():
        victim = sorted(cluster.sites)[0]
        await asyncio.sleep(0.05)
        cluster.take_site_down(victim)
        await asyncio.sleep(0.1)
        cluster.restore_site(victim)
        for breaker in executor.breakers.values():
            breaker.reset()

    run_task = asyncio.ensure_future(generator.run(arrivals))
    flap_task = asyncio.ensure_future(flapper())
    report = await run_task
    await flap_task
    return report


def run_serving_table(tree, count=200, rate_hz=150.0, sink=emit, seed=2002):
    rows = []
    reports = []
    for name, sites, rf, fault_rate, flap in SCENARIOS:
        executor, cluster, expected = build_stack(
            tree, sites, rf, seed=seed, paced=True
        )
        if fault_rate:
            cluster.arm_message_faults(transient_rate=fault_rate)
        workload = [("xmark", query) for query in XMARK_QUERIES]
        arrivals = poisson_schedule(rate_hz, count, workload, seed=seed)
        report = asyncio.run(
            drive(executor, cluster, expected, arrivals, flap, 1000.0)
        )
        stats = executor.stats_snapshot()
        summary = report.summary()
        rows.append(
            (
                name,
                report.offered,
                f"{100.0 * report.ok / report.offered:.1f}%",
                f"{100.0 * report.shed_rate:.1f}%",
                f"{100.0 * (report.unavailable + report.timeouts) / report.offered:.1f}%",
                report.wrong,
                summary["p50_ms"],
                summary["p95_ms"],
                summary["p99_ms"],
                int(stats["scatter_messages"]),
                int(stats["failovers"]),
            )
        )
        reports.append((name, report, stats))
        assert report.wrong == 0, f"wrong answers under {name!r}"
        assert report.errors == 0, f"untyped-adjacent errors under {name!r}"
    sink(
        "E20_serving",
        ("scenario", "offered", "delivered", "shed", "failed",
         "wrong", "p50 ms", "p95 ms", "p99 ms", "messages", "failovers"),
        rows,
        "E20: sharded scatter-gather under open-loop load (correct-or-typed)",
    )
    return rows, reports


@emits_table
def test_serving_table(xmark_bench_tree):
    run_serving_table(xmark_bench_tree, count=240, rate_hz=40.0)


def _print_only(experiment, headers, rows, title):
    from repro.analysis import format_table

    print()
    print(format_table(headers, rows, title=title))


def _gate_determinism(tree):
    """Same seed, two fresh unpaced stacks: identical outcome classes
    and identical result identities, arrival for arrival."""

    def run_once():
        executor, cluster, expected = build_stack(
            tree, 4, 2, seed=7, paced=False
        )
        cluster.arm_message_faults(transient_rate=0.3)
        workload = [("xmark", query) for query in XMARK_QUERIES]
        arrivals = poisson_schedule(1000.0, 120, workload, seed=7)
        generator = OpenLoopLoadGenerator(
            executor, deadline_ms=1000.0, expected=expected
        )
        report = generator.run_sync(arrivals)
        return (
            [outcome.status for outcome in report.outcomes],
            [outcome.result_key for outcome in report.outcomes],
        )

    assert run_once() == run_once(), "seeded load run did not reproduce"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI SLO gate: small document, fault + flap scenarios, "
        "p99/shed budgets, determinism check (writes "
        "results/E20_serving_quick.txt for the build artifact)",
    )
    args = parser.parse_args()
    if args.quick:
        tree = generate_xmark(scale=0.05, seed=2002)
        rows, reports = run_serving_table(
            tree,
            count=150,
            rate_hz=150.0,
            sink=lambda *a: emit("E20_serving_quick", *a[1:]),
        )
        for name, report, _stats in reports:
            assert report.wrong == 0, f"SLO: wrong answers under {name!r}"
            assert report.shed_rate <= QUICK_SHED_BUDGET, (
                f"SLO: shed rate {report.shed_rate:.2f} over budget "
                f"{QUICK_SHED_BUDGET} under {name!r}"
            )
            delivered_or_typed = (
                report.ok + report.shed + report.unavailable + report.timeouts
            )
            assert delivered_or_typed == report.offered, (
                f"SLO: non-typed outcome classes under {name!r}"
            )
            p99_ms = report.percentile_ns(0.99) / 1e6
            assert p99_ms <= QUICK_P99_BUDGET_MS, (
                f"SLO: p99 {p99_ms:.1f}ms over {QUICK_P99_BUDGET_MS}ms "
                f"budget under {name!r}"
            )
        healthy = dict((name, report) for name, report, _ in reports)
        for name in ("1 site, healthy", "4 sites, healthy"):
            assert healthy[name].ok == healthy[name].offered, (
                f"SLO: healthy scenario {name!r} dropped requests"
            )
        _gate_determinism(tree)
        print(
            "quick: SLO gate passed (zero wrong, typed-only failure, "
            f"p99 <= {QUICK_P99_BUDGET_MS:.0f}ms, deterministic)"
        )
        return
    tree = generate_xmark(scale=0.3, seed=2002)
    run_serving_table(tree, count=240, rate_hz=40.0)


if __name__ == "__main__":
    main()
