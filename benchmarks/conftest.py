"""Shared benchmark fixtures.

Every bench regenerates one experiment of DESIGN.md's index (E1-E12),
prints its result table, and also writes it to
``benchmarks/results/<experiment>.txt`` so the output survives
pytest's stdout capture. Run with::

    pytest benchmarks/ --benchmark-only
    pytest benchmarks/ -s          # to watch the tables scroll by
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

import functools
import inspect

import pytest

from repro.analysis import format_table
from repro.generator import generate_dblp, generate_xmark

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def pytest_collection_modifyitems(items):
    """Everything collected from benchmarks/ carries the bench marker
    (deselect repo-wide with ``-m 'not bench'``)."""
    for item in items:
        item.add_marker(pytest.mark.bench)


def emits_table(func):
    """Make a table-generating test visible to ``--benchmark-only``.

    pytest-benchmark skips tests that never touch the ``benchmark``
    fixture under ``--benchmark-only``; the experiment tables must
    regenerate in that mode too, so this wrapper runs the test body as
    a single-round benchmark.
    """
    original_params = list(inspect.signature(func).parameters)

    @functools.wraps(func)
    def wrapper(benchmark, **kwargs):
        benchmark.pedantic(lambda: func(**kwargs), rounds=1, iterations=1)

    wrapper.__signature__ = inspect.Signature(
        [inspect.Parameter("benchmark", inspect.Parameter.POSITIONAL_OR_KEYWORD)]
        + [
            inspect.Parameter(name, inspect.Parameter.KEYWORD_ONLY)
            for name in original_params
        ]
    )
    return wrapper


def emit(experiment: str, headers, rows, title: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    table = format_table(headers, rows, title=title)
    print()
    print(table)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table + "\n")


@pytest.fixture(scope="session")
def xmark_bench_tree():
    """~2k-node auction document (the data-centric workload)."""
    return generate_xmark(scale=0.3, seed=2002)


@pytest.fixture(scope="session")
def dblp_bench_tree():
    """~3k-node flat bibliography (the shallow-wide workload)."""
    return generate_dblp(entries=600, seed=2002)
