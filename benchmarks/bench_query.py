"""E8 + E12 + E14 + E15 — query evaluation (paper §3.5, §4, observation 3).

E8 holds the XPath query set fixed and swaps the evaluation strategy:
rUID identifier arithmetic vs navigational DOM walking. The paper's
observation 3 expects rUID "quite competitive" in main memory; the
structural axes (ancestor/preceding/following-heavy queries) are where
the identifier arithmetic pays off.

E12 regenerates the §4 "database file/table selection" idea: tag
lookups routed to per-area tables via a structural pre-filter touch a
fraction of the tables a blind scan does.

E14 measures the query fast path: the legacy node-at-a-time scheme
evaluator vs the batched set-at-a-time one (rank index + synopsis
pruning + axis memo) vs the navigational baseline. Runs under pytest
and as a standalone CI smoke::

    python benchmarks/bench_query.py --quick

E15 prices the observability layer (docs/OBSERVABILITY.md): the same
query set evaluated bare (no tracer), under the no-op tracer, and
under full instrumentation (live tracer + metrics + slow-query log).
``--quick`` asserts the no-op tracer costs < 5% and full
instrumentation < 10%; ``--explain`` prints the EXPLAIN ANALYZE plan
of every query instead of timing anything.
"""

import argparse
import time

import pytest

from conftest import emit, emits_table
from repro.analysis import format_table
from repro.core import Ruid2Scheme
from repro.generator import (
    DBLP_QUERIES,
    TREEBANK_QUERIES,
    XMARK_QUERIES,
    generate_dblp,
    generate_treebank,
    generate_xmark,
)
from repro.obs import NULL_TRACER, MetricsRegistry, SlowQueryLog, Tracer
from repro.query import SchemeEvaluator, XPathEngine
from repro.storage import XmlDatabase


def _print_only(experiment, headers, rows, title):
    print()
    print(format_table(headers, rows, title=title))


@pytest.fixture(scope="module")
def xmark_engine(xmark_bench_tree):
    labeling = Ruid2Scheme(max_area_size=24).build(xmark_bench_tree)
    return XPathEngine(xmark_bench_tree, labeling=labeling)


@pytest.fixture(scope="module")
def dblp_engine(dblp_bench_tree):
    labeling = Ruid2Scheme(max_area_size=24).build(dblp_bench_tree)
    return XPathEngine(dblp_bench_tree, labeling=labeling)


@pytest.fixture(scope="module")
def treebank_engine():
    tree = generate_treebank(sentences=40, max_depth=16, seed=2002)
    labeling = Ruid2Scheme(max_area_size=24).build(tree)
    return XPathEngine(tree, labeling=labeling)


@pytest.mark.parametrize("strategy", ["ruid", "navigational"])
def test_xmark_query_set(benchmark, xmark_engine, strategy):
    compiled = [xmark_engine.compile(q) for q in XMARK_QUERIES]
    evaluator = xmark_engine.evaluator(strategy)

    def run():
        for expression in compiled:
            evaluator.select(expression)

    benchmark(run)


@pytest.mark.parametrize("strategy", ["ruid", "navigational"])
def test_dblp_query_set(benchmark, dblp_engine, strategy):
    compiled = [dblp_engine.compile(q) for q in DBLP_QUERIES]
    evaluator = dblp_engine.evaluator(strategy)

    def run():
        for expression in compiled:
            evaluator.select(expression)

    benchmark(run)


@pytest.mark.parametrize("strategy", ["ruid", "navigational"])
def test_treebank_query_set(benchmark, treebank_engine, strategy):
    compiled = [treebank_engine.compile(q) for q in TREEBANK_QUERIES]
    evaluator = treebank_engine.evaluator(strategy)

    def run():
        for expression in compiled:
            evaluator.select(expression)

    benchmark(run)


@emits_table
def test_e8_table(xmark_engine, dblp_engine, treebank_engine):
    rows = []
    for corpus, engine, queries in (
        ("xmark", xmark_engine, XMARK_QUERIES),
        ("dblp", dblp_engine, DBLP_QUERIES),
        ("treebank", treebank_engine, TREEBANK_QUERIES),
    ):
        for query in queries:
            navigational = engine.select(query, "navigational")
            start = time.perf_counter()
            for _ in range(3):
                engine.select(query, "navigational")
            nav_time = (time.perf_counter() - start) / 3
            ruid = engine.select(query, "ruid")
            start = time.perf_counter()
            for _ in range(3):
                engine.select(query, "ruid")
            ruid_time = (time.perf_counter() - start) / 3
            assert [n.node_id for n in navigational] == [n.node_id for n in ruid]
            rows.append(
                (
                    corpus,
                    query if len(query) <= 46 else query[:43] + "...",
                    len(navigational),
                    round(ruid_time * 1e3, 2),
                    round(nav_time * 1e3, 2),
                )
            )
    emit(
        "E8_queries",
        ("corpus", "query", "results", "ruid_ms", "nav_ms"),
        rows,
        "E8: XPath evaluation, rUID arithmetic vs navigational (3-run mean)",
    )


def _time_queries(evaluator, compiled, repeats=3):
    start = time.perf_counter()
    for _ in range(repeats):
        for expression in compiled:
            evaluator.select(expression)
    return (time.perf_counter() - start) * 1e3 / repeats


def run_fastpath_table(corpora, sink=emit, repeats=3):
    """Legacy per-node vs batched set-at-a-time vs navigational."""
    rows = []
    for corpus, tree, queries in corpora:
        labeling = Ruid2Scheme(max_area_size=24).build(tree)
        engine = XPathEngine(tree, labeling=labeling)
        compiled = [engine.compile(q) for q in queries]
        legacy = SchemeEvaluator(labeling, batched=False, memoize=False)
        fast = engine.evaluator("ruid")
        nav = engine.evaluator("navigational")
        for evaluator in (legacy, fast, nav):  # warm every cache
            for expression in compiled:
                evaluator.select(expression)
        legacy_ms = _time_queries(legacy, compiled, repeats)
        fast_ms = _time_queries(fast, compiled, repeats)
        nav_ms = _time_queries(nav, compiled, repeats)
        for expression in compiled:  # all three agree, node for node
            expected = [n.node_id for n in nav.select(expression)]
            assert [n.node_id for n in legacy.select(expression)] == expected
            assert [n.node_id for n in fast.select(expression)] == expected
        counters = engine.stats.snapshot()
        rows.append(
            (
                corpus,
                len(queries),
                round(legacy_ms, 2),
                round(fast_ms, 2),
                round(nav_ms, 2),
                round(legacy_ms / fast_ms, 1),
                counters["batched_steps"],
                counters["synopsis_skips"],
            )
        )
    sink(
        "E14_fastpath",
        (
            "corpus",
            "queries",
            "legacy_ms",
            "fast_ms",
            "nav_ms",
            "speedup",
            "batched",
            "skips",
        ),
        rows,
        f"E14: scheme evaluator fast path, full query set ({repeats}-run mean)",
    )
    return rows


@emits_table
def test_e14_fastpath_table(xmark_bench_tree, dblp_bench_tree):
    treebank = generate_treebank(sentences=40, max_depth=16, seed=2002)
    rows = run_fastpath_table(
        (
            ("xmark", xmark_bench_tree, XMARK_QUERIES),
            ("dblp", dblp_bench_tree, DBLP_QUERIES),
            ("treebank", treebank, TREEBANK_QUERIES),
        )
    )
    # the tentpole claim: batched beats legacy by >= 2x on every corpus
    assert all(row[2] / row[3] >= 2.0 for row in rows)


@emits_table
def test_e12_table_routing(xmark_bench_tree):
    from repro.query import TagAreaSynopsis

    labeling = Ruid2Scheme(max_area_size=24).build(xmark_bench_tree)
    synopsis = TagAreaSynopsis(labeling.core)
    database = XmlDatabase(page_size=1024, pool_pages=128)
    document = database.store_document(
        "auction", xmark_bench_tree, labeling, partition_by_area=True
    )
    rows = []
    for tag in ("person", "item", "bidder", "price", "city"):
        all_rows, scanned_blind = document.nodes_with_tag_routed(tag)
        # structural pre-filter: the tag→area synopsis of section 4
        routed_rows, scanned_routed = document.nodes_with_tag_routed(
            tag, synopsis.areas_for(tag)
        )
        assert len(routed_rows) == len(all_rows)
        rows.append(
            (
                tag,
                len(all_rows),
                scanned_blind,
                scanned_routed,
                round(scanned_routed / scanned_blind, 3) if scanned_blind else 0.0,
            )
        )
    emit(
        "E12_routing",
        ("tag", "matches", "tables_blind", "tables_routed", "fraction"),
        rows,
        "E12: per-area table routing via global index (paper section 4)",
    )
    # routing must never scan more tables than the blind approach
    assert all(row[3] <= row[2] for row in rows)


def _best_of_interleaved(engines, queries, strategy="ruid", repeats=3, trials=3):
    """Per-engine best-of-*trials* wall time (ms) for one pass of
    *queries* (each pass averaging *repeats* runs). The engines are
    timed round-robin within every trial so scheduler and cache drift
    hit all of them alike — overhead ratios from back-to-back blocks
    are dominated by run-ordering noise, not instrumentation."""
    best = [None] * len(engines)
    for _ in range(trials):
        for slot, engine in enumerate(engines):
            start = time.perf_counter()
            for _ in range(repeats):
                for query in queries:
                    engine.select(query, strategy)
            elapsed = (time.perf_counter() - start) * 1e3 / repeats
            if best[slot] is None or elapsed < best[slot]:
                best[slot] = elapsed
    return best


def run_observability_table(corpora, sink=emit, repeats=3, trials=3):
    """E15: the cost of watching. Three engines over one labeling:
    bare (tracer ``None`` — the zero-instrumentation hot path), no-op
    tracer (instrumented code paths, null sink), and full (live
    tracer + metrics registry + slow-query log)."""
    rows = []
    for corpus, tree, queries in corpora:
        labeling = Ruid2Scheme(max_area_size=24).build(tree)
        bare = XPathEngine(tree, labeling=labeling)
        noop = XPathEngine(tree, labeling=labeling, tracer=NULL_TRACER)
        tracer = Tracer()
        registry = MetricsRegistry()
        slow_log = SlowQueryLog()  # production default threshold
        full = XPathEngine(
            tree, labeling=labeling,
            tracer=tracer, registry=registry, slow_log=slow_log,
        )
        for engine in (bare, noop, full):  # warm plan + axis caches
            for query in queries:
                engine.select(query)
        bare_ms, noop_ms, full_ms = _best_of_interleaved(
            (bare, noop, full), queries, repeats=repeats, trials=trials
        )
        rows.append(
            (
                corpus,
                len(queries),
                round(bare_ms, 2),
                round(noop_ms, 2),
                round(full_ms, 2),
                round((noop_ms / bare_ms - 1.0) * 100, 1),
                round((full_ms / bare_ms - 1.0) * 100, 1),
                len(tracer.finished()) + tracer.dropped,
                slow_log.slow_count,
            )
        )
    sink(
        "E15_observability",
        (
            "corpus",
            "queries",
            "bare_ms",
            "noop_ms",
            "full_ms",
            "noop_pct",
            "full_pct",
            "spans",
            "slow",
        ),
        rows,
        f"E15: observability overhead, bare vs no-op tracer vs full "
        f"(best of {trials}, {repeats}-run mean)",
    )
    return rows


@emits_table
def test_e15_observability_table(xmark_bench_tree, dblp_bench_tree):
    treebank = generate_treebank(sentences=40, max_depth=16, seed=2002)
    corpora = (
        ("xmark", xmark_bench_tree, XMARK_QUERIES),
        ("dblp", dblp_bench_tree, DBLP_QUERIES),
        ("treebank", treebank, TREEBANK_QUERIES),
    )
    run_observability_table(corpora)
    # EXPLAIN ANALYZE must account for every query in the E14 suite:
    # each non-scalar step carries a call count, cardinalities and a
    # wall time, and the analyzed result matches a plain select.
    # (Overhead percentages are asserted only in the --quick smoke —
    # shared CI runners make timing ratios too noisy for tier-1.)
    for _corpus, tree, queries in corpora:
        labeling = Ruid2Scheme(max_area_size=24).build(tree)
        engine = XPathEngine(tree, labeling=labeling)
        for query in queries:
            plan = engine.explain(query, analyze=True)
            assert plan.analyzed
            expected = [n.node_id for n in engine.select(query)]
            assert [n.node_id for n in plan.result] == expected
            assert plan.result_count == len(expected)
            for path_plan in plan.paths:
                for step in path_plan.steps:
                    assert step.calls >= 1, (query, step)
                    assert step.time_ns is not None, (query, step)
                    assert step.in_count is not None, (query, step)
                    assert step.out_count is not None, (query, step)


def _print_explains(corpora):
    for corpus, tree, queries in corpora:
        labeling = Ruid2Scheme(max_area_size=24).build(tree)
        engine = XPathEngine(tree, labeling=labeling)
        print(f"\n=== {corpus} ===")
        for query in queries:
            print()
            print(engine.explain(query, analyze=True).format())


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small documents only (CI smoke; does not overwrite results)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print EXPLAIN ANALYZE for every query instead of timing",
    )
    args = parser.parse_args()
    # smoke mode prints but must not clobber the checked-in tables
    sink = _print_only if args.quick else emit
    if args.quick:
        corpora = (
            ("xmark", generate_xmark(scale=0.1, seed=2002), XMARK_QUERIES),
            ("dblp", generate_dblp(entries=150, seed=2002), DBLP_QUERIES),
        )
    else:
        corpora = (
            ("xmark", generate_xmark(scale=0.3, seed=2002), XMARK_QUERIES),
            ("dblp", generate_dblp(entries=600, seed=2002), DBLP_QUERIES),
            (
                "treebank",
                generate_treebank(sentences=40, max_depth=16, seed=2002),
                TREEBANK_QUERIES,
            ),
        )
    if args.explain:
        _print_explains(corpora)
        return
    rows = run_fastpath_table(corpora, sink=sink)
    # CI gate: the warm scheme evaluator must not be slower than the
    # navigational baseline, and must beat its own legacy form >= 2x.
    for corpus, _queries, legacy_ms, fast_ms, nav_ms, _s, _b, _k in rows:
        assert fast_ms <= nav_ms, (
            f"{corpus}: fast path {fast_ms}ms slower than navigational {nav_ms}ms"
        )
        assert legacy_ms / fast_ms >= 2.0, (
            f"{corpus}: fast path only {legacy_ms / fast_ms:.1f}x over legacy"
        )
    # quick mode lengthens each measured pass: the small documents make
    # single passes so short that scheduler jitter would swamp the
    # overhead percentages the gate below asserts on
    obs_rows = run_observability_table(
        corpora,
        sink=sink,
        repeats=10 if args.quick else 3,
        trials=5 if args.quick else 3,
    )
    if args.quick:
        # CI gate for the observability layer: the no-op tracer must
        # cost < 5% over the bare hot path, full instrumentation < 10%.
        for corpus, _q, _b, _n, _f, noop_pct, full_pct, _s, _sl in obs_rows:
            assert noop_pct < 5.0, (
                f"{corpus}: no-op tracer overhead {noop_pct}% >= 5%"
            )
            assert full_pct < 10.0, (
                f"{corpus}: full instrumentation overhead {full_pct}% >= 10%"
            )
    print("\nok")


if __name__ == "__main__":
    main()
